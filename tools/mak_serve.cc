// mak_serve: drive a serve::SessionServer from a deterministic command
// script (docs/robustness.md). One command per line, '#' comments ignored:
//
//   quota <tenant> [sessions=N] [steps=N] [virtual_ms=N] [wall_ms=N]
//                  [ckpt_bytes=N]
//   open <tenant> <app> <crawler> [budget=MS] [seed=HEX] [tier=thread|
//        process] [fault=SPEC] [drift=SPEC] [kill_at=N] [hang_at=N]
//   tick [N]          — N scheduling rounds (default 1)
//   run               — tick until idle
//   suspend <id> | resume <id> | close <id> | state <id>
//   stats <tenant>    — cumulative per-tenant accounting
//   shutdown
//
// Every command echoes a deterministic result line, so a script's full
// output can be golden-tested. The server is configured from MAK_SERVE_*
// (serve/admission.h); scripts arrive on stdin or as a file argument.
//
//   mak_serve [script-file]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "serve/worker.h"
#include "support/snapshot.h"
#include "support/strings.h"

namespace {

using mak::serve::IsolationTier;
using mak::serve::OpenRequest;
using mak::serve::Reject;
using mak::serve::SessionServer;
using mak::serve::TenantQuota;

std::vector<std::string> split_ws(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

// "key=value" option split; returns true and fills out the pieces.
bool split_option(const std::string& token, std::string& key,
                  std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

int run_script(std::istream& in) {
  SessionServer server(mak::serve::server_from_env(),
                       "/tmp/mak-serve-scratch");
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = split_ws(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& cmd = tokens[0];
    try {
    if (cmd == "quota" && tokens.size() >= 2) {
      TenantQuota quota;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_option(tokens[i], key, value)) continue;
        const auto number = std::strtoull(value.c_str(), nullptr, 10);
        if (key == "sessions") quota.max_sessions = number;
        else if (key == "steps") quota.max_steps = number;
        else if (key == "virtual_ms") quota.max_virtual_ms =
            static_cast<long long>(number);
        else if (key == "wall_ms") quota.max_wall_ms =
            static_cast<long long>(number);
        else if (key == "ckpt_bytes") quota.max_checkpoint_bytes = number;
      }
      server.set_tenant_quota(tokens[1], quota);
      std::printf("quota tenant=%s\n", tokens[1].c_str());
    } else if (cmd == "open" && tokens.size() >= 4) {
      OpenRequest request;
      request.tenant = tokens[1];
      request.app = tokens[2];
      request.crawler = tokens[3];
      bool ok = true;
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_option(tokens[i], key, value)) continue;
        if (key == "budget") {
          request.config.budget = std::strtoll(value.c_str(), nullptr, 10);
        } else if (key == "seed") {
          request.config.seed =
              mak::support::snapshot::hex_to_u64(value);
        } else if (key == "tier") {
          request.tier = value == "process" ? IsolationTier::kProcess
                                            : IsolationTier::kThread;
        } else if (key == "fault") {
          const auto fault = mak::httpsim::FaultProfile::parse(value);
          if (!fault) { ok = false; break; }
          request.config.fault = *fault;
        } else if (key == "drift") {
          const auto drift = mak::webapp::DriftProfile::parse(value);
          if (!drift) { ok = false; break; }
          request.config.drift = *drift;
        } else if (key == "kill_at") {
          request.kill_at_step = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "hang_at") {
          request.hang_at_step = std::strtoull(value.c_str(), nullptr, 10);
        }
      }
      if (!ok) {
        std::printf("reject reason=bad_config\n");
        continue;
      }
      const auto outcome = server.open(request);
      if (outcome.admitted()) {
        std::printf("open id=%llu\n",
                    static_cast<unsigned long long>(outcome.id));
      } else {
        std::printf("reject reason=%.*s\n",
                    static_cast<int>(to_string(outcome.reject).size()),
                    to_string(outcome.reject).data());
      }
    } else if (cmd == "tick") {
      std::size_t rounds = 1;
      if (tokens.size() >= 2) {
        rounds = std::strtoull(tokens[1].c_str(), nullptr, 10);
      }
      std::size_t steps = 0;
      for (std::size_t i = 0; i < rounds; ++i) steps += server.tick();
      std::printf("tick rounds=%zu steps=%zu\n", rounds, steps);
    } else if (cmd == "run") {
      std::printf("run steps=%zu\n", server.run_until_idle());
    } else if (cmd == "suspend" && tokens.size() >= 2) {
      const auto id = std::strtoull(tokens[1].c_str(), nullptr, 10);
      std::printf("suspend id=%llu ok=%d\n",
                  static_cast<unsigned long long>(id),
                  server.suspend(id) ? 1 : 0);
    } else if (cmd == "resume" && tokens.size() >= 2) {
      const auto id = std::strtoull(tokens[1].c_str(), nullptr, 10);
      const Reject reject = server.resume(id);
      std::printf("resume id=%llu result=%.*s\n",
                  static_cast<unsigned long long>(id),
                  static_cast<int>(to_string(reject).size()),
                  to_string(reject).data());
    } else if (cmd == "close" && tokens.size() >= 2) {
      const auto id = std::strtoull(tokens[1].c_str(), nullptr, 10);
      const auto result = server.close(id);
      if (result.has_value()) {
        std::printf("close id=%llu steps=%zu covered=%zu aborted=%d\n",
                    static_cast<unsigned long long>(id), result->steps,
                    result->final_covered_lines, result->aborted ? 1 : 0);
      } else {
        std::printf("close id=%llu unknown\n",
                    static_cast<unsigned long long>(id));
      }
    } else if (cmd == "state" && tokens.size() >= 2) {
      const auto id = std::strtoull(tokens[1].c_str(), nullptr, 10);
      std::printf("state id=%llu %.*s\n",
                  static_cast<unsigned long long>(id),
                  static_cast<int>(to_string(server.state(id)).size()),
                  to_string(server.state(id)).data());
    } else if (cmd == "stats" && tokens.size() >= 2) {
      const auto stats = server.tenant_stats(tokens[1]);
      std::printf(
          "stats tenant=%s open=%zu steps=%zu virtual_ms=%lld "
          "ckpt_bytes=%zu suspensions=%zu\n",
          tokens[1].c_str(), stats.open_sessions, stats.steps,
          stats.virtual_ms, stats.checkpoint_bytes, stats.suspensions);
    } else if (cmd == "shutdown") {
      server.shutdown();
      std::printf("shutdown\n");
    } else {
      std::fprintf(stderr, "mak_serve: line %zu: bad command: %s\n",
                   line_no, line.c_str());
      return 2;
    }
    } catch (const std::exception& error) {
      // Bad operand (malformed hex seed, unknown session id, ...): report
      // deterministically and keep the server running — scripts stay
      // golden-testable even through operator typos.
      std::printf("error line=%zu %s\n", line_no, error.what());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Process-tier workers re-exec this binary; dispatch them first.
  if (mak::serve::is_serve_worker_invocation(argc, argv)) {
    return mak::serve::serve_worker_main(argc, argv);
  }
  if (argc >= 2) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "mak_serve: cannot open %s\n", argv[1]);
      return 2;
    }
    return run_script(file);
  }
  return run_script(std::cin);
}
