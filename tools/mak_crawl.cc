// mak_crawl — command-line front end for the crawler framework.
//
//   mak_crawl --app Drupal --crawler MAK --minutes 30 --seed 7
//   mak_crawl --app PhpBB2 --crawler BFS --csv series.csv
//   mak_crawl --list
//
// Runs one crawl under the paper's protocol and prints a summary; with
// --csv it also writes the coverage-over-time series for plotting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "harness/experiment.h"
#include "harness/json_report.h"
#include "harness/orchestrator.h"
#include "harness/report.h"
#include "rl/policy_factory.h"
#include "support/strings.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--app NAME] [--crawler NAME | --policy NAME] [--minutes N]\n"
      "          [--seed N] [--sample-seconds N] [--csv FILE] [--trace FILE]\n"
      "          [--json FILE] [--fault PROFILE] [--drift PROFILE]\n"
      "          [--checkpoint-dir DIR]\n"
      "          [--checkpoint-seconds N] [--resume | --no-resume]\n"
      "          [--heartbeat-sec N] [--wall-limit-sec N] [--max-steps N]\n"
      "          [--replay-bundle DIR] [--list]\n"
      "defaults: --app AddressBook --crawler MAK --minutes 30 --seed 23501\n"
      "policies: --policy runs the MAK variant with the named bandit policy\n"
      "  (exp3.1, exp3, eps-greedy, ucb1, thompson, exp3-rotting, dsee; see\n"
      "  docs/policies.md); equivalent to the matching --crawler name.\n"
      "checkpointing: with --checkpoint-dir the run writes periodic crash-safe\n"
      "  checkpoints (every N virtual seconds, default 120) and --resume\n"
      "  (default) continues an interrupted run from the newest valid one;\n"
      "  --no-resume starts over. See docs/robustness.md.\n"
      "supervisor: --heartbeat-sec aborts a run with no crawl-step progress,\n"
      "  --wall-limit-sec / --max-steps bound the whole run; aborted runs are\n"
      "  reported with partial coverage and an abort reason.\n"
      "replay: --replay-bundle reruns a failure bundle archived by the\n"
      "  orchestrator under results/failures/, resuming from the bundled\n"
      "  checkpoint and verifying the run digest (see docs/robustness.md).\n"
      "fault profiles: off | light | moderate | heavy, optionally followed by\n"
      "  key=value overrides (error=, drop=, spike=, spike_ms=MIN:MAX,\n"
      "  window_period_ms=, window_duration_ms=, window_offset_ms=,\n"
      "  window_error=, window_drop=, retries=, backoff_ms=, backoff_mult=,\n"
      "  jitter=, timeout_ms=); also read from MAK_FAULT_PROFILE\n"
      "drift profiles: off | light | moderate | heavy, optionally followed by\n"
      "  key=value overrides (deploy_period_ms=, deploy_offset_ms=, reroute=,\n"
      "  flip_period_ms=, flip=, churn_period_ms=, churn=, storm_period_ms=,\n"
      "  storm_duration_ms=, storm_offset_ms=, storm_expire=); also read from\n"
      "  MAK_DRIFT (see docs/fault_injection.md)\n",
      argv0);
}

struct Options {
  std::string app = "AddressBook";
  std::string crawler = "MAK";
  long minutes = 30;
  long sample_seconds = 30;
  unsigned long long seed = 0x5bcd;
  std::string policy;
  std::string csv_path;
  std::string trace_path;
  std::string json_path;
  std::string fault_spec;
  std::string drift_spec;
  std::string checkpoint_dir;
  long checkpoint_seconds = 120;  // virtual-time cadence
  bool resume = true;
  long heartbeat_sec = 0;
  long wall_limit_sec = 0;
  unsigned long long max_steps = 0;
  std::string replay_bundle_dir;
  bool list = false;
};

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--app") {
      const char* value = next_value("--app");
      if (value == nullptr) return false;
      options.app = value;
    } else if (arg == "--crawler") {
      const char* value = next_value("--crawler");
      if (value == nullptr) return false;
      options.crawler = value;
    } else if (arg == "--policy") {
      const char* value = next_value("--policy");
      if (value == nullptr) return false;
      options.policy = value;
    } else if (arg == "--minutes") {
      const char* value = next_value("--minutes");
      if (value == nullptr) return false;
      options.minutes = std::strtol(value, nullptr, 10);
    } else if (arg == "--sample-seconds") {
      const char* value = next_value("--sample-seconds");
      if (value == nullptr) return false;
      options.sample_seconds = std::strtol(value, nullptr, 10);
    } else if (arg == "--seed") {
      const char* value = next_value("--seed");
      if (value == nullptr) return false;
      options.seed = std::strtoull(value, nullptr, 0);
    } else if (arg == "--csv") {
      const char* value = next_value("--csv");
      if (value == nullptr) return false;
      options.csv_path = value;
    } else if (arg == "--trace") {
      const char* value = next_value("--trace");
      if (value == nullptr) return false;
      options.trace_path = value;
    } else if (arg == "--json") {
      const char* value = next_value("--json");
      if (value == nullptr) return false;
      options.json_path = value;
    } else if (arg == "--fault") {
      const char* value = next_value("--fault");
      if (value == nullptr) return false;
      options.fault_spec = value;
    } else if (arg == "--drift") {
      const char* value = next_value("--drift");
      if (value == nullptr) return false;
      options.drift_spec = value;
    } else if (arg == "--checkpoint-dir") {
      const char* value = next_value("--checkpoint-dir");
      if (value == nullptr) return false;
      options.checkpoint_dir = value;
    } else if (arg == "--checkpoint-seconds") {
      const char* value = next_value("--checkpoint-seconds");
      if (value == nullptr) return false;
      options.checkpoint_seconds = std::strtol(value, nullptr, 10);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--no-resume") {
      options.resume = false;
    } else if (arg == "--heartbeat-sec") {
      const char* value = next_value("--heartbeat-sec");
      if (value == nullptr) return false;
      options.heartbeat_sec = std::strtol(value, nullptr, 10);
    } else if (arg == "--wall-limit-sec") {
      const char* value = next_value("--wall-limit-sec");
      if (value == nullptr) return false;
      options.wall_limit_sec = std::strtol(value, nullptr, 10);
    } else if (arg == "--max-steps") {
      const char* value = next_value("--max-steps");
      if (value == nullptr) return false;
      options.max_steps = std::strtoull(value, nullptr, 10);
    } else if (arg == "--replay-bundle") {
      const char* value = next_value("--replay-bundle");
      if (value == nullptr) return false;
      options.replay_bundle_dir = value;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mak;

  // Orchestrator workers re-exec this binary; hand over before normal
  // argument parsing ever sees the --worker protocol.
  if (harness::is_worker_invocation(argc, argv)) {
    return harness::worker_main(argc, argv);
  }

  Options options;
  if (!parse_args(argc, argv, options)) return 2;

  if (!options.replay_bundle_dir.empty()) {
    return harness::replay_bundle(options.replay_bundle_dir);
  }

  if (options.list) {
    std::printf("applications:\n");
    for (const auto& info : apps::app_catalog()) {
      std::printf("  %-12s v%-10s %s\n", info.name.c_str(),
                  info.version.c_str(), to_string(info.platform).data());
    }
    std::printf("crawlers:\n");
    for (const auto kind : harness::all_crawler_kinds()) {
      std::printf("  %s\n", std::string(to_string(kind)).c_str());
    }
    std::printf("policies (--policy; docs/policies.md):\n");
    for (const auto& info : rl::policy_catalog()) {
      std::printf("  %-13s %s\n", info.name.data(), info.summary.data());
    }
    return 0;
  }

  // Catalog names and generated "gen-v1-..." specs (docs/apps.md) both work.
  const std::optional<apps::AppInfo> info = apps::resolve_app(options.app);
  if (!info.has_value()) {
    std::fprintf(stderr, "unknown app '%s' (try --list)\n",
                 options.app.c_str());
    return 2;
  }
  std::optional<harness::CrawlerKind> kind;
  if (!options.policy.empty()) {
    kind = harness::crawler_for_policy(options.policy);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown policy '%s' (valid: %s)\n",
                   options.policy.c_str(),
                   rl::policy_names_joined().c_str());
      return 2;
    }
  } else {
    kind = harness::crawler_kind_from_name(options.crawler);
    if (!kind.has_value()) {
      std::string names;
      for (const auto candidate : harness::all_crawler_kinds()) {
        if (!names.empty()) names += ", ";
        names += std::string(to_string(candidate));
      }
      std::fprintf(stderr, "unknown crawler '%s' (valid: %s)\n",
                   options.crawler.c_str(), names.c_str());
      return 2;
    }
  }

  harness::RunConfig config;
  config.budget = options.minutes * support::kMillisPerMinute;
  config.sample_interval = options.sample_seconds * support::kMillisPerSecond;
  config.seed = options.seed;
  if (!options.fault_spec.empty()) {
    const auto fault = httpsim::FaultProfile::parse(options.fault_spec);
    if (!fault.has_value()) {
      std::fprintf(stderr, "unparsable --fault spec '%s'\n",
                   options.fault_spec.c_str());
      return 2;
    }
    config.fault = *fault;
  } else if (const auto fault = httpsim::FaultProfile::from_env()) {
    config.fault = *fault;
  } else if (const char* spec = std::getenv("MAK_FAULT_PROFILE");
             spec != nullptr && *spec != '\0') {
    std::fprintf(stderr, "warning: ignoring unparsable MAK_FAULT_PROFILE '%s'\n",
                 spec);
  }
  if (!options.drift_spec.empty()) {
    const auto drift = webapp::DriftProfile::parse(options.drift_spec);
    if (!drift.has_value()) {
      std::fprintf(stderr, "unparsable --drift spec '%s'\n",
                   options.drift_spec.c_str());
      return 2;
    }
    config.drift = *drift;
  } else if (const auto drift = webapp::DriftProfile::from_env()) {
    config.drift = *drift;
  } else if (const char* spec = std::getenv("MAK_DRIFT");
             spec != nullptr && *spec != '\0') {
    std::fprintf(stderr, "warning: ignoring unparsable MAK_DRIFT '%s'\n",
                 spec);
  }
  if (!options.checkpoint_dir.empty()) {
    config.checkpoint.dir = options.checkpoint_dir;
    if (options.checkpoint_seconds > 0) {
      config.checkpoint.interval =
          options.checkpoint_seconds * support::kMillisPerSecond;
    }
    config.checkpoint.resume = options.resume;
  }
  config.supervisor.heartbeat_ms = options.heartbeat_sec * 1000;
  config.supervisor.wall_limit_ms = options.wall_limit_sec * 1000;
  config.supervisor.max_steps = static_cast<std::size_t>(options.max_steps);
  core::CrawlTrace trace;
  if (!options.trace_path.empty()) config.trace = &trace;

  const auto result = harness::run_resumable(*info, *kind, config);

  std::printf("%s on %s (%s), %ld virtual minutes, seed %llu\n",
              result.crawler.c_str(), result.app.c_str(),
              to_string(result.platform).data(), options.minutes,
              options.seed);
  std::printf("  covered lines:     %s / %s (%.1f%%)\n",
              support::format_thousands(
                  static_cast<std::int64_t>(result.final_covered_lines))
                  .c_str(),
              support::format_thousands(
                  static_cast<std::int64_t>(result.total_lines))
                  .c_str(),
              100.0 * static_cast<double>(result.final_covered_lines) /
                  static_cast<double>(result.total_lines));
  std::printf("  links discovered:  %zu\n", result.links_discovered);
  std::printf("  interactions:      %zu (+%zu seed navigations)\n",
              result.interactions, result.navigations);
  if (result.aborted) {
    std::printf("  ABORTED:           %s after %zu steps (partial results)\n",
                result.abort_reason.c_str(), result.steps);
  }
  if (result.fault_active) {
    std::printf("  fault profile:     %s\n",
                config.fault.describe().c_str());
    std::printf(
        "  faults injected:   %zu errors, %zu drops, %zu latency spikes"
        " (%zu requests in degradation windows)\n",
        result.injected_errors, result.injected_drops, result.latency_spikes,
        result.degraded_requests);
    std::printf(
        "  client resilience: %zu retries, %zu transport failures, %zu "
        "timeouts, %lld ms backed off\n",
        result.retries, result.transport_failures, result.timeouts,
        static_cast<long long>(result.backoff_ms));
  }
  if (result.drift_active) {
    std::printf("  drift profile:     %s\n", config.drift.describe().c_str());
    std::printf(
        "  drift effects:     %zu gone requests, %zu rewritten links, %zu "
        "churned links, %zu expired sessions (%zu requests in storms)\n",
        result.drift_gone_requests, result.drift_rewritten_links,
        result.drift_churned_links, result.drift_expired_sessions,
        result.drift_storm_requests);
  }
  if (result.regret_tracked) {
    std::printf(
        "  regret:            cumulative %.3f (weak %.3f; realized gain "
        "%.3f, best-arm estimate %.3f over %zu updates)\n",
        result.cumulative_regret, result.weak_regret, result.realized_gain,
        result.best_arm_gain, result.policy_updates);
  }

  if (!options.csv_path.empty()) {
    std::ofstream csv(options.csv_path);
    if (!csv) {
      std::fprintf(stderr, "cannot write %s\n", options.csv_path.c_str());
      return 1;
    }
    csv << harness::to_csv_row({"time_s", "covered_lines"}) << '\n';
    for (const auto& point : result.series.points()) {
      csv << harness::to_csv_row(
                 {std::to_string(point.time / support::kMillisPerSecond),
                  std::to_string(point.covered_lines)})
          << '\n';
    }
    std::printf("  series written to: %s\n", options.csv_path.c_str());
  }
  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    out << harness::run_to_json(result) << '\n';
    std::printf("  json written to:   %s\n", options.json_path.c_str());
  }
  if (!options.trace_path.empty()) {
    std::ofstream out(options.trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.trace_path.c_str());
      return 1;
    }
    trace.write_jsonl(out);
    const auto summary = trace.summarize();
    std::printf(
        "  trace written to:  %s (%zu events, %zu errors, %zu recoveries)\n",
        options.trace_path.c_str(), trace.size(), summary.errors,
        summary.recoveries);
  }
  return 0;
}
