// metrics_diff — compare two bench JSON artifacts and flag regressions.
//
// Usage:
//   metrics_diff <baseline.json> <candidate.json> [--threshold <percent>]
//               [--identical]
//
// --identical switches from regression gating to an exact-equality check:
// the two artifacts must contain the same entry list — same names in the
// same order, bit-equal values, same units and directions. Used by the
// determinism CI jobs (a serial and a --workers run of the same sweep must
// produce byte-identical entries); exit 1 on the first difference.
//
// Both files must follow the BENCH schema (schema_version 1, see
// docs/observability.md). An entry regresses when its value moved more than
// the threshold (default 10%) against its higher_is_better direction:
// time-like entries (ns per iteration) regress upward, coverage-like entries
// regress downward. Exit codes:
//   0  no regressions
//   1  at least one regression beyond the threshold
//   2  usage error (bad flag, missing operand)
//   3  input error (missing/unreadable file, unparsable artifact, wrong
//      schema_version, kind mismatch) — distinct from 1 so CI can tell "the
//      bench regressed" from "the artifact never materialized"
//
// CI gating (docs/observability.md): regenerate the candidate artifact with
// the bench binary, then `metrics_diff results/BENCH_micro.json fresh.json`.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/bench_json.h"

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::optional<mak::harness::BenchDoc> load(const std::string& path) {
  const auto text = read_file(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "metrics_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  auto doc = mak::harness::parse_bench_json(*text);
  if (!doc.has_value()) {
    std::fprintf(stderr,
                 "metrics_diff: %s is not a schema_version-%d bench artifact\n",
                 path.c_str(), mak::harness::kBenchSchemaVersion);
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  double threshold = 10.0;
  bool identical = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--identical") {
      identical = true;
    } else if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "metrics_diff: --threshold needs a value\n");
        return 2;
      }
      char* end = nullptr;
      threshold = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || threshold < 0.0) {
        std::fprintf(stderr, "metrics_diff: bad threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "metrics_diff: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: metrics_diff <baseline.json> <candidate.json> "
                 "[--threshold <percent>] [--identical]\n");
    return 2;
  }

  const auto baseline = load(baseline_path);
  const auto candidate = load(candidate_path);
  if (!baseline.has_value() || !candidate.has_value()) return 3;
  if (baseline->kind != candidate->kind) {
    std::fprintf(stderr, "metrics_diff: kind mismatch ('%s' vs '%s')\n",
                 baseline->kind.c_str(), candidate->kind.c_str());
    return 3;
  }

  if (identical) {
    if (baseline->entries.size() != candidate->entries.size()) {
      std::fprintf(stderr,
                   "metrics_diff: entry count differs (%zu vs %zu)\n",
                   baseline->entries.size(), candidate->entries.size());
      return 1;
    }
    for (std::size_t i = 0; i < baseline->entries.size(); ++i) {
      const auto& a = baseline->entries[i];
      const auto& b = candidate->entries[i];
      if (a.name != b.name || a.value != b.value || a.unit != b.unit ||
          a.higher_is_better != b.higher_is_better) {
        std::fprintf(stderr,
                     "metrics_diff: entry %zu differs: %s=%.17g vs %s=%.17g\n",
                     i, a.name.c_str(), a.value, b.name.c_str(), b.value);
        return 1;
      }
    }
    std::printf("metrics_diff: %s — %zu entries identical\n",
                baseline->kind.c_str(), baseline->entries.size());
    return 0;
  }

  const auto deltas =
      mak::harness::compare_bench(*baseline, *candidate, threshold);

  std::printf("metrics_diff: %s (threshold %.1f%%)\n",
              baseline->kind.c_str(), threshold);
  std::printf("%-44s %14s %14s %9s\n", "entry", "baseline", "candidate",
              "change");
  int regressions = 0;
  for (const auto& delta : deltas) {
    if (delta.only_in_baseline) {
      std::printf("%-44s %14g %14s %9s  (removed)\n", delta.name.c_str(),
                  delta.baseline, "-", "-");
      continue;
    }
    if (delta.only_in_candidate) {
      std::printf("%-44s %14s %14g %9s  (new)\n", delta.name.c_str(), "-",
                  delta.candidate, "-");
      continue;
    }
    std::printf("%-44s %14g %14g %+8.2f%%%s\n", delta.name.c_str(),
                delta.baseline, delta.candidate, delta.percent_change,
                delta.regression ? "  REGRESSION" : "");
    if (delta.regression) ++regressions;
  }
  if (regressions > 0) {
    std::printf("%d regression(s) beyond %.1f%%\n", regressions, threshold);
    return 1;
  }
  std::printf("no regressions\n");
  return 0;
}
