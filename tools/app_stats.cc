// app_stats — structural statistics of the testbed application models.
//
// Default mode runs the exhaustive GET-link site mapper over every catalog
// app and prints the graph-level numbers DESIGN.md's calibration is based
// on: reachable URLs, depth profile, dead ends, forms, and the coverage a
// plain link spider attains (no form submissions, so login-gated and
// wizard content stays dark).
//
// With --generated N [--pop-seed S], it instead dumps the spec and
// ground-truth table of the first N generated apps of a population
// (apps/generator): every trait dial, the calibrated total/reachable line
// counts, and — as a self-check — the line count of the actually
// constructed app, which must equal the budget exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "apps/catalog.h"
#include "apps/generator/generator.h"
#include "core/site_mapper.h"
#include "harness/report.h"
#include "httpsim/network.h"
#include "support/strings.h"

namespace {

int catalog_stats() {
  using namespace mak;

  harness::TextTable table({"Application", "URLs", "capped", "max depth",
                            "dead ends", "errors", "forms", "GET-only lines",
                            "total lines"});
  for (const auto& info : apps::app_catalog()) {
    auto app = info.factory();
    support::SimClock clock;
    httpsim::Network network(clock);
    network.register_host(app->host(), *app);

    core::SiteMapperConfig config;
    config.max_pages = 5000;
    const auto site = core::map_site(network, app->seed_url(), config);

    table.add_row(
        {info.name, std::to_string(site.pages_visited),
         site.reached_cap ? "yes" : "no", std::to_string(site.max_depth),
         std::to_string(site.dead_ends), std::to_string(site.error_pages),
         std::to_string(site.forms_seen),
         support::format_thousands(
             static_cast<std::int64_t>(app->tracker().covered_lines())),
         support::format_thousands(
             static_cast<std::int64_t>(app->code_model().total_lines()))});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\n'GET-only lines' is the ceiling for a link spider that never\n"
      "submits forms: the gap to 'total lines' is what form handling,\n"
      "sessions and (for Node apps) unreachable code account for.\n");
  return 0;
}

int generated_stats(std::size_t count, std::uint64_t population_seed) {
  using namespace mak;
  using apps::generator::AppSpec;

  harness::TextTable table({"#", "platform", "budget", "b", "d", "a", "t",
                            "g", "w", "p", "dead%", "reachable", "built",
                            "routes"});
  std::size_t mismatches = 0;
  const auto described = apps::generator::population(population_seed, count);
  for (std::size_t i = 0; i < described.size(); ++i) {
    const AppSpec& spec = described[i].spec;
    const auto app = apps::generator::make_generated(spec);
    const std::size_t built = app->code_model().total_lines();
    if (built != spec.line_budget) ++mismatches;
    table.add_row(
        {std::to_string(i), std::string(to_string(spec.platform)),
         support::format_thousands(
             static_cast<std::int64_t>(spec.line_budget)),
         std::to_string(spec.breadth), std::to_string(spec.depth),
         std::to_string(spec.alias_density), std::to_string(spec.traps),
         std::to_string(spec.login_walls), std::to_string(spec.wizards),
         std::to_string(spec.pagination), std::to_string(spec.dead_pct),
         support::format_thousands(
             static_cast<std::int64_t>(described[i].reachable_lines)),
         support::format_thousands(static_cast<std::int64_t>(built)),
         std::to_string(app->router().route_count())});
  }
  table.print(std::cout);
  std::printf(
      "\ndials: b=breadth d=depth a=alias t=traps g=logins w=wizards "
      "p=pagination.\n'built' is the constructed app's modelled line count; "
      "it must equal 'budget'\nexactly (exact-allocation contract): %zu "
      "mismatch(es).\n",
      mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t generated = 0;
  std::uint64_t population_seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--generated") == 0 && i + 1 < argc) {
      generated =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--pop-seed") == 0 && i + 1 < argc) {
      population_seed =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--generated N [--pop-seed S]]\n",
                   argv[0]);
      return 2;
    }
  }
  return generated > 0 ? generated_stats(generated, population_seed)
                       : catalog_stats();
}
