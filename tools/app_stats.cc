// app_stats — structural statistics of the testbed application models.
//
// Runs the exhaustive GET-link site mapper over every catalog app and
// prints the graph-level numbers DESIGN.md's calibration is based on:
// reachable URLs, depth profile, dead ends, forms, and the coverage a
// plain link spider attains (no form submissions, so login-gated and
// wizard content stays dark).
#include <cstdio>
#include <iostream>

#include "apps/catalog.h"
#include "core/site_mapper.h"
#include "harness/report.h"
#include "httpsim/network.h"
#include "support/strings.h"

int main() {
  using namespace mak;

  harness::TextTable table({"Application", "URLs", "capped", "max depth",
                            "dead ends", "errors", "forms", "GET-only lines",
                            "total lines"});
  for (const auto& info : apps::app_catalog()) {
    auto app = info.factory();
    support::SimClock clock;
    httpsim::Network network(clock);
    network.register_host(app->host(), *app);

    core::SiteMapperConfig config;
    config.max_pages = 5000;
    const auto site = core::map_site(network, app->seed_url(), config);

    table.add_row(
        {info.name, std::to_string(site.pages_visited),
         site.reached_cap ? "yes" : "no", std::to_string(site.max_depth),
         std::to_string(site.dead_ends), std::to_string(site.error_pages),
         std::to_string(site.forms_seen),
         support::format_thousands(
             static_cast<std::int64_t>(app->tracker().covered_lines())),
         support::format_thousands(
             static_cast<std::int64_t>(app->code_model().total_lines()))});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\n'GET-only lines' is the ceiling for a link spider that never\n"
      "submits forms: the gap to 'total lines' is what form handling,\n"
      "sessions and (for Node apps) unreachable code account for.\n");
  return 0;
}
