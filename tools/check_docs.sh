#!/usr/bin/env bash
# Documentation consistency checks, run by the `docs` CI job.
#
#   1. Every relative markdown link in the repo's .md files resolves to an
#      existing file or directory.
#   2. The metric catalog in docs/observability.md and the canonical name
#      list in src/support/metric_names.h agree exactly, in both
#      directions: every registered name is documented, and every
#      documented name exists in source.
#   3. Every field of the generator's AppSpec (src/apps/generator/
#      app_spec.h) is documented in docs/apps.md — the trait table must
#      not drift from the struct.
#   4. Every bandit policy registered in src/rl/policy_factory.cc
#      (kPolicyCatalog) is documented in docs/policies.md — adding a
#      policy without documenting it fails CI.
#   5. Every admission rejection reason in src/serve/admission.cc
#      (to_string(Reject)) is documented in docs/robustness.md — a new
#      shed signal must land with its docs row.
#
# Exit 0 when everything is consistent, 1 otherwise (each problem printed).
set -u

cd "$(dirname "$0")/.."
failures=0

fail() {
  echo "check_docs: $1" >&2
  failures=$((failures + 1))
}

# --- 1. relative markdown links ------------------------------------------

while IFS= read -r file; do
  # Pull out ](target) occurrences; keep relative targets only.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"            # drop any #anchor
    [ -n "$path" ] || continue
    if [ ! -e "$(dirname "$file")/$path" ]; then
      fail "$file: broken relative link '$target'"
    fi
  done < <(grep -o ']([^)]*)' "$file" | sed 's/^](//; s/)$//')
done < <(find . -name '*.md' -not -path './build/*' -not -path './.git/*')

# --- 2. metric catalog <-> metric_names.h --------------------------------

names_header=src/support/metric_names.h
catalog=docs/observability.md

if [ ! -f "$names_header" ] || [ ! -f "$catalog" ]; then
  fail "missing $names_header or $catalog"
  exit 1
fi

# Registered names: every quoted string literal in the header.
registered=$(grep -o '"[a-z0-9_.]*"' "$names_header" | tr -d '"' | sort -u)

# Documented names: first backticked cell of catalog table rows, restricted
# to dot-separated lower-case identifiers so prose tables (env vars, CLI
# flags) are not picked up.
documented=$(sed -n 's/^| `\([a-z0-9_]*\(\.[a-z0-9_]*\)\{1,\}\)` .*/\1/p' \
    "$catalog" | sort -u)

for name in $registered; do
  if ! printf '%s\n' $documented | grep -qx "$name"; then
    fail "$catalog: metric '$name' (from $names_header) has no catalog row"
  fi
done
for name in $documented; do
  if ! printf '%s\n' $registered | grep -qx "$name"; then
    fail "$catalog: catalog row '$name' not found in $names_header"
  fi
done

# --- 3. AppSpec fields <-> docs/apps.md ----------------------------------

spec_header=src/apps/generator/app_spec.h
apps_doc=docs/apps.md

if [ ! -f "$spec_header" ] || [ ! -f "$apps_doc" ]; then
  fail "missing $spec_header or $apps_doc"
  exit 1
fi

# Field names: member declarations inside the AppSpec struct body.
spec_fields=$(sed -n '/^struct AppSpec {/,/^};/p' "$spec_header" |
    sed -n 's/^  [A-Za-z_:][A-Za-z0-9_:]*[a-z0-9_>] \([a-z_][a-z0-9_]*\) *[=;].*/\1/p' |
    grep -v '^operator$' | sort -u)

if [ -z "$spec_fields" ]; then
  fail "$spec_header: could not extract any AppSpec fields"
fi
for field in $spec_fields; do
  if ! grep -q "\`$field\`" "$apps_doc"; then
    fail "$apps_doc: AppSpec field '$field' (from $spec_header) undocumented"
  fi
done

# --- 4. policy catalog <-> docs/policies.md ------------------------------

factory_source=src/rl/policy_factory.cc
policies_doc=docs/policies.md

if [ ! -f "$factory_source" ] || [ ! -f "$policies_doc" ]; then
  fail "missing $factory_source or $policies_doc"
  exit 1
fi

# Registered policies: the first quoted string of each kPolicyCatalog
# entry line ({"name", "summary"}).
policy_names=$(sed -n '/kPolicyCatalog\[\]/,/^};/p' "$factory_source" |
    sed -n 's/^ *{"\([^"]*\)".*/\1/p' | sort -u)

if [ -z "$policy_names" ]; then
  fail "$factory_source: could not extract any kPolicyCatalog entries"
fi
for name in $policy_names; do
  if ! grep -q "\`$name\`" "$policies_doc"; then
    fail "$policies_doc: policy '$name' (from $factory_source) undocumented"
  fi
done

# --- 5. admission rejects <-> docs/robustness.md -------------------------

admission_source=src/serve/admission.cc
robustness_doc=docs/robustness.md

if [ ! -f "$admission_source" ] || [ ! -f "$robustness_doc" ]; then
  fail "missing $admission_source or $robustness_doc"
  exit 1
fi

# Rejection reasons: the string each to_string(Reject) case returns,
# minus "none" (the admitted case, not a shed signal).
reject_names=$(sed -n 's/.*case Reject::k[A-Za-z]*: return "\([a-z_]*\)".*/\1/p' \
    "$admission_source" | grep -vx none | sort -u)

if [ -z "$reject_names" ]; then
  fail "$admission_source: could not extract any Reject reasons"
fi
for name in $reject_names; do
  if ! grep -q "\`$name\`" "$robustness_doc"; then
    fail "$robustness_doc: reject reason '$name' (from $admission_source) undocumented"
  fi
done

# ------------------------------------------------------------------------

if [ "$failures" -gt 0 ]; then
  echo "check_docs: $failures problem(s)" >&2
  exit 1
fi
echo "check_docs: OK ($(printf '%s\n' $registered | wc -l) metrics cataloged)"
