// coverage_report — per-file coverage report for one crawl (a genhtml-lite
// for the simulated Xdebug output).
//
// Usage: coverage_report [app] [crawler] [minutes] [seed]
//        (defaults: HotCRP MAK 30 23501)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/catalog.h"
#include "core/browser.h"
#include "coverage/coverage.h"
#include "harness/experiment.h"
#include "httpsim/network.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace mak;

  const std::string app_name = argc > 1 ? argv[1] : "HotCRP";
  const std::string crawler_name = argc > 2 ? argv[2] : "MAK";
  const long minutes = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 30;
  const unsigned long long seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 0) : 23501ULL;

  auto app = apps::make_app(app_name);
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  support::Rng master(seed);
  core::Browser browser(network, app->seed_url(), master.fork());

  std::optional<harness::CrawlerKind> kind;
  for (const auto candidate :
       {harness::CrawlerKind::kMak, harness::CrawlerKind::kWebExplor,
        harness::CrawlerKind::kQExplore, harness::CrawlerKind::kBfs,
        harness::CrawlerKind::kDfs, harness::CrawlerKind::kRandom}) {
    if (crawler_name == std::string(to_string(candidate))) kind = candidate;
  }
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown crawler '%s'\n", crawler_name.c_str());
    return 2;
  }
  auto crawler = harness::make_crawler(*kind, master.fork());

  const support::Deadline deadline(clock,
                                   minutes * support::kMillisPerMinute);
  crawler->start(browser);
  while (!deadline.expired()) {
    clock.advance(700);
    crawler->step(browser);
  }

  auto breakdown =
      coverage::file_breakdown(app->code_model(), app->tracker().lines());
  // Least-covered files first: the actionable view for a tester.
  std::sort(breakdown.begin(), breakdown.end(),
            [](const auto& a, const auto& b) {
              return a.fraction() < b.fraction();
            });

  std::printf("%s coverage of %s after %ld virtual minutes (seed %llu)\n\n",
              crawler_name.c_str(), app_name.c_str(), minutes, seed);
  std::printf("%-34s %9s %9s  %s\n", "file", "covered", "total", "coverage");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (const auto& fc : breakdown) {
    const int bar_width = static_cast<int>(fc.fraction() * 20.0 + 0.5);
    std::string bar(static_cast<std::size_t>(bar_width), '#');
    bar.resize(20, '.');
    std::printf("%-34s %9zu %9zu  [%s] %5.1f%%\n", fc.file.c_str(),
                fc.covered, fc.total, bar.c_str(), 100.0 * fc.fraction());
  }
  std::printf("%s\n", std::string(76, '-').c_str());
  std::printf("%-34s %9zu %9zu  %5.1f%%\n", "TOTAL",
              app->tracker().covered_lines(),
              app->code_model().total_lines(),
              100.0 * app->tracker().covered_fraction());
  return 0;
}
