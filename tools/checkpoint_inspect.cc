// checkpoint_inspect — validate and summarize crash-recovery checkpoints.
//
// Usage:
//   checkpoint_inspect <checkpoint.json>...
//
// Runs the same validation chain as resume (magic, format, CRC-32, payload
// schema) and prints a human-readable summary per file. Exit codes:
//   0  every file is a valid checkpoint
//   1  at least one file exists but is invalid (corrupted, truncated, CRC
//      mismatch, wrong schema)
//   2  usage error
//   3  at least one file is missing or unreadable — distinct from 1 so CI
//      can tell "the checkpoint rotted" from "it was never written"
// When both kinds of failure occur, the missing-file code (3) wins.
#include <cstdio>
#include <fstream>
#include <string>

#include "harness/checkpoint.h"
#include "support/snapshot.h"

namespace {

// 0 = valid, 1 = invalid, 3 = missing/unreadable.
int inspect(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      std::fprintf(stderr, "checkpoint_inspect: cannot open %s\n",
                   path.c_str());
      return 3;
    }
  }
  mak::harness::ExperimentCheckpoint checkpoint;
  try {
    // Empty expected digest: accept any experiment's checkpoint.
    checkpoint = mak::harness::read_checkpoint_file(path, "");
  } catch (const mak::support::SnapshotError& error) {
    std::fprintf(stderr, "checkpoint_inspect: INVALID %s: %s\n", path.c_str(),
                 error.what());
    // Even a corrupt envelope usually still identifies its experiment (from
    // the envelope text or the ckpt-<digest>-<seq>.json filename). Report it
    // so an operator can tell WHICH experiment's checkpoint rotted.
    if (const auto digest = mak::harness::peek_checkpoint_digest(path)) {
      std::fprintf(stderr, "checkpoint_inspect:   run_digest: %s\n",
                   digest->c_str());
    }
    return 1;
  }
  std::printf("%s: valid\n", path.c_str());
  if (const auto digest = mak::harness::peek_checkpoint_digest(path)) {
    std::printf("  run_digest: %s\n", digest->c_str());
  }
  std::printf("  repetitions: %zu/%zu completed%s\n",
              checkpoint.completed.size(), checkpoint.repetitions,
              checkpoint.complete ? " (experiment complete)" : "");
  for (std::size_t i = 0; i < checkpoint.completed.size(); ++i) {
    const auto& run = checkpoint.completed[i];
    std::printf("    rep %zu: %s on %s, %zu/%zu lines, %zu interactions%s\n",
                i, run.crawler.c_str(), run.app.c_str(),
                run.final_covered_lines, run.total_lines, run.interactions,
                run.aborted ? (" [aborted: " + run.abort_reason + "]").c_str()
                            : "");
  }
  if (checkpoint.in_flight_rep.has_value()) {
    std::printf("  in-flight: repetition %zu (mid-run state present)\n",
                *checkpoint.in_flight_rep);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: checkpoint_inspect <checkpoint.json>...\n");
    return 2;
  }
  bool any_invalid = false;
  bool any_missing = false;
  for (int i = 1; i < argc; ++i) {
    const int code = inspect(argv[i]);
    if (code == 1) any_invalid = true;
    if (code == 3) any_missing = true;
  }
  if (any_missing) return 3;
  return any_invalid ? 1 : 0;
}
