#include "baselines/qexplore.h"

#include "html/interactables.h"
#include "support/rng.h"

namespace mak::baselines {

QExploreCrawler::QExploreCrawler(support::Rng rng, QExploreConfig config)
    : RlCrawlerBase(std::move(rng)), config_(config), qtable_(config.q) {}

rl::StateId QExploreCrawler::get_state(const core::Page& page) {
  // Pre-processing: sequence of attribute values of the interactable
  // elements; similarity: hash equality of the string representation.
  const rl::StateId id = html::qexplore_state_hash(page.dom);
  known_states_.insert(id);
  return id;
}

std::size_t QExploreCrawler::action_count(const core::Page& page) {
  return page.actions.size();
}

std::size_t QExploreCrawler::choose_action(rl::StateId state,
                                           const core::Page&,
                                           std::size_t n_actions) {
  // Greedy strategy: the action with the highest Q-value; ties (which with
  // optimistic initialization means "never tried") break at random.
  return qtable_.argmax_action(state, n_actions, rng());
}

core::InteractionResult QExploreCrawler::execute(core::Browser& browser,
                                                 std::size_t action) {
  const core::ResolvedAction chosen = browser.page().actions.at(action);
  executed_key_ = chosen.key();
  set_last_action(chosen.describe());
  return browser.interact(chosen);
}

double QExploreCrawler::get_reward(rl::StateId state, std::size_t,
                                   const core::InteractionResult& result,
                                   rl::StateId, const core::Page&) {
  // Transport fault: the action never executed, so it earns nothing and
  // stays as novel as it was.
  if (result.transport_error) return 0.0;
  const std::uint64_t key =
      support::mix64(state * 0x9e3779b97f4a7c15ULL ^ executed_key_);
  return curiosity_.visit(key);
}

void QExploreCrawler::update_policy(rl::StateId state, std::size_t action,
                                    double reward, rl::StateId next_state,
                                    const core::Page& next_page) {
  qtable_.touch(next_state, next_page.actions.size());
  qtable_.action_guided_update(state, action, reward, next_state,
                               next_page.actions.size());
}

}  // namespace mak::baselines
