// WebExplor baseline (Zheng et al., ICSE 2021), reimplemented on the unified
// framework per the paper's methodology (Section V-A.1; the original has no
// public implementation).
//
// Building blocks (Table I):
//   GET_STATE      — URL + sequence of HTML tags; exact URL match first,
//                    then tag-sequence pattern matching among the states
//                    sharing the URL
//   GET_ACTIONS    — interactable DOM elements of the current page
//   CHOOSE_ACTION  — Gumbel-softmax over the state's Q-values
//   GET_REWARD     — curiosity: 1/sqrt(#times (s, a) executed)
//   UPDATE_POLICY  — standard Bellman Q-learning update
//
// The DFA guidance of the original is implemented but DISABLED by default,
// matching framework assumption (iii) of the paper. The paper justifies the
// omission with WebExplor's own result that the DFA does not change the
// 30-minute coverage; bench/dfa_ablation turns it on to test that claim.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "rl/qlearning.h"
#include "rl/reward.h"

namespace mak::baselines {

struct WebExplorConfig {
  rl::QLearningConfig q;             // alpha/gamma/initial Q
  double temperature = 0.2;          // Gumbel-softmax temperature
  double tag_similarity_threshold = 0.90;  // pattern-matching cut-off
  std::size_t max_tags_compared = 256;     // cap for the LCS computation
  // DFA guidance (disabled by default per the paper's assumption (iii)):
  // when no new state has been discovered for `stagnation_threshold`
  // consecutive steps, replay the shortest recorded transition path toward
  // a state that still has untried actions.
  bool enable_dfa = false;
  std::size_t stagnation_threshold = 12;
};

// Registry of WebExplor states: URL -> list of (tag sequence, state id).
// Exposed separately so the state-explosion bench (Figure 1, top) can probe
// it directly.
class WebExplorStateAbstraction {
 public:
  explicit WebExplorStateAbstraction(const WebExplorConfig& config)
      : config_(config) {}

  // Map a page to a state id, creating a new state when no existing state
  // matches (new URL, or tag sequence too dissimilar).
  rl::StateId state_of(const core::Page& page);

  std::size_t state_count() const noexcept { return next_state_; }
  std::size_t url_count() const noexcept { return by_url_.size(); }

 private:
  struct KnownState {
    std::vector<std::string> tags;
    rl::StateId id;
  };

  // Similarity in [0,1]: 2*LCS(a,b) / (|a|+|b|), sequences truncated to
  // max_tags_compared.
  double similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  WebExplorConfig config_;
  std::map<std::string, std::vector<KnownState>> by_url_;
  rl::StateId next_state_ = 0;
};

class WebExplorCrawler final : public core::RlCrawlerBase {
 public:
  WebExplorCrawler(support::Rng rng, WebExplorConfig config = {});

  std::string_view name() const override { return "WebExplor"; }

  const WebExplorStateAbstraction& abstraction() const noexcept {
    return abstraction_;
  }
  const rl::QTable& qtable() const noexcept { return qtable_; }
  // DFA diagnostics.
  std::size_t guidance_activations() const noexcept {
    return guidance_activations_;
  }
  std::size_t guided_steps() const noexcept { return guided_steps_; }

 protected:
  rl::StateId get_state(const core::Page& page) override;
  std::size_t action_count(const core::Page& page) override;
  std::size_t choose_action(rl::StateId state, const core::Page& page,
                            std::size_t n_actions) override;
  core::InteractionResult execute(core::Browser& browser,
                                  std::size_t action) override;
  double get_reward(rl::StateId state, std::size_t action,
                    const core::InteractionResult& result,
                    rl::StateId next_state,
                    const core::Page& next_page) override;
  void update_policy(rl::StateId state, std::size_t action, double reward,
                     rl::StateId next_state,
                     const core::Page& next_page) override;

 private:
  // Pick a guided action if the DFA has one queued for the current page;
  // returns the action index or nullopt to fall back to the policy.
  std::optional<std::size_t> guided_choice(const core::Page& page);
  // BFS over recorded transitions toward a state with untried actions.
  void plan_guidance(rl::StateId from);

  WebExplorConfig config_;
  WebExplorStateAbstraction abstraction_;
  rl::QTable qtable_;
  rl::CuriosityReward curiosity_;
  std::uint64_t executed_key_ = 0;  // (state, action) key of the last step

  // --- DFA machinery (only active with config_.enable_dfa) ---
  struct Transition {
    std::uint64_t action_key;
    rl::StateId to;
  };
  std::map<rl::StateId, std::vector<Transition>> transitions_;
  std::map<rl::StateId, std::set<std::uint64_t>> executed_actions_;
  std::map<rl::StateId, std::size_t> known_action_counts_;
  std::set<rl::StateId> visited_states_;
  std::deque<std::uint64_t> guidance_;
  std::size_t stagnation_ = 0;
  std::size_t guidance_activations_ = 0;
  std::size_t guided_steps_ = 0;
};

}  // namespace mak::baselines
