// QExplore baseline (Sherin et al., JSS 2023), reimplemented on the unified
// framework (Section V-A.1 of the paper; the authors' public code guided
// the reimplementation choices).
//
// Building blocks (Table I):
//   GET_STATE      — hash of the sequence of attribute values of the page's
//                    interactable elements
//   GET_ACTIONS    — interactable DOM elements of the current page
//   CHOOSE_ACTION  — deterministic: the action with the maximum Q-value
//   GET_REWARD     — curiosity: 1/sqrt(#times (s, a) executed)
//   UPDATE_POLICY  — modified Q-learning update that boosts successor
//                    states with more available actions
#pragma once

#include <cstdint>
#include <unordered_set>

#include "core/crawler.h"
#include "rl/qlearning.h"
#include "rl/reward.h"

namespace mak::baselines {

struct QExploreConfig {
  rl::QLearningConfig q;
};

class QExploreCrawler final : public core::RlCrawlerBase {
 public:
  QExploreCrawler(support::Rng rng, QExploreConfig config = {});

  std::string_view name() const override { return "QExplore"; }

  std::size_t state_count() const noexcept { return known_states_.size(); }
  const rl::QTable& qtable() const noexcept { return qtable_; }

 protected:
  rl::StateId get_state(const core::Page& page) override;
  std::size_t action_count(const core::Page& page) override;
  std::size_t choose_action(rl::StateId state, const core::Page& page,
                            std::size_t n_actions) override;
  core::InteractionResult execute(core::Browser& browser,
                                  std::size_t action) override;
  double get_reward(rl::StateId state, std::size_t action,
                    const core::InteractionResult& result,
                    rl::StateId next_state,
                    const core::Page& next_page) override;
  void update_policy(rl::StateId state, std::size_t action, double reward,
                     rl::StateId next_state,
                     const core::Page& next_page) override;

 private:
  QExploreConfig config_;
  rl::QTable qtable_;
  rl::CuriosityReward curiosity_;
  std::unordered_set<rl::StateId> known_states_;
  std::uint64_t executed_key_ = 0;
};

}  // namespace mak::baselines
