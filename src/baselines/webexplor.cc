#include "baselines/webexplor.h"

#include <algorithm>

#include "html/interactables.h"
#include "support/rng.h"

namespace mak::baselines {

double WebExplorStateAbstraction::similarity(
    const std::vector<std::string>& a, const std::vector<std::string>& b) const {
  return html::sequence_similarity(a, b, config_.max_tags_compared);
}

rl::StateId WebExplorStateAbstraction::state_of(const core::Page& page) {
  // Pre-processing function: (URL, tag sequence).
  const std::string url_key = page.url.without_fragment();
  std::vector<std::string> tags = html::tag_sequence(page.dom);

  auto& states = by_url_[url_key];
  // Exact URL matching first: a brand-new URL always creates a new state.
  // For an existing URL, compare tag sequences by pattern matching.
  for (const auto& known : states) {
    if (similarity(known.tags, tags) >= config_.tag_similarity_threshold) {
      return known.id;
    }
  }
  const rl::StateId id = next_state_++;
  states.push_back(KnownState{std::move(tags), id});
  return id;
}

WebExplorCrawler::WebExplorCrawler(support::Rng rng, WebExplorConfig config)
    : RlCrawlerBase(std::move(rng)),
      config_(config),
      abstraction_(config),
      qtable_(config.q) {}

rl::StateId WebExplorCrawler::get_state(const core::Page& page) {
  return abstraction_.state_of(page);
}

std::size_t WebExplorCrawler::action_count(const core::Page& page) {
  return page.actions.size();
}

std::optional<std::size_t> WebExplorCrawler::guided_choice(
    const core::Page& page) {
  if (guidance_.empty()) return std::nullopt;
  const std::uint64_t wanted = guidance_.front();
  for (std::size_t i = 0; i < page.actions.size(); ++i) {
    if (page.actions[i].key() == wanted) {
      guidance_.pop_front();
      ++guided_steps_;
      return i;
    }
  }
  // The recorded action is not on this page (the application moved on):
  // abandon the plan rather than wander.
  guidance_.clear();
  return std::nullopt;
}

void WebExplorCrawler::plan_guidance(rl::StateId from) {
  // BFS over the recorded transition graph toward any state with untried
  // actions, reconstructing the action-key path.
  std::map<rl::StateId, std::pair<rl::StateId, std::uint64_t>> parent;
  std::deque<rl::StateId> queue;
  std::set<rl::StateId> seen;
  queue.push_back(from);
  seen.insert(from);
  rl::StateId goal = from;
  bool found = false;
  while (!queue.empty() && !found) {
    const rl::StateId current = queue.front();
    queue.pop_front();
    if (current != from) {
      const auto known = known_action_counts_.find(current);
      const auto executed = executed_actions_.find(current);
      const std::size_t done =
          executed != executed_actions_.end() ? executed->second.size() : 0;
      if (known != known_action_counts_.end() && done < known->second) {
        goal = current;
        found = true;
        break;
      }
    }
    const auto edges = transitions_.find(current);
    if (edges == transitions_.end()) continue;
    for (const auto& edge : edges->second) {
      if (seen.insert(edge.to).second) {
        parent[edge.to] = {current, edge.action_key};
        queue.push_back(edge.to);
      }
    }
  }
  if (!found) return;
  std::vector<std::uint64_t> reversed;
  for (rl::StateId at = goal; at != from;) {
    const auto& [prev, key] = parent.at(at);
    reversed.push_back(key);
    at = prev;
  }
  guidance_.assign(reversed.rbegin(), reversed.rend());
  ++guidance_activations_;
}

std::size_t WebExplorCrawler::choose_action(rl::StateId state,
                                            const core::Page& page,
                                            std::size_t n_actions) {
  qtable_.touch(state, n_actions);
  known_action_counts_[state] =
      std::max(known_action_counts_[state], n_actions);
  if (config_.enable_dfa) {
    if (auto guided = guided_choice(page)) return *guided;
    if (stagnation_ >= config_.stagnation_threshold) {
      stagnation_ = 0;
      plan_guidance(state);
      if (auto guided = guided_choice(page)) return *guided;
    }
  }
  std::vector<double> q_values(n_actions);
  for (std::size_t i = 0; i < n_actions; ++i) {
    q_values[i] = qtable_.q(state, i);
  }
  return rl::gumbel_softmax_choice(q_values, config_.temperature, rng());
}

core::InteractionResult WebExplorCrawler::execute(core::Browser& browser,
                                                  std::size_t action) {
  // Copy the action out: interact() replaces the current page.
  const core::ResolvedAction chosen = browser.page().actions.at(action);
  executed_key_ = chosen.key();
  set_last_action(chosen.describe());
  return browser.interact(chosen);
}

double WebExplorCrawler::get_reward(rl::StateId state, std::size_t,
                                    const core::InteractionResult& result,
                                    rl::StateId, const core::Page&) {
  // Transport fault: the action never executed, so it earns nothing and
  // stays as novel as it was.
  if (result.transport_error) return 0.0;
  // Curiosity over (state, action) execution counts.
  const std::uint64_t key =
      support::mix64(state * 0x9e3779b97f4a7c15ULL ^ executed_key_);
  return curiosity_.visit(key);
}

void WebExplorCrawler::update_policy(rl::StateId state, std::size_t action,
                                     double reward, rl::StateId next_state,
                                     const core::Page& next_page) {
  qtable_.touch(next_state, next_page.actions.size());
  qtable_.bellman_update(state, action, reward, next_state);
  if (config_.enable_dfa) {
    // Record the transition and the executed action for the DFA.
    transitions_[state].push_back(Transition{executed_key_, next_state});
    executed_actions_[state].insert(executed_key_);
    known_action_counts_[next_state] = std::max(
        known_action_counts_[next_state], next_page.actions.size());
    if (visited_states_.insert(next_state).second) {
      stagnation_ = 0;  // discovered a brand-new state
    } else {
      ++stagnation_;
    }
  }
}

}  // namespace mak::baselines
