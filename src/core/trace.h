// Crawl tracing: a structured event log of a run.
//
// Each step emits one record (time, agent, arm/action, URL, HTTP status,
// link increment, coverage). Traces serialize to JSON Lines for offline
// analysis and replay-debugging of crawler decisions; the mak_crawl tool
// exposes them with --trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/clock.h"

namespace mak::core {

struct TraceEvent {
  enum class Kind { kSeedLoad, kInteraction, kRecovery };

  Kind kind = Kind::kInteraction;
  support::VirtualMillis time = 0;
  std::size_t step = 0;
  std::string action;       // arm name or action description
  std::string url;          // URL landed on
  int status = 0;           // HTTP status
  std::size_t new_links = 0;
  std::size_t covered_lines = 0;  // server-side coverage after the step
  std::size_t retries = 0;        // retry attempts spent during the step
};

std::string_view to_string(TraceEvent::Kind kind) noexcept;

class CrawlTrace {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  // Serialize as JSON Lines (one object per event).
  void write_jsonl(std::ostream& os) const;

  // Summary statistics for quick inspection.
  struct Summary {
    std::size_t interactions = 0;
    std::size_t recoveries = 0;
    std::size_t errors = 0;         // events with status >= 400
    std::size_t total_new_links = 0;
    std::size_t total_retries = 0;  // retry attempts across all steps
  };
  Summary summarize() const noexcept;

 private:
  std::vector<TraceEvent> events_;
};

// Minimal JSON string escaping (sufficient for URLs and action labels).
std::string json_escape(std::string_view text);

}  // namespace mak::core
