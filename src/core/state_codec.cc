#include "core/state_codec.h"

#include "support/snapshot.h"

namespace mak::core {

namespace snapshot = support::snapshot;

support::json::Value url_to_json(const url::Url& url) {
  // Component-wise (not via to_string/parse) so the round-trip is exact by
  // construction, including corner cases like explicit default ports.
  support::json::Object object;
  object.emplace("scheme", url.scheme);
  object.emplace("host", url.host);
  object.emplace("port", static_cast<double>(url.port));
  object.emplace("path", url.path);
  object.emplace("query", url.query);
  object.emplace("fragment", url.fragment);
  return support::json::Value(std::move(object));
}

url::Url url_from_json(const support::json::Value& value) {
  url::Url url;
  url.scheme = snapshot::require_string(value, "scheme");
  url.host = snapshot::require_string(value, "host");
  const std::uint64_t port = snapshot::require_index(value, "port");
  if (port > 0xffff) {
    throw support::SnapshotError("snapshot: url port out of range");
  }
  url.port = static_cast<std::uint16_t>(port);
  url.path = snapshot::require_string(value, "path");
  url.query = snapshot::require_string(value, "query");
  url.fragment = snapshot::require_string(value, "fragment");
  return url;
}

support::json::Value form_field_to_json(const html::FormField& field) {
  support::json::Object object;
  object.emplace("name", field.name);
  object.emplace("type", field.type);
  object.emplace("value", field.value);
  support::json::Array options;
  options.reserve(field.options.size());
  for (const auto& option : field.options) options.emplace_back(option);
  object.emplace("options", support::json::Value(std::move(options)));
  return support::json::Value(std::move(object));
}

html::FormField form_field_from_json(const support::json::Value& value) {
  html::FormField field;
  field.name = snapshot::require_string(value, "name");
  field.type = snapshot::require_string(value, "type");
  field.value = snapshot::require_string(value, "value");
  for (const auto& option : snapshot::require_array(value, "options")) {
    if (!option.is_string()) {
      throw support::SnapshotError("snapshot: form options must be strings");
    }
    field.options.push_back(option.as_string());
  }
  return field;
}

support::json::Value interactable_to_json(const html::Interactable& element) {
  support::json::Object object;
  object.emplace("kind", static_cast<double>(element.kind));
  object.emplace("target", element.target);
  object.emplace("method", element.method);
  object.emplace("eid", element.id);
  object.emplace("name", element.name);
  object.emplace("text", element.text);
  support::json::Array fields;
  fields.reserve(element.fields.size());
  for (const auto& field : element.fields) {
    fields.emplace_back(form_field_to_json(field));
  }
  object.emplace("fields", support::json::Value(std::move(fields)));
  return support::json::Value(std::move(object));
}

html::Interactable interactable_from_json(const support::json::Value& value) {
  html::Interactable element;
  const std::uint64_t kind = snapshot::require_index(value, "kind");
  if (kind > static_cast<std::uint64_t>(html::InteractableKind::kForm)) {
    throw support::SnapshotError("snapshot: bad interactable kind");
  }
  element.kind = static_cast<html::InteractableKind>(kind);
  element.target = snapshot::require_string(value, "target");
  element.method = snapshot::require_string(value, "method");
  element.id = snapshot::require_string(value, "eid");
  element.name = snapshot::require_string(value, "name");
  element.text = snapshot::require_string(value, "text");
  for (const auto& field : snapshot::require_array(value, "fields")) {
    element.fields.push_back(form_field_from_json(field));
  }
  return element;
}

support::json::Value action_to_json(const ResolvedAction& action) {
  support::json::Object object;
  object.emplace("element", interactable_to_json(action.element));
  object.emplace("target", url_to_json(action.target));
  return support::json::Value(std::move(object));
}

ResolvedAction action_from_json(const support::json::Value& value) {
  ResolvedAction action;
  action.element =
      interactable_from_json(snapshot::require(value, "element"));
  action.target = url_from_json(snapshot::require(value, "target"));
  return action;
}

}  // namespace mak::core
