#include "core/frontier.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "core/state_codec.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

namespace mak::core {

namespace {

// Frontier gauges are process-wide: with several concurrent runs they show
// "some run's current frontier" (last writer wins), which is what a single
// profiling run — the intended consumer — needs.
struct FrontierMetrics {
  support::Counter& pushes;
  support::Counter& duplicates;
  support::Counter& takes;
  support::Counter& requeues;
  support::Gauge& size;
  support::Gauge& lowest_level;
  support::Histogram& take_level;
  std::array<support::Gauge*, 4> depth;  // levels 0..3
  support::Gauge& depth_rest;            // everything above level 3

  static FrontierMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static FrontierMetrics metrics{
        registry.counter(metric::kFrontierPushes),
        registry.counter(metric::kFrontierDuplicates),
        registry.counter(metric::kFrontierTakes),
        registry.counter(metric::kFrontierRequeues),
        registry.gauge(metric::kFrontierSize),
        registry.gauge(metric::kFrontierLowestLevel),
        registry.histogram(metric::kFrontierTakeLevel,
                           support::small_count_bounds()),
        {&registry.gauge(metric::kFrontierDepthL0),
         &registry.gauge(metric::kFrontierDepthL1),
         &registry.gauge(metric::kFrontierDepthL2),
         &registry.gauge(metric::kFrontierDepthL3)},
        registry.gauge(metric::kFrontierDepthRest),
    };
    return metrics;
  }
};

}  // namespace

std::string_view to_string(Arm arm) noexcept {
  switch (arm) {
    case Arm::kHead:
      return "Head";
    case Arm::kTail:
      return "Tail";
    case Arm::kRandom:
      return "Random";
  }
  return "?";
}

std::deque<ResolvedAction>& LeveledDeque::level(std::size_t i) {
  if (levels_.size() <= i) levels_.resize(i + 1);
  return levels_[i];
}

bool LeveledDeque::push(const ResolvedAction& action) {
  const std::uint64_t key = action.key();
  if (level_of_.find(key) != level_of_.end()) {
    FrontierMetrics::instance().duplicates.add();
    return false;
  }
  level_of_[key] = 0;
  level(0).push_back(action);
  ++size_;
  FrontierMetrics::instance().pushes.add();
  return true;
}

std::size_t LeveledDeque::level_size(std::size_t i) const noexcept {
  return i < levels_.size() ? levels_[i].size() : 0;
}

std::size_t LeveledDeque::lowest_level() const noexcept {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return i;
  }
  return 0;
}

std::optional<ResolvedAction> LeveledDeque::take(Arm arm, support::Rng& rng) {
  if (size_ == 0) return std::nullopt;
  const std::size_t taken_level = lowest_level();
  // Publish frontier shape once per take (i.e. once per crawl step): depth
  // per level, total size and the level the element is drawn from.
  {
    FrontierMetrics& metrics = FrontierMetrics::instance();
    metrics.takes.add();
    metrics.take_level.record(static_cast<double>(taken_level));
    metrics.size.set(static_cast<double>(size_));
    metrics.lowest_level.set(static_cast<double>(taken_level));
    double rest = 0.0;
    for (std::size_t i = 0; i < levels_.size() || i < metrics.depth.size();
         ++i) {
      const double depth = static_cast<double>(level_size(i));
      if (i < metrics.depth.size()) {
        metrics.depth[i]->set(depth);
      } else {
        rest += depth;
      }
    }
    metrics.depth_rest.set(rest);
  }
  auto& deque = levels_[taken_level];
  ResolvedAction out;
  switch (arm) {
    case Arm::kHead:
      out = std::move(deque.front());
      deque.pop_front();
      break;
    case Arm::kTail:
      out = std::move(deque.back());
      deque.pop_back();
      break;
    case Arm::kRandom: {
      const std::size_t index = rng.next_below(deque.size());
      out = std::move(deque[index]);
      deque.erase(deque.begin() + static_cast<std::ptrdiff_t>(index));
      break;
    }
  }
  --size_;
  // Record the level the element will live at when requeued.
  auto it = level_of_.find(out.key());
  if (it != level_of_.end()) ++it->second;
  return out;
}

void LeveledDeque::requeue(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue: unknown element");
  }
  level(it->second).push_back(action);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

void LeveledDeque::requeue_same(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue_same: unknown element");
  }
  // take() already promoted the element; undo that — the attempt failed.
  if (it->second > 0) --it->second;
  level(it->second).push_back(action);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

void LeveledDeque::requeue_flat(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue_flat: unknown element");
  }
  it->second = 0;
  level(0).push_back(action);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

std::size_t LeveledDeque::interactions_of(std::uint64_t key) const noexcept {
  const auto it = level_of_.find(key);
  return it != level_of_.end() ? it->second : 0;
}

support::json::Value LeveledDeque::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("core.frontier", 1);
  support::json::Array levels;
  levels.reserve(levels_.size());
  for (const auto& deque : levels_) {
    support::json::Array level_json;
    level_json.reserve(deque.size());
    for (const auto& action : deque) {
      level_json.emplace_back(action_to_json(action));
    }
    levels.emplace_back(std::move(level_json));
  }
  state.emplace("levels", support::json::Value(std::move(levels)));
  // Sorted by key so equal frontiers serialize to equal bytes.
  std::vector<std::pair<std::uint64_t, std::size_t>> entries(level_of_.begin(),
                                                             level_of_.end());
  std::sort(entries.begin(), entries.end());
  support::json::Array level_of;
  level_of.reserve(entries.size());
  for (const auto& [key, level] : entries) {
    support::json::Array pair;
    pair.emplace_back(snapshot::u64_to_hex(key));
    pair.emplace_back(static_cast<double>(level));
    level_of.emplace_back(std::move(pair));
  }
  state.emplace("level_of", support::json::Value(std::move(level_of)));
  return support::json::Value(std::move(state));
}

void LeveledDeque::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "core.frontier", 1);
  std::unordered_map<std::uint64_t, std::size_t> level_of;
  for (const auto& pair : snapshot::require_array(state, "level_of")) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_string() || !pair.as_array()[1].is_number()) {
      throw support::SnapshotError(
          "LeveledDeque: level_of entries must be [hex key, level] pairs");
    }
    const double level = pair.as_array()[1].as_number();
    if (!(level >= 0.0) || level != static_cast<double>(
                                        static_cast<std::size_t>(level))) {
      throw support::SnapshotError("LeveledDeque: bad level value");
    }
    const std::uint64_t key =
        snapshot::hex_to_u64(pair.as_array()[0].as_string());
    if (!level_of.emplace(key, static_cast<std::size_t>(level)).second) {
      throw support::SnapshotError("LeveledDeque: duplicate level_of key");
    }
  }
  std::vector<std::deque<ResolvedAction>> levels;
  std::size_t size = 0;
  for (const auto& level_json : snapshot::require_array(state, "levels")) {
    if (!level_json.is_array()) {
      throw support::SnapshotError("LeveledDeque: levels must be arrays");
    }
    auto& deque = levels.emplace_back();
    for (const auto& action_json : level_json.as_array()) {
      ResolvedAction action = action_from_json(action_json);
      const auto it = level_of.find(action.key());
      if (it == level_of.end() || it->second != levels.size() - 1) {
        throw support::SnapshotError(
            "LeveledDeque: queued element disagrees with level_of");
      }
      deque.push_back(std::move(action));
      ++size;
    }
  }
  levels_ = std::move(levels);
  level_of_ = std::move(level_of);
  size_ = size;
}

}  // namespace mak::core
