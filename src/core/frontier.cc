#include "core/frontier.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/state_codec.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

namespace mak::core {

namespace {

// Frontier gauges are process-wide: with several concurrent runs they show
// "some run's current frontier" (last writer wins), which is what a single
// profiling run — the intended consumer — needs.
struct FrontierMetrics {
  support::Counter& pushes;
  support::Counter& duplicates;
  support::Counter& takes;
  support::Counter& requeues;
  support::Gauge& size;
  support::Gauge& lowest_level;
  support::Gauge& interned;
  support::Histogram& take_level;
  std::array<support::Gauge*, 4> depth;  // levels 0..3
  support::Gauge& depth_rest;            // everything above level 3

  static FrontierMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static FrontierMetrics metrics{
        registry.counter(metric::kFrontierPushes),
        registry.counter(metric::kFrontierDuplicates),
        registry.counter(metric::kFrontierTakes),
        registry.counter(metric::kFrontierRequeues),
        registry.gauge(metric::kFrontierSize),
        registry.gauge(metric::kFrontierLowestLevel),
        registry.gauge(metric::kFrontierInternActions),
        registry.histogram(metric::kFrontierTakeLevel,
                           support::level_bounds()),
        {&registry.gauge(metric::kFrontierDepthL0),
         &registry.gauge(metric::kFrontierDepthL1),
         &registry.gauge(metric::kFrontierDepthL2),
         &registry.gauge(metric::kFrontierDepthL3)},
        registry.gauge(metric::kFrontierDepthRest),
    };
    return metrics;
  }
};

}  // namespace

std::string_view to_string(Arm arm) noexcept {
  switch (arm) {
    case Arm::kHead:
      return "Head";
    case Arm::kTail:
      return "Tail";
    case Arm::kRandom:
      return "Random";
  }
  return "?";
}

LeveledDeque::Level& LeveledDeque::level(std::size_t i) {
  if (levels_.size() <= i) levels_.resize(i + 1);
  return levels_[i];
}

bool LeveledDeque::push(const ResolvedAction& action) {
  const std::uint64_t key = action.key();
  const auto fresh = static_cast<std::uint32_t>(store_.size());
  if (!id_of_.insert(key, fresh)) {
    FrontierMetrics::instance().duplicates.add();
    return false;
  }
  store_.push_back(action);
  has_action_.push_back(1);
  key_of_.push_back(key);
  level_of_id_.push_back(0);
  level(0).push_back(fresh);
  ++size_;
  FrontierMetrics& metrics = FrontierMetrics::instance();
  metrics.pushes.add();
  metrics.interned.set(static_cast<double>(store_.size()));
  return true;
}

std::size_t LeveledDeque::level_size(std::size_t i) const noexcept {
  return i < levels_.size() ? levels_[i].size() : 0;
}

std::size_t LeveledDeque::lowest_level() const noexcept {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return i;
  }
  return 0;
}

std::optional<ResolvedAction> LeveledDeque::take(Arm arm, support::Rng& rng) {
  if (size_ == 0) return std::nullopt;
  const std::size_t taken_level = lowest_level();
  // Publish frontier shape once per take (i.e. once per crawl step): depth
  // per level, total size and the level the element is drawn from.
  {
    FrontierMetrics& metrics = FrontierMetrics::instance();
    metrics.takes.add();
    metrics.take_level.record(static_cast<double>(taken_level));
    metrics.size.set(static_cast<double>(size_));
    metrics.lowest_level.set(static_cast<double>(taken_level));
    double rest = 0.0;
    for (std::size_t i = 0; i < levels_.size() || i < metrics.depth.size();
         ++i) {
      const double depth = static_cast<double>(level_size(i));
      if (i < metrics.depth.size()) {
        metrics.depth[i]->set(depth);
      } else {
        rest += depth;
      }
    }
    metrics.depth_rest.set(rest);
  }
  Level& deque = levels_[taken_level];
  std::uint32_t id = 0;
  switch (arm) {
    case Arm::kHead:
      id = deque.pop_front();
      break;
    case Arm::kTail:
      id = deque.pop_back();
      break;
    case Arm::kRandom:
      id = deque.pop_at(rng.next_below(deque.size()));
      break;
  }
  --size_;
  // Record the level the element will live at when requeued.
  ++level_of_id_[id];
  return store_[id];
}

std::uint32_t LeveledDeque::known_id(const ResolvedAction& action,
                                     const char* what) const {
  const std::uint32_t* id = id_of_.find(action.key());
  if (id == nullptr) throw std::logic_error(what);
  return *id;
}

void LeveledDeque::append(std::uint32_t id, const ResolvedAction& action) {
  // The store lacks the action only right after a checkpoint reload of an
  // in-flight element (serialized via the key->level table alone); the
  // requeue that follows carries the bytes to refill the slot.
  if (!has_action_[id]) {
    store_[id] = action;
    has_action_[id] = 1;
  }
  level(level_of_id_[id]).push_back(id);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

void LeveledDeque::requeue(const ResolvedAction& action) {
  const std::uint32_t id =
      known_id(action, "LeveledDeque::requeue: unknown element");
  append(id, action);
}

void LeveledDeque::requeue_same(const ResolvedAction& action) {
  const std::uint32_t id =
      known_id(action, "LeveledDeque::requeue_same: unknown element");
  // take() already promoted the element; undo that — the attempt failed.
  if (level_of_id_[id] > 0) --level_of_id_[id];
  append(id, action);
}

void LeveledDeque::requeue_flat(const ResolvedAction& action) {
  const std::uint32_t id =
      known_id(action, "LeveledDeque::requeue_flat: unknown element");
  level_of_id_[id] = 0;
  append(id, action);
}

std::size_t LeveledDeque::interactions_of(std::uint64_t key) const noexcept {
  const std::uint32_t* id = id_of_.find(key);
  return id != nullptr ? level_of_id_[*id] : 0;
}

support::json::Value LeveledDeque::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("core.frontier", 1);
  support::json::Array levels;
  levels.reserve(levels_.size());
  for (const auto& deque : levels_) {
    support::json::Array level_json;
    level_json.reserve(deque.size());
    for (std::size_t i = deque.head; i < deque.ids.size(); ++i) {
      level_json.emplace_back(action_to_json(store_[deque.ids[i]]));
    }
    levels.emplace_back(std::move(level_json));
  }
  state.emplace("levels", support::json::Value(std::move(levels)));
  // Sorted by key so equal frontiers serialize to equal bytes.
  std::vector<std::pair<std::uint64_t, std::size_t>> entries;
  entries.reserve(key_of_.size());
  for (std::uint32_t id = 0; id < key_of_.size(); ++id) {
    entries.emplace_back(key_of_[id], level_of_id_[id]);
  }
  std::sort(entries.begin(), entries.end());
  support::json::Array level_of;
  level_of.reserve(entries.size());
  for (const auto& [key, level] : entries) {
    support::json::Array pair;
    pair.emplace_back(snapshot::u64_to_hex(key));
    pair.emplace_back(static_cast<double>(level));
    level_of.emplace_back(std::move(pair));
  }
  state.emplace("level_of", support::json::Value(std::move(level_of)));
  return support::json::Value(std::move(state));
}

void LeveledDeque::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "core.frontier", 1);
  // Stage into fresh structures so a malformed payload leaves *this intact.
  support::FlatMap64 id_of;
  std::vector<ResolvedAction> store;
  std::vector<std::uint8_t> has_action;
  std::vector<std::uint64_t> key_of;
  std::vector<std::uint32_t> level_of_id;
  for (const auto& pair : snapshot::require_array(state, "level_of")) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_string() || !pair.as_array()[1].is_number()) {
      throw support::SnapshotError(
          "LeveledDeque: level_of entries must be [hex key, level] pairs");
    }
    const double level = pair.as_array()[1].as_number();
    if (!(level >= 0.0) || level != static_cast<double>(
                                        static_cast<std::size_t>(level))) {
      throw support::SnapshotError("LeveledDeque: bad level value");
    }
    const std::uint64_t key =
        snapshot::hex_to_u64(pair.as_array()[0].as_string());
    const auto id = static_cast<std::uint32_t>(store.size());
    if (!id_of.insert(key, id)) {
      throw support::SnapshotError("LeveledDeque: duplicate level_of key");
    }
    store.emplace_back();
    has_action.push_back(0);
    key_of.push_back(key);
    level_of_id.push_back(static_cast<std::uint32_t>(level));
  }
  std::vector<Level> levels;
  std::size_t size = 0;
  for (const auto& level_json : snapshot::require_array(state, "levels")) {
    if (!level_json.is_array()) {
      throw support::SnapshotError("LeveledDeque: levels must be arrays");
    }
    auto& deque = levels.emplace_back();
    for (const auto& action_json : level_json.as_array()) {
      ResolvedAction action = action_from_json(action_json);
      const std::uint32_t* id = id_of.find(action.key());
      if (id == nullptr || level_of_id[*id] != levels.size() - 1) {
        throw support::SnapshotError(
            "LeveledDeque: queued element disagrees with level_of");
      }
      if (!has_action[*id]) {
        store[*id] = std::move(action);
        has_action[*id] = 1;
      }
      deque.push_back(*id);
      ++size;
    }
  }
  id_of_ = std::move(id_of);
  store_ = std::move(store);
  has_action_ = std::move(has_action);
  key_of_ = std::move(key_of);
  level_of_id_ = std::move(level_of_id);
  levels_ = std::move(levels);
  size_ = size;
}

}  // namespace mak::core
