#include "core/frontier.h"

#include <stdexcept>

namespace mak::core {

std::string_view to_string(Arm arm) noexcept {
  switch (arm) {
    case Arm::kHead:
      return "Head";
    case Arm::kTail:
      return "Tail";
    case Arm::kRandom:
      return "Random";
  }
  return "?";
}

std::deque<ResolvedAction>& LeveledDeque::level(std::size_t i) {
  if (levels_.size() <= i) levels_.resize(i + 1);
  return levels_[i];
}

bool LeveledDeque::push(const ResolvedAction& action) {
  const std::uint64_t key = action.key();
  if (level_of_.find(key) != level_of_.end()) return false;
  level_of_[key] = 0;
  level(0).push_back(action);
  ++size_;
  return true;
}

std::size_t LeveledDeque::level_size(std::size_t i) const noexcept {
  return i < levels_.size() ? levels_[i].size() : 0;
}

std::size_t LeveledDeque::lowest_level() const noexcept {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return i;
  }
  return 0;
}

std::optional<ResolvedAction> LeveledDeque::take(Arm arm, support::Rng& rng) {
  if (size_ == 0) return std::nullopt;
  auto& deque = levels_[lowest_level()];
  ResolvedAction out;
  switch (arm) {
    case Arm::kHead:
      out = std::move(deque.front());
      deque.pop_front();
      break;
    case Arm::kTail:
      out = std::move(deque.back());
      deque.pop_back();
      break;
    case Arm::kRandom: {
      const std::size_t index = rng.next_below(deque.size());
      out = std::move(deque[index]);
      deque.erase(deque.begin() + static_cast<std::ptrdiff_t>(index));
      break;
    }
  }
  --size_;
  // Record the level the element will live at when requeued.
  auto it = level_of_.find(out.key());
  if (it != level_of_.end()) ++it->second;
  return out;
}

void LeveledDeque::requeue(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue: unknown element");
  }
  level(it->second).push_back(action);
  ++size_;
}

void LeveledDeque::requeue_same(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue_same: unknown element");
  }
  // take() already promoted the element; undo that — the attempt failed.
  if (it->second > 0) --it->second;
  level(it->second).push_back(action);
  ++size_;
}

void LeveledDeque::requeue_flat(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue_flat: unknown element");
  }
  it->second = 0;
  level(0).push_back(action);
  ++size_;
}

std::size_t LeveledDeque::interactions_of(std::uint64_t key) const noexcept {
  const auto it = level_of_.find(key);
  return it != level_of_.end() ? it->second : 0;
}

}  // namespace mak::core
