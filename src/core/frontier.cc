#include "core/frontier.h"

#include <array>
#include <stdexcept>

#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::core {

namespace {

// Frontier gauges are process-wide: with several concurrent runs they show
// "some run's current frontier" (last writer wins), which is what a single
// profiling run — the intended consumer — needs.
struct FrontierMetrics {
  support::Counter& pushes;
  support::Counter& duplicates;
  support::Counter& takes;
  support::Counter& requeues;
  support::Gauge& size;
  support::Gauge& lowest_level;
  support::Histogram& take_level;
  std::array<support::Gauge*, 4> depth;  // levels 0..3
  support::Gauge& depth_rest;            // everything above level 3

  static FrontierMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static FrontierMetrics metrics{
        registry.counter(metric::kFrontierPushes),
        registry.counter(metric::kFrontierDuplicates),
        registry.counter(metric::kFrontierTakes),
        registry.counter(metric::kFrontierRequeues),
        registry.gauge(metric::kFrontierSize),
        registry.gauge(metric::kFrontierLowestLevel),
        registry.histogram(metric::kFrontierTakeLevel,
                           support::small_count_bounds()),
        {&registry.gauge(metric::kFrontierDepthL0),
         &registry.gauge(metric::kFrontierDepthL1),
         &registry.gauge(metric::kFrontierDepthL2),
         &registry.gauge(metric::kFrontierDepthL3)},
        registry.gauge(metric::kFrontierDepthRest),
    };
    return metrics;
  }
};

}  // namespace

std::string_view to_string(Arm arm) noexcept {
  switch (arm) {
    case Arm::kHead:
      return "Head";
    case Arm::kTail:
      return "Tail";
    case Arm::kRandom:
      return "Random";
  }
  return "?";
}

std::deque<ResolvedAction>& LeveledDeque::level(std::size_t i) {
  if (levels_.size() <= i) levels_.resize(i + 1);
  return levels_[i];
}

bool LeveledDeque::push(const ResolvedAction& action) {
  const std::uint64_t key = action.key();
  if (level_of_.find(key) != level_of_.end()) {
    FrontierMetrics::instance().duplicates.add();
    return false;
  }
  level_of_[key] = 0;
  level(0).push_back(action);
  ++size_;
  FrontierMetrics::instance().pushes.add();
  return true;
}

std::size_t LeveledDeque::level_size(std::size_t i) const noexcept {
  return i < levels_.size() ? levels_[i].size() : 0;
}

std::size_t LeveledDeque::lowest_level() const noexcept {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return i;
  }
  return 0;
}

std::optional<ResolvedAction> LeveledDeque::take(Arm arm, support::Rng& rng) {
  if (size_ == 0) return std::nullopt;
  const std::size_t taken_level = lowest_level();
  // Publish frontier shape once per take (i.e. once per crawl step): depth
  // per level, total size and the level the element is drawn from.
  {
    FrontierMetrics& metrics = FrontierMetrics::instance();
    metrics.takes.add();
    metrics.take_level.record(static_cast<double>(taken_level));
    metrics.size.set(static_cast<double>(size_));
    metrics.lowest_level.set(static_cast<double>(taken_level));
    double rest = 0.0;
    for (std::size_t i = 0; i < levels_.size() || i < metrics.depth.size();
         ++i) {
      const double depth = static_cast<double>(level_size(i));
      if (i < metrics.depth.size()) {
        metrics.depth[i]->set(depth);
      } else {
        rest += depth;
      }
    }
    metrics.depth_rest.set(rest);
  }
  auto& deque = levels_[taken_level];
  ResolvedAction out;
  switch (arm) {
    case Arm::kHead:
      out = std::move(deque.front());
      deque.pop_front();
      break;
    case Arm::kTail:
      out = std::move(deque.back());
      deque.pop_back();
      break;
    case Arm::kRandom: {
      const std::size_t index = rng.next_below(deque.size());
      out = std::move(deque[index]);
      deque.erase(deque.begin() + static_cast<std::ptrdiff_t>(index));
      break;
    }
  }
  --size_;
  // Record the level the element will live at when requeued.
  auto it = level_of_.find(out.key());
  if (it != level_of_.end()) ++it->second;
  return out;
}

void LeveledDeque::requeue(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue: unknown element");
  }
  level(it->second).push_back(action);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

void LeveledDeque::requeue_same(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue_same: unknown element");
  }
  // take() already promoted the element; undo that — the attempt failed.
  if (it->second > 0) --it->second;
  level(it->second).push_back(action);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

void LeveledDeque::requeue_flat(const ResolvedAction& action) {
  const auto it = level_of_.find(action.key());
  if (it == level_of_.end()) {
    throw std::logic_error("LeveledDeque::requeue_flat: unknown element");
  }
  it->second = 0;
  level(0).push_back(action);
  ++size_;
  FrontierMetrics::instance().requeues.add();
}

std::size_t LeveledDeque::interactions_of(std::uint64_t key) const noexcept {
  const auto it = level_of_.find(key);
  return it != level_of_.end() ? it->second : 0;
}

}  // namespace mak::core
