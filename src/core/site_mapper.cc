#include "core/site_mapper.h"

#include <deque>
#include <set>

#include "support/rng.h"

namespace mak::core {

SiteMap map_site(httpsim::Network& network, const url::Url& seed,
                 SiteMapperConfig config) {
  SiteMap map;
  Browser browser(network, seed, support::Rng(0x517e));

  struct QueueEntry {
    url::Url target;
    std::size_t depth;
  };
  std::deque<QueueEntry> queue;
  std::set<std::string> enqueued;
  std::set<std::string> form_keys;
  std::set<std::string> button_keys;

  const std::string seed_key = url::normalized(seed).without_fragment();
  queue.push_back({url::normalized(seed), 0});
  enqueued.insert(seed_key);

  while (!queue.empty()) {
    if (map.pages_visited >= config.max_pages) {
      map.reached_cap = true;
      break;
    }
    const QueueEntry entry = queue.front();
    queue.pop_front();

    ResolvedAction fetch;
    fetch.element.kind = html::InteractableKind::kLink;
    fetch.element.method = "GET";
    fetch.target = entry.target;
    const InteractionResult result = browser.interact(fetch);

    ++map.pages_visited;
    map.max_depth = std::max(map.max_depth, entry.depth);
    ++map.pages_per_depth[entry.depth];
    if (result.navigation_error) ++map.error_pages;

    std::size_t links_here = 0;
    for (const auto& action : browser.page().actions) {
      switch (action.element.kind) {
        case html::InteractableKind::kLink: {
          ++links_here;
          const std::string key = action.target.without_fragment();
          if (enqueued.insert(key).second) {
            queue.push_back({action.target, entry.depth + 1});
          }
          break;
        }
        case html::InteractableKind::kForm:
          form_keys.insert(action.target.without_fragment() + "|" +
                           action.element.method);
          break;
        case html::InteractableKind::kButton:
          button_keys.insert(action.target.without_fragment());
          break;
      }
    }
    if (links_here == 0) ++map.dead_ends;
  }

  map.forms_seen = form_keys.size();
  map.buttons_seen = button_keys.size();
  return map;
}

}  // namespace mak::core
