#include "core/mak_team.h"

#include <stdexcept>

#include "rl/exp3.h"

namespace mak::core {

MakTeam::MakTeam(httpsim::Network& network, url::Url seed, support::Rng rng,
                 MakTeamConfig config)
    : config_(config) {
  if (config.agent_count == 0) {
    throw std::invalid_argument("MakTeam: zero agents");
  }
  agents_.reserve(config.agent_count);
  for (std::size_t i = 0; i < config.agent_count; ++i) {
    agents_.push_back(Agent{
        Browser(network, seed, rng.fork()),
        std::make_unique<rl::Exp31>(kArmCount),
        rl::StandardizedReward{},
        rng.fork(),
        {},
    });
  }
}

void MakTeam::absorb(Agent& agent, std::size_t* increment_out) {
  const std::size_t increment = ledger_.absorb(agent.browser.page());
  for (const auto& action : agent.browser.page().actions) {
    frontier_.push(action);
  }
  if (increment_out != nullptr) *increment_out = increment;
}

void MakTeam::start() {
  for (auto& agent : agents_) {
    agent.browser.navigate_seed();
    absorb(agent, nullptr);
  }
}

void MakTeam::agent_step(Agent& agent) {
  if (frontier_.empty()) {
    agent.browser.navigate_seed();
    absorb(agent, nullptr);
    return;
  }
  const std::size_t arm_index = agent.policy->choose(agent.rng);
  const Arm arm = static_cast<Arm>(arm_index);
  ++agent.arm_counts[arm_index];

  auto element = frontier_.take(arm, agent.rng);
  if (!element.has_value()) return;  // raced empty (cannot happen here)
  agent.browser.interact(*element);

  std::size_t increment = 0;
  absorb(agent, &increment);
  frontier_.requeue(*element);

  rl::StandardizedReward& standardizer =
      config_.shared_reward_history ? shared_reward_ : agent.reward;
  const double reward = standardizer.shape(static_cast<double>(increment));
  agent.policy->update(arm_index, reward);
}

void MakTeam::step() {
  agent_step(agents_[next_agent_]);
  next_agent_ = (next_agent_ + 1) % agents_.size();
}

std::size_t MakTeam::interactions() const noexcept {
  std::size_t total = 0;
  for (const auto& agent : agents_) total += agent.browser.interactions();
  return total;
}

std::array<std::size_t, kArmCount> MakTeam::arm_counts(
    std::size_t agent) const {
  return agents_.at(agent).arm_counts;
}

}  // namespace mak::core
