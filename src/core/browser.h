// The crawler's browser: fetches pages over the virtual network, parses
// them, resolves and filters interactables, fills and submits forms.
//
// This is the EXECUTE building block of Algorithm 2 — identical for every
// crawler in the framework, so implementation differences cannot bias the
// comparison (Section V-A.1 of the paper).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/types.h"
#include "httpsim/cookies.h"
#include "httpsim/network.h"
#include "support/rng.h"

namespace mak::core {

// How empty text-like form fields get filled (Section V-A.2 of the paper
// notes crawlers differ in "filling inputs in a sophisticated way";
// bench/input_strategies quantifies the effect).
enum class FormFillStrategy {
  kCounter,     // "input-<n>" style unique junk (default)
  kDictionary,  // field-name/type aware plausible values
  kRandom,      // random ASCII junk
};

class Browser {
 public:
  // `rng` drives form-value generation and retry-backoff jitter.
  Browser(httpsim::Network& network, url::Url seed, support::Rng rng,
          FormFillStrategy fill_strategy = FormFillStrategy::kCounter);

  const url::Url& seed() const noexcept { return seed_; }
  const Page& page() const noexcept { return page_; }

  // Client-side resilience: transport failures (drops, timeouts, injected
  // transient 5xx) are retried up to `max_retries` times with exponential
  // backoff charged as virtual time. Inactive by default.
  void set_retry_policy(const httpsim::RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const httpsim::RetryPolicy& retry_policy() const noexcept { return retry_; }

  // (Re)load the seed URL. Counts as a navigation, not an interaction.
  void navigate_seed();

  // Execute one atomic interaction: click a link/button or fill-and-submit
  // a form. Loads the resulting page into `page()`.
  // Takes the action BY VALUE: interact() replaces the current page, which
  // would invalidate a reference into page().actions mid-call.
  InteractionResult interact(ResolvedAction action);

  // Counters for the performance evaluation (Section V-D).
  std::size_t interactions() const noexcept { return interactions_; }
  std::size_t navigations() const noexcept { return navigations_; }

  // Resilience accounting (fault-injection experiments).
  std::size_t retries() const noexcept { return retries_; }
  std::size_t transport_failures() const noexcept {
    return transport_failures_;
  }
  std::size_t timeouts() const noexcept { return timeouts_; }
  support::VirtualMillis backoff_ms() const noexcept { return backoff_ms_; }

  httpsim::CookieJar& cookies() noexcept { return jar_; }
  FormFillStrategy fill_strategy() const noexcept { return fill_strategy_; }

  // The run's virtual clock (owned by the network; see support/clock.h for
  // the single-thread ownership rule). Exposed so callers can attach timing
  // spans that attribute virtual cost to crawl phases.
  const support::SimClock& clock() const noexcept { return network_->clock(); }

  // Checkpointing: RNG, cookie jar, current page (as its raw body, re-parsed
  // on load — build_page is deterministic) and all counters. The network,
  // seed and fill strategy are configuration, recreated by the harness.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  Page fetch(httpsim::Method method, const url::Url& target,
             const url::QueryMap& form, InteractionResult* result);
  // Fill form fields, generating values for empty text-like inputs.
  url::QueryMap fill_form(const html::Interactable& form);
  // One generated value per the active fill strategy.
  std::string generate_value(const html::FormField& field);

  httpsim::Network* network_;
  url::Url seed_;
  support::Rng rng_;
  FormFillStrategy fill_strategy_;
  httpsim::RetryPolicy retry_;
  httpsim::CookieJar jar_;
  Page page_;
  std::size_t interactions_ = 0;
  std::size_t navigations_ = 0;
  std::size_t fill_counter_ = 0;
  std::size_t retries_ = 0;
  std::size_t transport_failures_ = 0;
  std::size_t timeouts_ = 0;
  support::VirtualMillis backoff_ms_ = 0;
};

// Build a Page from a fetched body: parse, extract, resolve, filter to the
// seed's origin. Exposed for tests.
Page build_page(const url::Url& final_url, int status, std::string body,
                const url::Url& origin);

}  // namespace mak::core
