// The crawler's browser: fetches pages over the virtual network, parses
// them, resolves and filters interactables, fills and submits forms.
//
// This is the EXECUTE building block of Algorithm 2 — identical for every
// crawler in the framework, so implementation differences cannot bias the
// comparison (Section V-A.1 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "httpsim/cookies.h"
#include "httpsim/network.h"
#include "support/interner.h"
#include "support/rng.h"

namespace mak::core {

// Memoizes build_page: parsed pages keyed by (final URL, status, body).
// The synthetic applications serve a small set of distinct pages (a few
// hundred) while a crawl fetches tens of thousands, so ~99% of fetches can
// reuse an already-parsed immutable Page instead of re-running the parser,
// the interactable extractor and per-action URL resolution — the dominant
// cost of a crawl step. Hash collisions are disarmed by full key comparison;
// the cache flushes entirely at a fixed capacity so its behaviour is a
// deterministic function of the fetch sequence.
//
// Cached pages are shared as immutable values (every consumer reads
// Browser::page() through a const reference); their actions' memoized
// identities (ResolvedAction::key()/link()) are computed once per distinct
// page and amortized over every revisit.
class PageCache {
 public:
  // Returns the cached page for the key, building (and caching) it via
  // build_page on miss.
  std::shared_ptr<const Page> lookup_or_build(const url::Url& final_url,
                                              int status, std::string body,
                                              const url::Url& origin);

  std::size_t entries() const noexcept { return entries_.size(); }

 private:
  // Full flush at capacity: crawls observe a few hundred distinct pages, so
  // 2048 entries only overflow for pathological hosts; a wholesale flush
  // keeps occupancy a pure function of the fetch history.
  static constexpr std::size_t kMaxEntries = 2048;
  static constexpr std::uint32_t kNil = support::FlatMap64::kNoValue;

  struct Entry {
    std::string url;  // final URL at build time (pre-normalization form)
    std::shared_ptr<const Page> page;
    std::uint32_t next = kNil;  // hash-collision chain
  };

  support::FlatMap64 index_;  // content hash -> chain head in entries_
  std::vector<Entry> entries_;
};

// How empty text-like form fields get filled (Section V-A.2 of the paper
// notes crawlers differ in "filling inputs in a sophisticated way";
// bench/input_strategies quantifies the effect).
enum class FormFillStrategy {
  kCounter,     // "input-<n>" style unique junk (default)
  kDictionary,  // field-name/type aware plausible values
  kRandom,      // random ASCII junk
};

class Browser {
 public:
  // `rng` drives form-value generation and retry-backoff jitter.
  Browser(httpsim::Network& network, url::Url seed, support::Rng rng,
          FormFillStrategy fill_strategy = FormFillStrategy::kCounter);

  const url::Url& seed() const noexcept { return seed_; }
  const Page& page() const noexcept { return *page_; }

  // Client-side resilience: transport failures (drops, timeouts, injected
  // transient 5xx) are retried up to `max_retries` times with exponential
  // backoff charged as virtual time. Inactive by default.
  void set_retry_policy(const httpsim::RetryPolicy& policy) noexcept {
    retry_ = policy;
  }
  const httpsim::RetryPolicy& retry_policy() const noexcept { return retry_; }

  // (Re)load the seed URL. Counts as a navigation, not an interaction.
  void navigate_seed();

  // Execute one atomic interaction: click a link/button or fill-and-submit
  // a form. Loads the resulting page into `page()`.
  // Takes the action BY VALUE: interact() replaces the current page, which
  // would invalidate a reference into page().actions mid-call.
  InteractionResult interact(ResolvedAction action);

  // Counters for the performance evaluation (Section V-D).
  std::size_t interactions() const noexcept { return interactions_; }
  std::size_t navigations() const noexcept { return navigations_; }

  // Resilience accounting (fault-injection experiments).
  std::size_t retries() const noexcept { return retries_; }
  std::size_t transport_failures() const noexcept {
    return transport_failures_;
  }
  std::size_t timeouts() const noexcept { return timeouts_; }
  support::VirtualMillis backoff_ms() const noexcept { return backoff_ms_; }

  httpsim::CookieJar& cookies() noexcept { return jar_; }
  FormFillStrategy fill_strategy() const noexcept { return fill_strategy_; }

  // The run's virtual clock (owned by the network; see support/clock.h for
  // the single-thread ownership rule). Exposed so callers can attach timing
  // spans that attribute virtual cost to crawl phases.
  const support::SimClock& clock() const noexcept { return network_->clock(); }

  // Checkpointing: RNG, cookie jar, current page (as its raw body, re-parsed
  // on load — build_page is deterministic) and all counters. The network,
  // seed and fill strategy are configuration, recreated by the harness.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

  // Parsed pages memoized by this browser so far (cache introspection).
  std::size_t parsed_pages() const noexcept { return cache_.entries(); }

 private:
  std::shared_ptr<const Page> fetch(httpsim::Method method,
                                    const url::Url& target,
                                    const url::QueryMap& form,
                                    InteractionResult* result);
  // Fill form fields, generating values for empty text-like inputs.
  url::QueryMap fill_form(const html::Interactable& form);
  // One generated value per the active fill strategy.
  std::string generate_value(const html::FormField& field);

  httpsim::Network* network_;
  url::Url seed_;
  support::Rng rng_;
  FormFillStrategy fill_strategy_;
  httpsim::RetryPolicy retry_;
  httpsim::CookieJar jar_;
  PageCache cache_;
  // Always non-null; the current page, shared with the parse cache.
  std::shared_ptr<const Page> page_ = std::make_shared<Page>();
  std::size_t interactions_ = 0;
  std::size_t navigations_ = 0;
  std::size_t fill_counter_ = 0;
  std::size_t retries_ = 0;
  std::size_t transport_failures_ = 0;
  std::size_t timeouts_ = 0;
  support::VirtualMillis backoff_ms_ = 0;
};

// Build a Page from a fetched body: parse, extract, resolve, filter to the
// seed's origin. Exposed for tests.
Page build_page(const url::Url& final_url, int status, std::string body,
                const url::Url& origin);

}  // namespace mak::core
