// Multi-Armed Krawler (MAK) — the paper's contribution (Section IV).
//
// Stateless crawler over the global leveled deque:
//   GET_STATE      — constant (single-state MAB)
//   GET_ACTIONS    — {Head, Tail, Random}
//   CHOOSE_ACTION  — sampled from the Exp3.1 policy
//   EXECUTE        — pop an element from the lowest deque level, interact
//   GET_REWARD     — standardized link-coverage increment, logistic-squashed
//   UPDATE_POLICY  — Exp3.1 weight/gain update
//
// MakConfig exposes the ablation knobs evaluated in the benches: forcing one
// arm (static BFS/DFS/Random, Section V-C), alternative reward shaping and
// alternative bandit policies, and a flat (single-level) deque.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "core/crawler.h"
#include "core/frontier.h"
#include "rl/bandit.h"
#include "rl/regret.h"
#include "rl/reward.h"

namespace mak::core {

struct MakConfig {
  enum class RewardMode {
    kStandardizedLinks,  // the paper's reward (default)
    kRawLinks,           // unstandardized, clamped increment (ablation)
    kCuriosity,          // count-based curiosity (ablation)
    kDomNovelty,         // 1 - tag-sequence similarity to the previous page
  };
  enum class PolicyKind {
    kExp31,          // the paper's policy (default)
    kExp3Fixed,      // Exp3 with fixed gamma (ablation)
    kEpsilonGreedy,  // stationary-assumption bandit (ablation)
    kUcb1,           // stochastic-MAB bandit (ablation)
    kThompson,       // Bayesian stochastic bandit (ablation)
    kRottingExp3,    // discounted-gain Exp3 for rotting rewards
    kDsee,           // deterministic exploration/exploitation (Vakili)
  };

  std::optional<Arm> forced_arm;  // set => static BFS/DFS/Random crawler
  RewardMode reward_mode = RewardMode::kStandardizedLinks;
  PolicyKind policy = PolicyKind::kExp31;
  double exp3_gamma = 0.1;   // for kExp3Fixed and kRottingExp3
  double epsilon = 0.1;      // for kEpsilonGreedy
  double exp3_discount = 0.99;  // for kRottingExp3
  double dsee_weight = 8.0;  // for kDsee: exploration target ceil(w ln t)
  bool leveled_deque = true;  // false => flat single-level deque (ablation)
  std::string name_override;  // display name (defaults derived from config)
};

class MakCrawler final : public RlCrawlerBase, public support::Snapshotable {
 public:
  MakCrawler(support::Rng rng, MakConfig config = {});

  std::string_view name() const override { return name_; }

  // Step-level checkpointing: the full mid-run crawler state (frontier,
  // policy, reward shapers, in-flight element, counters).
  support::Snapshotable* snapshotable() noexcept override { return this; }
  std::string_view snapshot_id() const noexcept override {
    return "core.mak_crawler";
  }
  int snapshot_version() const noexcept override { return 1; }
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  // Introspection for tests and benches.
  const LeveledDeque& frontier() const noexcept { return frontier_; }
  const rl::BanditPolicy& policy() const noexcept { return *policy_; }
  std::size_t steps() const noexcept { return steps_; }
  std::size_t failed_interactions() const noexcept {
    return failed_interactions_;
  }
  const std::array<std::size_t, kArmCount>& arm_counts() const noexcept {
    return arm_counts_;
  }

  // Weak-regret accounting against the policy's own importance-weighted
  // arm-gain estimates (rl/regret.h); null for forced-arm configurations.
  const rl::RegretAccountant* regret_accountant() const noexcept override {
    return regret_.has_value() ? &*regret_ : nullptr;
  }

 protected:
  rl::StateId get_state(const Page& page) override;
  std::size_t action_count(const Page& page) override;
  std::size_t choose_action(rl::StateId state, const Page& page,
                            std::size_t n_actions) override;
  InteractionResult execute(Browser& browser, std::size_t action) override;
  double get_reward(rl::StateId state, std::size_t action,
                    const InteractionResult& result, rl::StateId next_state,
                    const Page& next_page) override;
  void update_policy(rl::StateId state, std::size_t action, double reward,
                     rl::StateId next_state, const Page& next_page) override;
  void on_page(const Page& page) override;

 private:
  MakConfig config_;
  std::string name_;
  LeveledDeque frontier_;
  std::unique_ptr<rl::BanditPolicy> policy_;
  rl::StandardizedReward standardized_;
  rl::CuriosityReward curiosity_;
  std::vector<std::string> previous_tags_;  // for kDomNovelty
  std::optional<ResolvedAction> in_flight_;  // element taken this step
  std::optional<rl::RegretAccountant> regret_;  // policy-driven configs only
  bool in_flight_failed_ = false;  // last interaction was a transport fault
  std::size_t steps_ = 0;
  std::size_t failed_interactions_ = 0;
  std::array<std::size_t, kArmCount> arm_counts_{};
};

// Factory helpers for the paper's crawler line-up.
std::unique_ptr<MakCrawler> make_mak(support::Rng rng);
std::unique_ptr<MakCrawler> make_static_bfs(support::Rng rng);
std::unique_ptr<MakCrawler> make_static_dfs(support::Rng rng);
std::unique_ptr<MakCrawler> make_static_random(support::Rng rng);

}  // namespace mak::core
