#include "core/browser.h"

#include <utility>

#include "core/state_codec.h"
#include "html/parser.h"
#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::core {

Page build_page(const url::Url& final_url, int status, std::string body,
                const url::Url& origin) {
  Page page;
  page.url = url::normalized(final_url);
  page.status = status;
  page.body = std::move(body);
  page.dom = html::parse(page.body);
  page.title = page.dom.title();
  for (auto& element : html::extract_interactables(page.dom)) {
    std::string raw_target = element.target;
    if (element.kind == html::InteractableKind::kForm && raw_target.empty()) {
      raw_target = page.url.path;  // action="" submits to the current page
    }
    auto resolved = url::resolve(page.url, raw_target);
    if (!resolved.has_value()) continue;
    url::Url target = url::normalized(*resolved);
    if (!url::same_origin(target, origin)) {
      continue;  // actions leaving the application domain are invalid
    }
    page.actions.push_back(ResolvedAction{std::move(element), std::move(target)});
  }
  return page;
}

std::shared_ptr<const Page> PageCache::lookup_or_build(const url::Url& final_url,
                                                       int status,
                                                       std::string body,
                                                       const url::Url& origin) {
  namespace metric = support::metric;
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& hits =
      registry.counter(metric::kBrowserParseCacheHits);
  static support::Counter& misses =
      registry.counter(metric::kBrowserParseCacheMisses);
  static support::Gauge& entries =
      registry.gauge(metric::kBrowserParseCacheEntries);

  std::string url_key = final_url.to_string();
  // hash_bytes, not fnv1a: this key is in-memory only (full comparison
  // below decides hits) and the body hash dominates the fetch hot path.
  std::uint64_t hash = support::hash_bytes(body);
  hash = support::fnv1a_accum(hash, "|");
  hash = support::fnv1a_accum(hash, url_key);
  hash = support::fnv1a_accum(hash, "|");
  hash = support::fnv1a_accum(hash, std::to_string(status));

  // Walk the collision chain with full key comparison: a 64-bit hash match
  // alone must never serve the wrong page.
  const std::uint32_t* head = index_.find(hash);
  std::uint32_t tail = kNil;
  for (std::uint32_t i = head != nullptr ? *head : kNil; i != kNil;
       i = entries_[i].next) {
    const Entry& entry = entries_[i];
    if (entry.page->status == status && entry.url == url_key &&
        entry.page->body == body) {
      hits.add();
      return entry.page;
    }
    tail = i;
  }
  misses.add();
  if (entries_.size() >= kMaxEntries) {
    index_.clear();
    entries_.clear();
    tail = kNil;
  }
  auto page = std::make_shared<const Page>(
      build_page(final_url, status, std::move(body), origin));
  const auto fresh = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{std::move(url_key), page, kNil});
  if (tail != kNil) {
    entries_[tail].next = fresh;
  } else {
    index_.insert(hash, fresh);
  }
  entries.set(static_cast<double>(entries_.size()));
  return page;
}

Browser::Browser(httpsim::Network& network, url::Url seed, support::Rng rng,
                 FormFillStrategy fill_strategy)
    : network_(&network),
      seed_(url::normalized(std::move(seed))),
      rng_(std::move(rng)),
      fill_strategy_(fill_strategy) {}

void Browser::navigate_seed() {
  static support::Counter& navigations = support::MetricsRegistry::global()
                                             .counter(
                                                 support::metric::kBrowserNavigations);
  navigations.add();
  ++navigations_;
  page_ = fetch(httpsim::Method::kGet, seed_, url::QueryMap{}, nullptr);
}

std::shared_ptr<const Page> Browser::fetch(httpsim::Method method,
                                           const url::Url& target,
                                           const url::QueryMap& form,
                                           InteractionResult* result) {
  // A fetch outcome worth retrying: the transport failed (drop, timeout) or
  // the fault layer shed the request with a transient 5xx. Genuine
  // application error pages are final — retrying them would only replay the
  // same server-side state.
  const auto transport_failed = [](const httpsim::FetchResult& fetched) {
    return fetched.dropped || fetched.timed_out ||
           (fetched.injected_fault && fetched.response.status >= 500);
  };

  httpsim::FetchResult fetched;
  int attempt = 0;
  for (;;) {
    fetched = network_->fetch(method, target, form, jar_, retry_.timeout_ms);
    if (fetched.timed_out) ++timeouts_;
    if (!transport_failed(fetched) || attempt >= retry_.max_retries) break;
    // Exponential backoff with jitter, charged as virtual time: waiting out
    // a degraded origin competes with crawling for the run's time budget.
    ++attempt;
    ++retries_;
    static support::Counter& retries = support::MetricsRegistry::global()
                                           .counter(
                                               support::metric::kBrowserRetries);
    retries.add();
    support::VirtualMillis delay = retry_.backoff_for(attempt);
    if (retry_.jitter > 0.0) {
      const double factor =
          1.0 + retry_.jitter * (2.0 * rng_.uniform01() - 1.0);
      delay = static_cast<support::VirtualMillis>(
          static_cast<double>(delay) * factor);
      if (delay < 0) delay = 0;
    }
    network_->clock().advance(delay);
    backoff_ms_ += delay;
  }

  const bool transport_error = transport_failed(fetched);
  if (transport_error) {
    ++transport_failures_;
    static support::Counter& transport_failures =
        support::MetricsRegistry::global().counter(
            support::metric::kBrowserTransportFailures);
    transport_failures.add();
  }
  if (result != nullptr) {
    result->status = fetched.response.status;
    result->transport_error = transport_error;
    result->retries = attempt;
    result->navigation_error = fetched.network_error || transport_error ||
                               fetched.response.status >= 400;
    result->redirects = fetched.redirects;
  }
  return cache_.lookup_or_build(fetched.final_url, fetched.response.status,
                                std::move(fetched.response.body), seed_);
}

std::string Browser::generate_value(const html::FormField& field) {
  const std::string counter = std::to_string(fill_counter_);
  switch (fill_strategy_) {
    case FormFillStrategy::kCounter:
      if (field.type == "password") return "password123";
      if (field.type == "email") return "crawler" + counter + "@example.test";
      if (field.type == "number") return std::to_string(fill_counter_ % 100);
      return "input-" + counter;
    case FormFillStrategy::kDictionary: {
      // Field-name and type aware plausible values.
      const std::string name = support::to_lower(field.name);
      if (field.type == "password") return "Str0ng!pass";
      if (field.type == "email" || support::contains(name, "email") ||
          support::contains(name, "mail")) {
        return "alice" + counter + "@example.test";
      }
      if (field.type == "number" || support::contains(name, "age") ||
          support::contains(name, "year") ||
          support::contains(name, "quantity")) {
        return "42";
      }
      if (support::contains(name, "phone")) return "+15550100" + counter;
      if (support::contains(name, "date")) return "2024-05-01";
      if (support::contains(name, "url") || support::contains(name, "link")) {
        return "http://example.test/page" + counter;
      }
      if (support::contains(name, "user") || support::contains(name, "name")) {
        return "alice" + counter;
      }
      return "lorem ipsum " + counter;
    }
    case FormFillStrategy::kRandom: {
      std::string junk;
      const std::size_t length = 4 + rng_.next_below(12);
      for (std::size_t i = 0; i < length; ++i) {
        junk += static_cast<char>('!' + rng_.next_below(94));
      }
      return junk;
    }
  }
  return "input-" + counter;
}

url::QueryMap Browser::fill_form(const html::Interactable& form) {
  url::QueryMap values;
  for (const auto& field : form.fields) {
    if (field.name.empty()) continue;
    if (field.type == "hidden" || field.type == "submit") {
      values.add(field.name, field.value);
      continue;
    }
    if (field.type == "select") {
      if (!field.options.empty()) {
        values.add(field.name, rng_.choice(field.options));
      }
      continue;
    }
    if (field.type == "checkbox" || field.type == "radio") {
      values.add(field.name, field.value.empty() ? "on" : field.value);
      continue;
    }
    if (!field.value.empty()) {
      values.add(field.name, field.value);  // keep prefilled values
      continue;
    }
    // Generate a value. The counter makes successive fills distinct, which
    // matters for apps that store submitted content (the Drupal shortcut
    // pattern in Section III-A of the paper).
    ++fill_counter_;
    values.add(field.name, generate_value(field));
  }
  return values;
}

InteractionResult Browser::interact(ResolvedAction action) {
  static support::Counter& interactions = support::MetricsRegistry::global()
                                              .counter(
                                                  support::metric::kBrowserInteractions);
  interactions.add();
  ++interactions_;
  InteractionResult result;
  switch (action.element.kind) {
    case html::InteractableKind::kLink: {
      page_ = fetch(httpsim::Method::kGet, action.target, url::QueryMap{},
                    &result);
      break;
    }
    case html::InteractableKind::kButton: {
      const httpsim::Method method = action.element.method == "GET"
                                         ? httpsim::Method::kGet
                                         : httpsim::Method::kPost;
      page_ = fetch(method, action.target, url::QueryMap{}, &result);
      break;
    }
    case html::InteractableKind::kForm: {
      url::QueryMap values = fill_form(action.element);
      if (action.element.method == "GET") {
        // GET forms encode their fields into the query string.
        url::Url target = action.target;
        target.query = values.to_string();
        page_ = fetch(httpsim::Method::kGet, target, url::QueryMap{}, &result);
      } else {
        page_ = fetch(httpsim::Method::kPost, action.target, values, &result);
      }
      break;
    }
  }
  MAK_LOG_TRACE << "interact " << action.describe() << " -> " << result.status;
  return result;
}

support::json::Value Browser::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("core.browser", 1);
  state.emplace("rng", snapshot::rng_to_json(rng_));
  state.emplace("cookies", jar_.save_state());
  support::json::Object page;
  page.emplace("url", url_to_json(page_->url));
  page.emplace("status", static_cast<double>(page_->status));
  page.emplace("body", page_->body);
  state.emplace("page", support::json::Value(std::move(page)));
  state.emplace("interactions", static_cast<double>(interactions_));
  state.emplace("navigations", static_cast<double>(navigations_));
  state.emplace("fill_counter", static_cast<double>(fill_counter_));
  state.emplace("retries", static_cast<double>(retries_));
  state.emplace("transport_failures",
                static_cast<double>(transport_failures_));
  state.emplace("timeouts", static_cast<double>(timeouts_));
  state.emplace("backoff_ms", static_cast<double>(backoff_ms_));
  return support::json::Value(std::move(state));
}

void Browser::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "core.browser", 1);
  const auto& page = snapshot::require(state, "page");
  const url::Url page_url = url_from_json(snapshot::require(page, "url"));
  const auto status = snapshot::require_int(page, "status");
  if (status < 0 || status > 999) {
    throw support::SnapshotError("Browser: bad page status in checkpoint");
  }
  snapshot::rng_from_json(rng_, snapshot::require(state, "rng"));
  jar_.load_state(snapshot::require(state, "cookies"));
  // Rebuild the parsed page from the stored body; build_page is a pure
  // function of (url, status, body, origin), so the restored DOM and action
  // list match the originals exactly.
  page_ = cache_.lookup_or_build(page_url, static_cast<int>(status),
                                 snapshot::require_string(page, "body"), seed_);
  interactions_ = static_cast<std::size_t>(
      snapshot::require_index(state, "interactions"));
  navigations_ = static_cast<std::size_t>(
      snapshot::require_index(state, "navigations"));
  fill_counter_ = static_cast<std::size_t>(
      snapshot::require_index(state, "fill_counter"));
  retries_ = static_cast<std::size_t>(snapshot::require_index(state, "retries"));
  transport_failures_ = static_cast<std::size_t>(
      snapshot::require_index(state, "transport_failures"));
  timeouts_ = static_cast<std::size_t>(
      snapshot::require_index(state, "timeouts"));
  backoff_ms_ = static_cast<support::VirtualMillis>(
      snapshot::require_index(state, "backoff_ms"));
}

}  // namespace mak::core
