// Exhaustive site mapping: a non-RL, breadth-first fixpoint walk over all
// same-origin GET links reachable from the seed.
//
// Unlike the budgeted crawlers, the mapper has no time limit — it visits
// every discoverable URL once (up to a safety cap). It serves two purposes:
//  * substrate validation: structural statistics of the synthetic apps
//    (reachable URLs, depth, dead ends, forms) for DESIGN.md calibration;
//  * an upper-bound reference for link discovery ("how much was there to
//    find via GET navigation alone").
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/browser.h"
#include "httpsim/network.h"

namespace mak::core {

struct SiteMap {
  std::size_t pages_visited = 0;     // distinct URLs fetched
  std::size_t reached_cap = false;   // stopped by the safety cap
  std::size_t max_depth = 0;         // longest shortest-path from the seed
  std::size_t dead_ends = 0;         // pages with no same-origin links
  std::size_t error_pages = 0;       // status >= 400
  std::size_t forms_seen = 0;        // distinct form actions observed
  std::size_t buttons_seen = 0;      // distinct standalone buttons
  std::map<std::size_t, std::size_t> pages_per_depth;
  std::size_t coverable_lines = 0;   // server lines covered by the sweep
};

struct SiteMapperConfig {
  std::size_t max_pages = 20000;  // safety cap for trap-heavy sites
};

// Map the application behind `network` starting from `seed`. Uses its own
// browser (one session for the whole sweep). GET links only: forms and
// buttons are counted but not submitted, so session-gated areas beyond a
// POST remain unexplored — exactly what a naive link spider would see.
SiteMap map_site(httpsim::Network& network, const url::Url& seed,
                 SiteMapperConfig config = {});

}  // namespace mak::core
