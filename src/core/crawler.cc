#include "core/crawler.h"

namespace mak::core {

void RlCrawlerBase::absorb(const Page& page) {
  last_increment_ = ledger_.absorb(page);
  on_page(page);
}

void RlCrawlerBase::start(Browser& browser) {
  browser.navigate_seed();
  absorb(browser.page());
}

void RlCrawlerBase::step(Browser& browser) {
  const rl::StateId state = get_state(browser.page());
  const std::size_t n_actions = action_count(browser.page());
  if (n_actions == 0) {
    recover(browser);
    return;
  }
  const std::size_t action = choose_action(state, browser.page(), n_actions);
  const InteractionResult result = execute(browser, action);
  absorb(browser.page());
  const rl::StateId next_state = get_state(browser.page());
  const double reward =
      get_reward(state, action, result, next_state, browser.page());
  update_policy(state, action, reward, next_state, browser.page());
}

void RlCrawlerBase::recover(Browser& browser) {
  browser.navigate_seed();
  absorb(browser.page());
}

}  // namespace mak::core
