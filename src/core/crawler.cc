#include "core/crawler.h"

#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::core {

namespace {

// Cached registry handles for the loop's hot path (see support/metrics.h:
// references are stable for the process lifetime).
struct StepMetrics {
  support::Counter& steps;
  support::Counter& recoveries;
  support::Histogram& reward;
  support::Histogram& wall_us;
  support::Histogram& virtual_ms;

  static StepMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static StepMetrics metrics{
        registry.counter(metric::kCrawlerSteps),
        registry.counter(metric::kCrawlerRecoveries),
        registry.histogram(metric::kCrawlerReward,
                           support::unit_interval_bounds()),
        registry.histogram(metric::kCrawlerStepWallUs,
                           support::duration_bounds_us()),
        registry.histogram(metric::kCrawlerStepVirtualMs,
                           support::latency_bounds_ms()),
    };
    return metrics;
  }
};

}  // namespace

void RlCrawlerBase::absorb(const Page& page) {
  last_increment_ = ledger_.absorb(page);
  on_page(page);
}

void RlCrawlerBase::start(Browser& browser) {
  browser.navigate_seed();
  absorb(browser.page());
}

void RlCrawlerBase::step(Browser& browser) {
  StepMetrics& metrics = StepMetrics::instance();
  const support::MetricSpan span(metrics.wall_us, &metrics.virtual_ms,
                                 &browser.clock());
  metrics.steps.add();
  const rl::StateId state = get_state(browser.page());
  const std::size_t n_actions = action_count(browser.page());
  if (n_actions == 0) {
    metrics.recoveries.add();
    recover(browser);
    return;
  }
  const std::size_t action = choose_action(state, browser.page(), n_actions);
  const InteractionResult result = execute(browser, action);
  absorb(browser.page());
  const rl::StateId next_state = get_state(browser.page());
  const double reward =
      get_reward(state, action, result, next_state, browser.page());
  metrics.reward.record(reward);
  update_policy(state, action, reward, next_state, browser.page());
}

void RlCrawlerBase::recover(Browser& browser) {
  browser.navigate_seed();
  absorb(browser.page());
}

support::json::Value RlCrawlerBase::save_base_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("core.rl_crawler_base", 1);
  state.emplace("rng", snapshot::rng_to_json(rng_));
  state.emplace("ledger", ledger_.save_state());
  state.emplace("last_increment", static_cast<double>(last_increment_));
  state.emplace("last_action", last_action_);
  return support::json::Value(std::move(state));
}

void RlCrawlerBase::load_base_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "core.rl_crawler_base", 1);
  snapshot::rng_from_json(rng_, snapshot::require(state, "rng"));
  ledger_.load_state(snapshot::require(state, "ledger"));
  last_increment_ = static_cast<std::size_t>(
      snapshot::require_index(state, "last_increment"));
  last_action_ = snapshot::require_string(state, "last_action");
}

}  // namespace mak::core
