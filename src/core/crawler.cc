#include "core/crawler.h"

#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::core {

namespace {

// Cached registry handles for the loop's hot path (see support/metrics.h:
// references are stable for the process lifetime).
struct StepMetrics {
  support::Counter& steps;
  support::Counter& recoveries;
  support::Histogram& reward;
  support::Histogram& wall_us;
  support::Histogram& virtual_ms;

  static StepMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static StepMetrics metrics{
        registry.counter(metric::kCrawlerSteps),
        registry.counter(metric::kCrawlerRecoveries),
        registry.histogram(metric::kCrawlerReward,
                           support::unit_interval_bounds()),
        registry.histogram(metric::kCrawlerStepWallUs,
                           support::duration_bounds_us()),
        registry.histogram(metric::kCrawlerStepVirtualMs,
                           support::latency_bounds_ms()),
    };
    return metrics;
  }
};

}  // namespace

void RlCrawlerBase::absorb(const Page& page) {
  last_increment_ = ledger_.absorb(page);
  on_page(page);
}

void RlCrawlerBase::start(Browser& browser) {
  browser.navigate_seed();
  absorb(browser.page());
}

void RlCrawlerBase::step(Browser& browser) {
  StepMetrics& metrics = StepMetrics::instance();
  const support::MetricSpan span(metrics.wall_us, &metrics.virtual_ms,
                                 &browser.clock());
  metrics.steps.add();
  const rl::StateId state = get_state(browser.page());
  const std::size_t n_actions = action_count(browser.page());
  if (n_actions == 0) {
    metrics.recoveries.add();
    recover(browser);
    return;
  }
  const std::size_t action = choose_action(state, browser.page(), n_actions);
  const InteractionResult result = execute(browser, action);
  absorb(browser.page());
  const rl::StateId next_state = get_state(browser.page());
  const double reward =
      get_reward(state, action, result, next_state, browser.page());
  metrics.reward.record(reward);
  update_policy(state, action, reward, next_state, browser.page());
}

void RlCrawlerBase::recover(Browser& browser) {
  browser.navigate_seed();
  absorb(browser.page());
}

}  // namespace mak::core
