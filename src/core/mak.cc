#include "core/mak.h"

#include <algorithm>
#include <stdexcept>

#include "core/state_codec.h"
#include "rl/discounted_exp3.h"
#include "rl/dsee.h"
#include "rl/epsilon_greedy.h"
#include "rl/exp3.h"
#include "rl/thompson.h"
#include "rl/ucb.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

#include "html/interactables.h"

namespace mak::core {

namespace {

std::unique_ptr<rl::BanditPolicy> build_policy(const MakConfig& config) {
  switch (config.policy) {
    case MakConfig::PolicyKind::kExp31:
      return std::make_unique<rl::Exp31>(kArmCount);
    case MakConfig::PolicyKind::kExp3Fixed:
      return std::make_unique<rl::Exp3>(kArmCount, config.exp3_gamma);
    case MakConfig::PolicyKind::kEpsilonGreedy:
      return std::make_unique<rl::EpsilonGreedy>(kArmCount, config.epsilon);
    case MakConfig::PolicyKind::kUcb1:
      return std::make_unique<rl::Ucb1>(kArmCount);
    case MakConfig::PolicyKind::kThompson:
      return std::make_unique<rl::ThompsonSampling>(kArmCount);
    case MakConfig::PolicyKind::kRottingExp3:
      return std::make_unique<rl::DiscountedExp3>(kArmCount, config.exp3_gamma,
                                                  config.exp3_discount);
    case MakConfig::PolicyKind::kDsee:
      return std::make_unique<rl::Dsee>(kArmCount, config.dsee_weight);
  }
  throw std::logic_error("unknown policy kind");
}

std::string derive_name(const MakConfig& config) {
  if (!config.name_override.empty()) return config.name_override;
  if (config.forced_arm.has_value()) {
    switch (*config.forced_arm) {
      case Arm::kHead:
        return "BFS";
      case Arm::kTail:
        return "DFS";
      case Arm::kRandom:
        return "Random";
    }
  }
  return "MAK";
}

}  // namespace

MakCrawler::MakCrawler(support::Rng rng, MakConfig config)
    : RlCrawlerBase(std::move(rng)),
      config_(std::move(config)),
      name_(derive_name(config_)),
      policy_(build_policy(config_)) {
  // Forced-arm configurations never update the policy, so there is no
  // sampling distribution to account regret against.
  if (!config_.forced_arm.has_value()) {
    regret_.emplace(kArmCount);
  }
}

rl::StateId MakCrawler::get_state(const Page&) {
  return 0;  // stateless: the MAB has a single state
}

std::size_t MakCrawler::action_count(const Page&) {
  // The arms are available whenever the frontier has elements to draw.
  return frontier_.empty() ? 0 : kArmCount;
}

std::size_t MakCrawler::choose_action(rl::StateId, const Page&,
                                      std::size_t) {
  if (config_.forced_arm.has_value()) {
    return static_cast<std::size_t>(*config_.forced_arm);
  }
  return policy_->choose(rng());
}

InteractionResult MakCrawler::execute(Browser& browser, std::size_t action) {
  namespace metric = support::metric;
  auto& registry = support::MetricsRegistry::global();
  static const std::array<support::Counter*, kArmCount> arm_metrics = {
      &registry.counter(metric::kMakArmHead),
      &registry.counter(metric::kMakArmTail),
      &registry.counter(metric::kMakArmRandom)};

  const Arm arm = static_cast<Arm>(action);
  arm_metrics[action]->add();
  ++arm_counts_[action];
  ++steps_;
  in_flight_ = frontier_.take(arm, rng());
  if (!in_flight_.has_value()) {
    throw std::logic_error("MakCrawler::execute on empty frontier");
  }
  set_last_action(std::string(to_string(arm)) + " -> " +
                  in_flight_->describe());
  const InteractionResult result = browser.interact(*in_flight_);
  in_flight_failed_ = result.transport_error;
  if (in_flight_failed_) {
    ++failed_interactions_;
    static support::Counter& failed = registry.counter(
        metric::kMakFailedInteractions);
    failed.add();
  }
  return result;
}

void MakCrawler::on_page(const Page& page) {
  for (const auto& action : page.actions) {
    frontier_.push(action);
  }
}

double MakCrawler::get_reward(rl::StateId, std::size_t,
                              const InteractionResult& result, rl::StateId,
                              const Page& next_page) {
  // A failed interaction (transport fault) yields nothing by definition —
  // reward 0, without polluting the reward shaper's running statistics.
  if (result.transport_error) return 0.0;
  switch (config_.reward_mode) {
    case MakConfig::RewardMode::kStandardizedLinks:
      return standardized_.shape(static_cast<double>(last_link_increment()));
    case MakConfig::RewardMode::kRawLinks:
      // Unstandardized ablation: clamp the raw increment into [0, 1].
      return std::min(1.0, static_cast<double>(last_link_increment()) / 10.0);
    case MakConfig::RewardMode::kCuriosity:
      return in_flight_.has_value() ? curiosity_.visit(in_flight_->key())
                                    : 0.0;
    case MakConfig::RewardMode::kDomNovelty: {
      // Structural novelty of the landed page relative to the previous one
      // (a reward used by GUI-testing crawlers): high when the DOM changed
      // a lot, zero when the action led somewhere that looks the same.
      std::vector<std::string> tags = html::tag_sequence(next_page.dom);
      const double similarity =
          html::sequence_similarity(previous_tags_, tags);
      previous_tags_ = std::move(tags);
      return 1.0 - similarity;
    }
  }
  return 0.0;
}

void MakCrawler::update_policy(rl::StateId, std::size_t action, double reward,
                               rl::StateId, const Page&) {
  // Re-queue the interacted element one level up (or back into the single
  // flat deque for the ablation), keeping every element available.
  if (in_flight_.has_value()) {
    if (in_flight_failed_) {
      // The interaction never reached the application: put the element back
      // at its current level so the attempt does not count against it.
      frontier_.requeue_same(*in_flight_);
      in_flight_failed_ = false;
    } else if (config_.leveled_deque) {
      frontier_.requeue(*in_flight_);
    } else {
      // Flat-deque ablation: behave as one deque — the element returns to
      // the tail of level 0 competing with fresh discoveries.
      ResolvedAction flat = *in_flight_;
      frontier_.requeue_flat(flat);
    }
    in_flight_.reset();
  }
  if (!config_.forced_arm.has_value()) {
    // Account regret against the distribution the arm was drawn from —
    // probabilities() is pure (memoized for the Exp3 family, scratch-seeded
    // for Thompson), so this observes without perturbing the run.
    if (regret_.has_value()) {
      regret_->observe(action, reward, policy_->probabilities());
    }
    policy_->update(action, reward);
  }
}

support::json::Value MakCrawler::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state(snapshot_id(), snapshot_version());
  state.emplace("base", save_base_state());
  state.emplace("frontier", frontier_.save_state());
  state.emplace("policy", policy_->save_state());
  state.emplace("standardized", standardized_.save_state());
  state.emplace("curiosity", curiosity_.save_state());
  support::json::Array tags;
  tags.reserve(previous_tags_.size());
  for (const auto& tag : previous_tags_) tags.emplace_back(tag);
  state.emplace("previous_tags", support::json::Value(std::move(tags)));
  if (in_flight_.has_value()) {
    state.emplace("in_flight", action_to_json(*in_flight_));
  }
  if (regret_.has_value()) {
    state.emplace("regret", regret_->save_state());
  }
  state.emplace("in_flight_failed", support::json::Value(in_flight_failed_));
  state.emplace("steps", static_cast<double>(steps_));
  state.emplace("failed_interactions",
                static_cast<double>(failed_interactions_));
  support::json::Array arm_counts;
  for (const std::size_t count : arm_counts_) {
    arm_counts.emplace_back(static_cast<double>(count));
  }
  state.emplace("arm_counts", support::json::Value(std::move(arm_counts)));
  return support::json::Value(std::move(state));
}

void MakCrawler::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, snapshot_id(), snapshot_version());
  load_base_state(snapshot::require(state, "base"));
  frontier_.load_state(snapshot::require(state, "frontier"));
  policy_->load_state(snapshot::require(state, "policy"));
  standardized_.load_state(snapshot::require(state, "standardized"));
  curiosity_.load_state(snapshot::require(state, "curiosity"));
  std::vector<std::string> tags;
  for (const auto& tag : snapshot::require_array(state, "previous_tags")) {
    if (!tag.is_string()) {
      throw support::SnapshotError("MakCrawler: previous_tags must be strings");
    }
    tags.push_back(tag.as_string());
  }
  previous_tags_ = std::move(tags);
  if (const auto* in_flight = state.find("in_flight"); in_flight != nullptr) {
    in_flight_ = action_from_json(*in_flight);
  } else {
    in_flight_.reset();
  }
  // Optional for compatibility with checkpoints written before regret
  // accounting existed (same pattern as "in_flight").
  if (const auto* regret = state.find("regret");
      regret != nullptr && regret_.has_value()) {
    regret_->load_state(*regret);
  }
  in_flight_failed_ = snapshot::require_bool(state, "in_flight_failed");
  steps_ = static_cast<std::size_t>(snapshot::require_index(state, "steps"));
  failed_interactions_ = static_cast<std::size_t>(
      snapshot::require_index(state, "failed_interactions"));
  const auto counts = snapshot::indices_from_json(
      snapshot::require(state, "arm_counts"), "arm_counts");
  if (counts.size() != arm_counts_.size()) {
    throw support::SnapshotError("MakCrawler: arm_counts size mismatch");
  }
  std::copy(counts.begin(), counts.end(), arm_counts_.begin());
}

std::unique_ptr<MakCrawler> make_mak(support::Rng rng) {
  return std::make_unique<MakCrawler>(std::move(rng));
}

std::unique_ptr<MakCrawler> make_static_bfs(support::Rng rng) {
  MakConfig config;
  config.forced_arm = Arm::kHead;
  return std::make_unique<MakCrawler>(std::move(rng), std::move(config));
}

std::unique_ptr<MakCrawler> make_static_dfs(support::Rng rng) {
  MakConfig config;
  config.forced_arm = Arm::kTail;
  return std::make_unique<MakCrawler>(std::move(rng), std::move(config));
}

std::unique_ptr<MakCrawler> make_static_random(support::Rng rng) {
  MakConfig config;
  config.forced_arm = Arm::kRandom;
  return std::make_unique<MakCrawler>(std::move(rng), std::move(config));
}

}  // namespace mak::core
