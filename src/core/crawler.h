// The unified RL-crawling framework (Algorithm 2 of the paper).
//
// Every crawler — MAK, WebExplor, QExplore and the static strategies — is an
// instantiation of the same loop:
//
//   s  <- GET_STATE(p)
//   A  <- GET_ACTIONS(p)
//   a  <- CHOOSE_ACTION(pi, s, A)
//   p' <- EXECUTE(p, a)
//   s' <- GET_STATE(p')
//   r  <- GET_REWARD(s, a, s')
//   pi <- UPDATE_POLICY(pi, r, s, a, s')
//
// RlCrawlerBase drives the loop; subclasses instantiate the virtual building
// blocks. EXECUTE always flows through the shared Browser, so implementation
// differences cannot bias the comparison (Section V-A.1).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "core/browser.h"
#include "core/link_ledger.h"
#include "core/types.h"
#include "rl/qlearning.h"
#include "support/rng.h"
#include "support/snapshot.h"

namespace mak::rl {
class RegretAccountant;
}  // namespace mak::rl

namespace mak::core {

class Crawler {
 public:
  virtual ~Crawler() = default;

  virtual std::string_view name() const = 0;

  // Load the seed page and initialize internal pools.
  virtual void start(Browser& browser) = 0;

  // One iteration of the Algorithm 2 loop body (at most one atomic
  // interaction with the application).
  virtual void step(Browser& browser) = 0;

  // Distinct links gathered so far (link coverage).
  virtual std::size_t links_discovered() const = 0;

  // Human-readable description of the most recent step's choice (for
  // tracing); empty if the crawler does not report one.
  virtual std::string last_action() const { return {}; }

  // Step-level checkpointing support. Crawlers that can capture and restore
  // their full mid-run state return themselves; the harness falls back to
  // repetition-level restarts for the rest (docs/robustness.md).
  virtual support::Snapshotable* snapshotable() noexcept { return nullptr; }

  // Cumulative-regret accounting (rl/regret.h, docs/policies.md); null for
  // crawlers that do not run a bandit policy (forced arms, Q-learning).
  virtual const rl::RegretAccountant* regret_accountant() const noexcept {
    return nullptr;
  }
};

class RlCrawlerBase : public Crawler {
 public:
  explicit RlCrawlerBase(support::Rng rng) : rng_(std::move(rng)) {}

  void start(Browser& browser) final;
  void step(Browser& browser) final;
  std::size_t links_discovered() const final {
    return ledger_.distinct_links();
  }
  std::string last_action() const final { return last_action_; }

 protected:
  // --- the Algorithm 2 building blocks ---
  virtual rl::StateId get_state(const Page& page) = 0;
  // Number of abstract actions available (page interactables for the
  // Q-learning crawlers; the three arms for MAK).
  virtual std::size_t action_count(const Page& page) = 0;
  virtual std::size_t choose_action(rl::StateId state, const Page& page,
                                    std::size_t n_actions) = 0;
  virtual InteractionResult execute(Browser& browser, std::size_t action) = 0;
  virtual double get_reward(rl::StateId state, std::size_t action,
                            const InteractionResult& result,
                            rl::StateId next_state, const Page& next_page) = 0;
  virtual void update_policy(rl::StateId state, std::size_t action,
                             double reward, rl::StateId next_state,
                             const Page& next_page) = 0;

  // Called after every page load (seed, interaction result, recovery) so
  // subclasses can maintain their pools.
  virtual void on_page(const Page& /*page*/) {}

  // Called when no action is available on the current page; the default
  // restarts from the seed URL (standard dead-end recovery).
  virtual void recover(Browser& browser);

  // Link-coverage increment produced by the most recent page load.
  std::size_t last_link_increment() const noexcept { return last_increment_; }

  support::Rng& rng() noexcept { return rng_; }
  LinkLedger& ledger() noexcept { return ledger_; }

  // Subclasses may refine the trace label inside execute().
  void set_last_action(std::string description) {
    last_action_ = std::move(description);
  }

  // Checkpoint codec for the loop state every RL crawler shares (RNG,
  // ledger, last increment and trace label). Subclasses embed this object
  // under a "base" key of their own state.
  support::json::Value save_base_state() const;
  void load_base_state(const support::json::Value& state);

 private:
  void absorb(const Page& page);

  support::Rng rng_;
  LinkLedger ledger_;
  std::size_t last_increment_ = 0;
  std::string last_action_;
};

}  // namespace mak::core
