// Link-coverage accounting (the observable MAK's reward is built on).
//
// "Link coverage is determined by the number of different links gathered
// during the exploration of the web application" (Section IV-C). The ledger
// records the distinct action targets discovered on every visited page; the
// per-step increment is the raw reward fed into the standardizer.
//
// Links live in a support::UrlInterner rather than a node-based string set:
// absorb() runs for every action of every visited page, and with the
// browser's parse cache the page's actions carry memoized link()/link_hash()
// values — a revisit dedups against the interner without rebuilding or
// re-hashing a single string.
#pragma once

#include <cstddef>
#include <string>

#include "core/types.h"
#include "support/interner.h"
#include "support/json.h"

namespace mak::core {

class LinkLedger {
 public:
  // Record all action targets of a page; returns how many were new.
  std::size_t absorb(const Page& page);

  // Record a single URL; returns true if it was new.
  bool absorb_url(const url::Url& target);

  std::size_t distinct_links() const noexcept { return links_.size(); }

  void reset() { links_.clear(); }

  // Checkpointing: the gathered link set (sorted, so equal sets serialize
  // to equal bytes regardless of insertion history).
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  support::UrlInterner links_;
};

}  // namespace mak::core
