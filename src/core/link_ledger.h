// Link-coverage accounting (the observable MAK's reward is built on).
//
// "Link coverage is determined by the number of different links gathered
// during the exploration of the web application" (Section IV-C). The ledger
// records the distinct action targets discovered on every visited page; the
// per-step increment is the raw reward fed into the standardizer.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>

#include "core/types.h"
#include "support/json.h"

namespace mak::core {

class LinkLedger {
 public:
  // Record all action targets of a page; returns how many were new.
  std::size_t absorb(const Page& page);

  // Record a single URL; returns true if it was new.
  bool absorb_url(const url::Url& target);

  std::size_t distinct_links() const noexcept { return links_.size(); }

  void reset() { links_.clear(); }

  // Checkpointing: the gathered link set (sorted, so equal sets serialize
  // to equal bytes regardless of hash-table insertion history).
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  std::unordered_set<std::string> links_;
};

}  // namespace mak::core
