#include "core/link_ledger.h"

#include <algorithm>
#include <vector>

#include "support/snapshot.h"

namespace mak::core {

std::size_t LinkLedger::absorb(const Page& page) {
  std::size_t fresh = 0;
  for (const auto& action : page.actions) {
    if (absorb_url(action.target)) ++fresh;
  }
  return fresh;
}

bool LinkLedger::absorb_url(const url::Url& target) {
  return links_.insert(target.without_fragment()).second;
}

support::json::Value LinkLedger::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("core.link_ledger", 1);
  std::vector<std::string> sorted(links_.begin(), links_.end());
  std::sort(sorted.begin(), sorted.end());
  support::json::Array links;
  links.reserve(sorted.size());
  for (auto& link : sorted) links.emplace_back(std::move(link));
  state.emplace("links", support::json::Value(std::move(links)));
  return support::json::Value(std::move(state));
}

void LinkLedger::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "core.link_ledger", 1);
  std::unordered_set<std::string> links;
  for (const auto& link : snapshot::require_array(state, "links")) {
    if (!link.is_string()) {
      throw support::SnapshotError("LinkLedger: links must be strings");
    }
    links.insert(link.as_string());
  }
  links_ = std::move(links);
}

}  // namespace mak::core
