#include "core/link_ledger.h"

namespace mak::core {

std::size_t LinkLedger::absorb(const Page& page) {
  std::size_t fresh = 0;
  for (const auto& action : page.actions) {
    if (absorb_url(action.target)) ++fresh;
  }
  return fresh;
}

bool LinkLedger::absorb_url(const url::Url& target) {
  return links_.insert(target.without_fragment()).second;
}

}  // namespace mak::core
