#include "core/link_ledger.h"

#include <algorithm>
#include <vector>

#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::core {

std::size_t LinkLedger::absorb(const Page& page) {
  std::size_t fresh = 0;
  for (const auto& action : page.actions) {
    const auto before = static_cast<std::uint32_t>(links_.size());
    if (links_.intern_hashed(action.link(), action.link_hash()) == before) {
      ++fresh;
    }
  }
  return fresh;
}

bool LinkLedger::absorb_url(const url::Url& target) {
  const std::string link = target.without_fragment();
  const auto before = static_cast<std::uint32_t>(links_.size());
  return links_.intern_hashed(link, support::fnv1a(link)) == before;
}

support::json::Value LinkLedger::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("core.link_ledger", 1);
  std::vector<std::string> sorted = links_.strings();
  std::sort(sorted.begin(), sorted.end());
  support::json::Array links;
  links.reserve(sorted.size());
  for (auto& link : sorted) links.emplace_back(std::move(link));
  state.emplace("links", support::json::Value(std::move(links)));
  return support::json::Value(std::move(state));
}

void LinkLedger::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "core.link_ledger", 1);
  support::UrlInterner links;
  const auto& entries = snapshot::require_array(state, "links");
  links.reserve(entries.size());
  for (const auto& link : entries) {
    if (!link.is_string()) {
      throw support::SnapshotError("LinkLedger: links must be strings");
    }
    links.intern(link.as_string());
  }
  links_ = std::move(links);
}

}  // namespace mak::core
