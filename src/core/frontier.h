// MAK's global leveled deque of interactable elements (Section IV-B).
//
// The frontier is a list of deques indexed by level: the deque at level i
// holds elements the crawler has already interacted with i times. The three
// MAK arms draw from the *lowest non-empty level*:
//   Head   — least recently discovered element (BFS when always chosen)
//   Tail   — most recently discovered element (DFS when always chosen)
//   Random — uniform element of that level
// After an interaction the element is re-queued one level higher, so
// everything stays available while rarely-used elements are preferred —
// the curiosity principle folded into the action definition.
//
// Layout (docs/architecture.md, "Id interning & caching"): every action is
// interned once, at discovery time, into a flat side store and addressed by
// a dense uint32 id from then on. The levels are rings of ids over plain
// vectors and the key -> level table is a flat array indexed by id, so the
// per-step push/take/requeue/dedup churn — the hottest loop of the crawl —
// moves 4-byte ids instead of re-hashing keys and shuffling deque nodes.
// Semantics and the save_state/load_state byte format are identical to the
// historical std::deque-of-actions implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "support/interner.h"
#include "support/json.h"
#include "support/rng.h"

namespace mak::core {

enum class Arm : std::size_t { kHead = 0, kTail = 1, kRandom = 2 };
constexpr std::size_t kArmCount = 3;

std::string_view to_string(Arm arm) noexcept;

class LeveledDeque {
 public:
  // Insert a newly discovered element at level 0 (tail). Elements are
  // deduplicated by action key across all levels; duplicates are ignored.
  // Returns true if the element was new.
  bool push(const ResolvedAction& action);

  // Remove and return an element from the lowest non-empty level according
  // to the arm. Empty frontier returns nullopt.
  std::optional<ResolvedAction> take(Arm arm, support::Rng& rng);

  // Re-insert an element previously returned by take() one level higher.
  void requeue(const ResolvedAction& action);

  // Re-insert an element previously returned by take() at the level it was
  // taken from: a failed interaction (transport fault) must not count as an
  // execution, and the element must never be lost.
  void requeue_same(const ResolvedAction& action);

  // Re-insert at level 0 regardless of history (flat-deque ablation: the
  // structure degenerates to a single deque).
  void requeue_flat(const ResolvedAction& action);

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t level_count() const noexcept { return levels_.size(); }
  std::size_t level_size(std::size_t level) const noexcept;
  // Level the lowest available element sits at (0 if empty).
  std::size_t lowest_level() const noexcept;
  // Interaction count of a known element's action key (0 if unknown).
  std::size_t interactions_of(std::uint64_t key) const noexcept;

  // Distinct actions interned since construction (every element ever
  // pushed, queued or in flight).
  std::size_t interned_actions() const noexcept { return store_.size(); }

  // Checkpointing: every queued element (in deque order, per level) plus the
  // key->level table, which also covers the in-flight element take() has
  // already promoted. load_state cross-checks the two and rebuilds size_.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  // One level: a deque of dense ids over a flat vector. pop_front advances
  // `head` and compacts lazily; the middle erase (Random arm) shifts ids,
  // preserving exact deque ordering semantics.
  struct Level {
    std::vector<std::uint32_t> ids;
    std::size_t head = 0;

    std::size_t size() const noexcept { return ids.size() - head; }
    bool empty() const noexcept { return head == ids.size(); }
    void push_back(std::uint32_t id) { ids.push_back(id); }
    std::uint32_t pop_front() {
      const std::uint32_t id = ids[head++];
      if (head >= 32 && head * 2 >= ids.size()) {
        ids.erase(ids.begin(),
                  ids.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      return id;
    }
    std::uint32_t pop_back() {
      const std::uint32_t id = ids.back();
      ids.pop_back();
      return id;
    }
    std::uint32_t pop_at(std::size_t index) {
      const std::size_t pos = head + index;
      const std::uint32_t id = ids[pos];
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pos));
      return id;
    }
  };

  Level& level(std::size_t i);
  // Dense id of a previously interned action; throws std::logic_error with
  // `what` when the action was never pushed (requeue contract).
  std::uint32_t known_id(const ResolvedAction& action, const char* what) const;
  // Append an already-interned id to its current level.
  void append(std::uint32_t id, const ResolvedAction& action);

  support::FlatMap64 id_of_;           // action key -> dense id
  std::vector<ResolvedAction> store_;  // by id; single copy per action
  // store_[id] holds a real action. False only for ids reconstructed from a
  // checkpoint's key->level table whose element was in flight at save time;
  // the first requeue fills the slot.
  std::vector<std::uint8_t> has_action_;
  std::vector<std::uint64_t> key_of_;       // by id (serialization order)
  std::vector<std::uint32_t> level_of_id_;  // by id: level it sits/returns at
  std::vector<Level> levels_;
  std::size_t size_ = 0;
};

}  // namespace mak::core
