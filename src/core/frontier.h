// MAK's global leveled deque of interactable elements (Section IV-B).
//
// The frontier is a list of deques indexed by level: the deque at level i
// holds elements the crawler has already interacted with i times. The three
// MAK arms draw from the *lowest non-empty level*:
//   Head   — least recently discovered element (BFS when always chosen)
//   Tail   — most recently discovered element (DFS when always chosen)
//   Random — uniform element of that level
// After an interaction the element is re-queued one level higher, so
// everything stays available while rarely-used elements are preferred —
// the curiosity principle folded into the action definition.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "support/json.h"
#include "support/rng.h"

namespace mak::core {

enum class Arm : std::size_t { kHead = 0, kTail = 1, kRandom = 2 };
constexpr std::size_t kArmCount = 3;

std::string_view to_string(Arm arm) noexcept;

class LeveledDeque {
 public:
  // Insert a newly discovered element at level 0 (tail). Elements are
  // deduplicated by action key across all levels; duplicates are ignored.
  // Returns true if the element was new.
  bool push(const ResolvedAction& action);

  // Remove and return an element from the lowest non-empty level according
  // to the arm. Empty frontier returns nullopt.
  std::optional<ResolvedAction> take(Arm arm, support::Rng& rng);

  // Re-insert an element previously returned by take() one level higher.
  void requeue(const ResolvedAction& action);

  // Re-insert an element previously returned by take() at the level it was
  // taken from: a failed interaction (transport fault) must not count as an
  // execution, and the element must never be lost.
  void requeue_same(const ResolvedAction& action);

  // Re-insert at level 0 regardless of history (flat-deque ablation: the
  // structure degenerates to a single deque).
  void requeue_flat(const ResolvedAction& action);

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t level_count() const noexcept { return levels_.size(); }
  std::size_t level_size(std::size_t level) const noexcept;
  // Level the lowest available element sits at (0 if empty).
  std::size_t lowest_level() const noexcept;
  // Interaction count of a known element's action key (0 if unknown).
  std::size_t interactions_of(std::uint64_t key) const noexcept;

  // Checkpointing: every queued element (in deque order, per level) plus the
  // key->level table, which also covers the in-flight element take() has
  // already promoted. load_state cross-checks the two and rebuilds size_.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  std::deque<ResolvedAction>& level(std::size_t i);

  std::vector<std::deque<ResolvedAction>> levels_;
  // action key -> level it currently sits at (or will be requeued to).
  std::unordered_map<std::uint64_t, std::size_t> level_of_;
  std::size_t size_ = 0;
};

}  // namespace mak::core
