#include "core/types.h"

#include "support/strings.h"

namespace mak::core {

std::uint64_t ResolvedAction::key() const {
  if (cache_.key_cached) return cache_.key;
  // Streamed FNV-1a over the same byte sequence the original implementation
  // concatenated, so memoized keys match every key already serialized into
  // checkpoints: kind|method|target[|name:type...].
  std::uint64_t hash = support::kFnv1aSeed;
  hash = support::fnv1a_accum(hash, html::to_string(element.kind));
  hash = support::fnv1a_accum(hash, "|");
  hash = support::fnv1a_accum(hash, element.method);
  hash = support::fnv1a_accum(hash, "|");
  hash = support::fnv1a_accum(hash, link());
  for (const auto& field : element.fields) {
    hash = support::fnv1a_accum(hash, "|");
    hash = support::fnv1a_accum(hash, field.name);
    hash = support::fnv1a_accum(hash, ":");
    hash = support::fnv1a_accum(hash, field.type);
  }
  cache_.key = hash;
  cache_.key_cached = true;
  return cache_.key;
}

const std::string& ResolvedAction::link() const {
  if (!cache_.link_cached) {
    cache_.link = target.without_fragment();
    cache_.link_hash = support::fnv1a(cache_.link);
    cache_.link_cached = true;
  }
  return cache_.link;
}

std::uint64_t ResolvedAction::link_hash() const {
  link();
  return cache_.link_hash;
}

std::string ResolvedAction::describe() const {
  std::string out(html::to_string(element.kind));
  out += ' ';
  out += element.method;
  out += ' ';
  out += link();
  if (!element.text.empty()) {
    out += " \"";
    out += element.text;
    out += '"';
  }
  return out;
}

}  // namespace mak::core
