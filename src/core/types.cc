#include "core/types.h"

#include "support/strings.h"

namespace mak::core {

std::uint64_t ResolvedAction::key() const {
  std::string out(html::to_string(element.kind));
  out += '|';
  out += element.method;
  out += '|';
  out += target.without_fragment();
  for (const auto& field : element.fields) {
    out += '|';
    out += field.name;
    out += ':';
    out += field.type;
  }
  return support::fnv1a(out);
}

std::string ResolvedAction::describe() const {
  std::string out(html::to_string(element.kind));
  out += ' ';
  out += element.method;
  out += ' ';
  out += target.without_fragment();
  if (!element.text.empty()) {
    out += " \"";
    out += element.text;
    out += '"';
  }
  return out;
}

}  // namespace mak::core
