// Multi-agent MAK — the ensemble extension sketched in the paper's related
// work (Section VI): "Our proposal has the potential to improve multi-agent
// RL-based crawlers as well, because each agent of the ensemble can benefit
// from our stateless approach."
//
// A MakTeam is N crawling agents working the SAME application concurrently:
//   * shared: the global leveled deque and the link ledger — an element
//     discovered by one agent is available to all, and is interacted with
//     exactly once per level across the whole team;
//   * per-agent: the browser (own cookie jar, hence own server session —
//     agents progress wizards/carts independently), the Exp3.1 policy and
//     the RNG, so agents can specialize on different arms.
// Stepping is round-robin; with each agent modelled as a parallel worker, a
// wall-clock budget of T corresponds to N x T of single-agent budget.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/browser.h"
#include "core/frontier.h"
#include "core/link_ledger.h"
#include "core/mak.h"
#include "rl/bandit.h"
#include "rl/reward.h"

namespace mak::core {

struct MakTeamConfig {
  std::size_t agent_count = 2;
  // Share one reward standardizer across the team (the link-coverage
  // history is global anyway); when false each agent standardizes against
  // its own observations only.
  bool shared_reward_history = true;
};

class MakTeam {
 public:
  MakTeam(httpsim::Network& network, url::Url seed, support::Rng rng,
          MakTeamConfig config = {});

  // Load the seed page in every agent's browser.
  void start();

  // The next agent (round-robin) performs one atomic interaction.
  void step();

  std::size_t agent_count() const noexcept { return agents_.size(); }
  std::size_t interactions() const noexcept;  // summed over agents
  std::size_t links_discovered() const noexcept {
    return ledger_.distinct_links();
  }
  const LeveledDeque& frontier() const noexcept { return frontier_; }
  // Per-agent arm usage (for diagnosing specialization).
  std::array<std::size_t, kArmCount> arm_counts(std::size_t agent) const;

 private:
  struct Agent {
    Browser browser;
    std::unique_ptr<rl::BanditPolicy> policy;
    rl::StandardizedReward reward;  // used when !shared_reward_history
    support::Rng rng;
    std::array<std::size_t, kArmCount> arm_counts{};
  };

  void agent_step(Agent& agent);
  void absorb(Agent& agent, std::size_t* increment_out);

  MakTeamConfig config_;
  LeveledDeque frontier_;
  LinkLedger ledger_;
  rl::StandardizedReward shared_reward_;
  std::vector<Agent> agents_;
  std::size_t next_agent_ = 0;
};

}  // namespace mak::core
