// JSON codecs for the core value types that appear inside checkpoints
// (docs/robustness.md): URLs, interactable elements and resolved actions.
//
// These are exact round-trips: decoding the encoded form reproduces a value
// that compares equal to (and hashes identically with) the original. All
// decoders throw support::SnapshotError on malformed input.
#pragma once

#include "core/types.h"
#include "support/json.h"

namespace mak::core {

support::json::Value url_to_json(const url::Url& url);
url::Url url_from_json(const support::json::Value& value);

support::json::Value form_field_to_json(const html::FormField& field);
html::FormField form_field_from_json(const support::json::Value& value);

support::json::Value interactable_to_json(const html::Interactable& element);
html::Interactable interactable_from_json(const support::json::Value& value);

support::json::Value action_to_json(const ResolvedAction& action);
ResolvedAction action_from_json(const support::json::Value& value);

}  // namespace mak::core
