// Core value types shared by the crawler framework.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "html/dom.h"
#include "html/interactables.h"
#include "url/url.h"

namespace mak::core {

// An interactable element with its target resolved to an absolute,
// same-origin URL (external and unparsable targets are dropped at page
// construction, per the paper's framework assumption (ii)).
//
// key(), link() and link_hash() are lazily memoized: the frontier and link
// ledger call them on every push/take/requeue/dedup, and recomputing them
// meant re-serializing and re-hashing strings in the hottest loop of the
// crawl. Copies drop the cache (a copy is how callers obtain an action they
// intend to mutate); moves keep it. An action must not be mutated in place
// after its first key()/link() call — the big winners are the const actions
// shared through the browser's parse cache, whose identity is computed once
// per distinct page and reused every revisit.
struct ResolvedAction {
  // Cache slots for the identity accessors. Copying an action resets them,
  // so copy-then-tweak construction patterns can never observe a stale key.
  struct IdentityCache {
    std::string link;
    std::uint64_t key = 0;
    std::uint64_t link_hash = 0;
    bool key_cached = false;
    bool link_cached = false;

    IdentityCache() = default;
    IdentityCache(const IdentityCache&) noexcept {}
    IdentityCache& operator=(const IdentityCache&) noexcept {
      link.clear();
      key_cached = false;
      link_cached = false;
      return *this;
    }
    IdentityCache(IdentityCache&&) = default;
    IdentityCache& operator=(IdentityCache&&) = default;
  };

  html::Interactable element;
  url::Url target;  // normalized absolute URL, no fragment

  // Identity of the *action* (not of the DOM node): kind, method, target and
  // form-field signature. Two pages sharing a nav link share the action.
  std::uint64_t key() const;

  // target.without_fragment(), built once (the ledger's coverage key).
  const std::string& link() const;
  // fnv1a(link()), the ledger's probe hash.
  std::uint64_t link_hash() const;

  std::string describe() const;

  // Mutable so const actions shared through the parse cache can populate
  // the cache on first use (single-threaded per Browser).
  mutable IdentityCache cache_;
};

// A fetched, parsed page as the crawler sees it.
struct Page {
  url::Url url;       // final URL after redirects, normalized
  int status = 0;     // HTTP status of the final response
  std::string title;
  std::string body;   // raw response body (checkpoints re-parse it on resume)
  html::Document dom;
  std::vector<ResolvedAction> actions;  // valid interactables, page order

  bool ok() const noexcept { return status > 0 && status < 400; }
};

// Result of executing one atomic interaction.
struct InteractionResult {
  int status = 0;
  bool navigation_error = false;  // status >= 400 or transport failure
  // The transport layer failed (connection drop, client timeout, or an
  // injected transient 5xx) even after any configured retries. Distinct from
  // an application-level error page, which still carries real content.
  bool transport_error = false;
  int retries = 0;  // retry attempts spent on this interaction
  int redirects = 0;
};

}  // namespace mak::core
