// Core value types shared by the crawler framework.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "html/dom.h"
#include "html/interactables.h"
#include "url/url.h"

namespace mak::core {

// An interactable element with its target resolved to an absolute,
// same-origin URL (external and unparsable targets are dropped at page
// construction, per the paper's framework assumption (ii)).
struct ResolvedAction {
  html::Interactable element;
  url::Url target;  // normalized absolute URL, no fragment

  // Identity of the *action* (not of the DOM node): kind, method, target and
  // form-field signature. Two pages sharing a nav link share the action.
  std::uint64_t key() const;

  std::string describe() const;
};

// A fetched, parsed page as the crawler sees it.
struct Page {
  url::Url url;       // final URL after redirects, normalized
  int status = 0;     // HTTP status of the final response
  std::string title;
  std::string body;   // raw response body (checkpoints re-parse it on resume)
  html::Document dom;
  std::vector<ResolvedAction> actions;  // valid interactables, page order

  bool ok() const noexcept { return status > 0 && status < 400; }
};

// Result of executing one atomic interaction.
struct InteractionResult {
  int status = 0;
  bool navigation_error = false;  // status >= 400 or transport failure
  // The transport layer failed (connection drop, client timeout, or an
  // injected transient 5xx) even after any configured retries. Distinct from
  // an application-level error page, which still carries real content.
  bool transport_error = false;
  int retries = 0;  // retry attempts spent on this interaction
  int redirects = 0;
};

}  // namespace mak::core
