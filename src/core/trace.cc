#include "core/trace.h"

#include <cstdio>
#include <ostream>

namespace mak::core {

std::string_view to_string(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kSeedLoad:
      return "seed";
    case TraceEvent::Kind::kInteraction:
      return "interaction";
    case TraceEvent::Kind::kRecovery:
      return "recovery";
  }
  return "?";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void CrawlTrace::write_jsonl(std::ostream& os) const {
  for (const auto& event : events_) {
    os << "{\"kind\":\"" << to_string(event.kind) << "\",\"time_ms\":"
       << event.time << ",\"step\":" << event.step << ",\"action\":\""
       << json_escape(event.action) << "\",\"url\":\""
       << json_escape(event.url) << "\",\"status\":" << event.status
       << ",\"new_links\":" << event.new_links
       << ",\"covered_lines\":" << event.covered_lines
       << ",\"retries\":" << event.retries << "}\n";
  }
}

CrawlTrace::Summary CrawlTrace::summarize() const noexcept {
  Summary summary;
  for (const auto& event : events_) {
    switch (event.kind) {
      case TraceEvent::Kind::kInteraction:
        ++summary.interactions;
        break;
      case TraceEvent::Kind::kRecovery:
        ++summary.recoveries;
        break;
      case TraceEvent::Kind::kSeedLoad:
        break;
    }
    if (event.status >= 400) ++summary.errors;
    summary.total_new_links += event.new_links;
    summary.total_retries += event.retries;
  }
  return summary;
}

}  // namespace mak::core
