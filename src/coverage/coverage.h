// Server-side line coverage instrumentation (the Xdebug analogue).
//
// Each synthetic application declares a CodeModel: its "server-side source
// files" with line counts. Handlers mark line ranges as executed on a
// CoverageTracker. Like Xdebug, coverage can be sampled at any virtual time;
// like coverage-node, the total line count of the model is known.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/clock.h"
#include "support/json.h"

namespace mak::coverage {

using FileId = std::uint32_t;

// Immutable description of an application's server-side code base.
class CodeModel {
 public:
  FileId add_file(std::string name, std::size_t line_count);

  std::size_t file_count() const noexcept { return files_.size(); }
  std::size_t total_lines() const noexcept { return total_lines_; }
  const std::string& file_name(FileId id) const { return files_.at(id).name; }
  std::size_t file_lines(FileId id) const { return files_.at(id).lines; }

 private:
  struct File {
    std::string name;
    std::size_t lines;
  };
  std::vector<File> files_;
  std::size_t total_lines_ = 0;
};

// A set of covered lines over a CodeModel. Bitset-backed; supports union
// (for the paper's ground-truth estimation) and fast counting.
class LineSet {
 public:
  LineSet() = default;
  explicit LineSet(const CodeModel& model);

  // Mark [first_line, last_line] of file `id` covered (1-based, inclusive).
  // Out-of-range portions are clamped to the file.
  void mark(FileId id, std::size_t first_line, std::size_t last_line);

  bool contains(FileId id, std::size_t line) const;
  std::size_t count() const noexcept { return covered_; }
  bool empty() const noexcept { return covered_ == 0; }

  // Set union; both sets must come from the same CodeModel.
  void union_with(const LineSet& other);
  // Lines in this set but not in `other`.
  std::size_t count_not_in(const LineSet& other) const;

  void clear();

  // Checkpointing: per-file bit words as hex strings. load_state validates
  // that the file count and per-file word counts match this set's model and
  // recomputes the covered counter from the restored bits.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  // Per file: packed bit words; sizes fixed by the model at construction.
  std::vector<std::vector<std::uint64_t>> bits_;
  std::vector<std::size_t> file_lines_;
  std::size_t covered_ = 0;
};

// Mutable coverage recorder handed to application handlers.
class CoverageTracker {
 public:
  explicit CoverageTracker(const CodeModel& model)
      : model_(&model), lines_(model) {}

  const CodeModel& model() const noexcept { return *model_; }

  // Record execution of [first_line, last_line] of file `id`.
  void hit(FileId id, std::size_t first_line, std::size_t last_line) {
    lines_.mark(id, first_line, last_line);
  }

  std::size_t covered_lines() const noexcept { return lines_.count(); }
  double covered_fraction() const noexcept {
    return model_->total_lines() == 0
               ? 0.0
               : static_cast<double>(lines_.count()) /
                     static_cast<double>(model_->total_lines());
  }
  const LineSet& lines() const noexcept { return lines_; }

  void reset() { lines_.clear(); }

  // Checkpointing: delegates to the underlying LineSet.
  support::json::Value save_state() const { return lines_.save_state(); }
  void load_state(const support::json::Value& state) {
    lines_.load_state(state);
  }

 private:
  const CodeModel* model_;
  LineSet lines_;
};

// Per-file coverage numbers for report generation.
struct FileCoverage {
  std::string file;
  std::size_t covered = 0;
  std::size_t total = 0;

  double fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(covered) /
                            static_cast<double>(total);
  }
};

// Break a covered set down by file (order: as declared in the model).
std::vector<FileCoverage> file_breakdown(const CodeModel& model,
                                         const LineSet& covered);

// Coverage sampled over virtual time; one per crawl run (Figure 2 data).
struct CoveragePoint {
  support::VirtualMillis time = 0;
  std::size_t covered_lines = 0;
};

class CoverageSeries {
 public:
  void record(support::VirtualMillis time, std::size_t covered) {
    points_.push_back({time, covered});
  }
  const std::vector<CoveragePoint>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }

  // Coverage at the latest sample <= time (0 before the first sample).
  std::size_t at(support::VirtualMillis time) const noexcept;

 private:
  std::vector<CoveragePoint> points_;
};

}  // namespace mak::coverage
