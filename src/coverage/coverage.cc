#include "coverage/coverage.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "support/snapshot.h"

namespace mak::coverage {

FileId CodeModel::add_file(std::string name, std::size_t line_count) {
  if (line_count == 0) {
    throw std::invalid_argument("CodeModel::add_file: zero lines");
  }
  files_.push_back(File{std::move(name), line_count});
  total_lines_ += line_count;
  return static_cast<FileId>(files_.size() - 1);
}

LineSet::LineSet(const CodeModel& model) {
  bits_.resize(model.file_count());
  file_lines_.resize(model.file_count());
  for (FileId id = 0; id < model.file_count(); ++id) {
    file_lines_[id] = model.file_lines(id);
    bits_[id].assign((model.file_lines(id) + 63) / 64, 0);
  }
}

void LineSet::mark(FileId id, std::size_t first_line, std::size_t last_line) {
  if (id >= bits_.size()) {
    throw std::out_of_range("LineSet::mark: bad file id");
  }
  if (first_line == 0) first_line = 1;
  last_line = std::min(last_line, file_lines_[id]);
  if (first_line > last_line) return;
  auto& words = bits_[id];
  // Whole words at a time: popcount of the newly set bits keeps `covered_`
  // exactly what the per-line loop would produce.
  const std::size_t first_bit = first_line - 1;
  const std::size_t last_bit = last_line - 1;
  const std::size_t first_word = first_bit / 64;
  const std::size_t last_word = last_bit / 64;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    std::uint64_t mask = ~0ULL;
    if (w == first_word) mask &= ~0ULL << (first_bit % 64);
    if (w == last_word) {
      const std::size_t top = last_bit % 64;
      if (top != 63) mask &= (1ULL << (top + 1)) - 1;
    }
    const std::uint64_t fresh = mask & ~words[w];
    if (fresh != 0) {
      words[w] |= fresh;
      covered_ += static_cast<std::size_t>(std::popcount(fresh));
    }
  }
}

bool LineSet::contains(FileId id, std::size_t line) const {
  if (id >= bits_.size() || line == 0 || line > file_lines_[id]) return false;
  const std::size_t bit = line - 1;
  return (bits_[id][bit / 64] >> (bit % 64)) & 1;
}

void LineSet::union_with(const LineSet& other) {
  if (bits_.size() != other.bits_.size()) {
    throw std::invalid_argument("LineSet::union_with: model mismatch");
  }
  covered_ = 0;
  for (std::size_t f = 0; f < bits_.size(); ++f) {
    if (bits_[f].size() != other.bits_[f].size()) {
      throw std::invalid_argument("LineSet::union_with: model mismatch");
    }
    for (std::size_t w = 0; w < bits_[f].size(); ++w) {
      bits_[f][w] |= other.bits_[f][w];
      covered_ += static_cast<std::size_t>(std::popcount(bits_[f][w]));
    }
  }
}

std::size_t LineSet::count_not_in(const LineSet& other) const {
  if (bits_.size() != other.bits_.size()) {
    throw std::invalid_argument("LineSet::count_not_in: model mismatch");
  }
  std::size_t total = 0;
  for (std::size_t f = 0; f < bits_.size(); ++f) {
    for (std::size_t w = 0; w < bits_[f].size(); ++w) {
      total += static_cast<std::size_t>(
          std::popcount(bits_[f][w] & ~other.bits_[f][w]));
    }
  }
  return total;
}

void LineSet::clear() {
  for (auto& words : bits_) {
    std::fill(words.begin(), words.end(), 0);
  }
  covered_ = 0;
}

support::json::Value LineSet::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("coverage.line_set", 1);
  state.emplace("lines", snapshot::indices_to_json(file_lines_));
  support::json::Array files;
  files.reserve(bits_.size());
  for (const auto& words : bits_) {
    support::json::Array file;
    file.reserve(words.size());
    for (const std::uint64_t word : words) {
      file.emplace_back(snapshot::u64_to_hex(word));
    }
    files.emplace_back(std::move(file));
  }
  state.emplace("bits", support::json::Value(std::move(files)));
  return support::json::Value(std::move(state));
}

void LineSet::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "coverage.line_set", 1);
  const auto file_lines = snapshot::indices_from_json(
      snapshot::require(state, "lines"), "lines");
  // A default-constructed set adopts the stored shape (used when restoring
  // archived run results); a model-backed set requires an exact match.
  if (!file_lines_.empty() && file_lines != file_lines_) {
    throw support::SnapshotError("LineSet: model mismatch with checkpoint");
  }
  const auto& files = snapshot::require_array(state, "bits");
  if (files.size() != file_lines.size()) {
    throw support::SnapshotError("LineSet: bits/lines file count mismatch");
  }
  std::vector<std::vector<std::uint64_t>> bits;
  std::size_t covered = 0;
  bits.reserve(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    if (!files[f].is_array()) {
      throw support::SnapshotError("LineSet: per-file bits must be arrays");
    }
    const auto& words_json = files[f].as_array();
    const std::size_t expected_words = (file_lines[f] + 63) / 64;
    if (words_json.size() != expected_words) {
      throw support::SnapshotError("LineSet: word count mismatch");
    }
    std::vector<std::uint64_t> words;
    words.reserve(words_json.size());
    for (const auto& word_json : words_json) {
      if (!word_json.is_string()) {
        throw support::SnapshotError("LineSet: bit words must be hex strings");
      }
      const std::uint64_t word = snapshot::hex_to_u64(word_json.as_string());
      covered += static_cast<std::size_t>(std::popcount(word));
      words.push_back(word);
    }
    // Bits beyond the file's line count can never be marked; their presence
    // means the payload was corrupted.
    if (!words.empty() && file_lines[f] % 64 != 0) {
      const std::uint64_t stray = words.back() >> (file_lines[f] % 64);
      if (stray != 0) {
        throw support::SnapshotError("LineSet: stray bits past end of file");
      }
    }
    bits.push_back(std::move(words));
  }
  file_lines_ = file_lines;
  bits_ = std::move(bits);
  covered_ = covered;
}

std::vector<FileCoverage> file_breakdown(const CodeModel& model,
                                         const LineSet& covered) {
  std::vector<FileCoverage> out;
  out.reserve(model.file_count());
  for (FileId id = 0; id < model.file_count(); ++id) {
    FileCoverage fc;
    fc.file = model.file_name(id);
    fc.total = model.file_lines(id);
    for (std::size_t line = 1; line <= fc.total; ++line) {
      if (covered.contains(id, line)) ++fc.covered;
    }
    out.push_back(std::move(fc));
  }
  return out;
}

std::size_t CoverageSeries::at(support::VirtualMillis time) const noexcept {
  std::size_t best = 0;
  for (const auto& p : points_) {
    if (p.time <= time) {
      best = p.covered_lines;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace mak::coverage
