// Bandit policy registry (docs/policies.md).
//
// One canonical name per policy, shared by `mak_crawl --policy`, the
// benches and the docs. tools/check_docs.sh check #4 greps the catalog in
// policy_factory.cc and fails CI if any entry is missing from
// docs/policies.md, so adding a policy here forces its documentation.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

struct PolicyInfo {
  std::string_view name;     // canonical CLI/docs name, e.g. "exp3.1"
  std::string_view summary;  // one-line description for --list output
};

// Every registered policy, in display order.
const std::vector<PolicyInfo>& policy_catalog();

// Comma-separated catalog names, for error messages and usage text.
std::string policy_names_joined();

// Build a policy by canonical name with its default hyperparameters.
// Throws std::invalid_argument listing the valid names on unknown input.
std::unique_ptr<BanditPolicy> make_policy(std::string_view name,
                                          std::size_t arms);

}  // namespace mak::rl
