// Thompson sampling with Beta-Bernoulli posteriors — the Bayesian
// stochastic-bandit baseline.
//
// Like UCB1, Thompson sampling assumes stationary reward distributions; its
// posteriors concentrate permanently as evidence accumulates, so it adapts
// poorly when the best arm drifts mid-crawl. Completes the policy-ablation
// line-up (adversarial Exp3.1 vs the two classic stochastic designs).
// Rewards in [0,1] update the posterior via the standard Bernoulli trick:
// count a success with probability r.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

class ThompsonSampling final : public BanditPolicy {
 public:
  explicit ThompsonSampling(std::size_t arms);

  std::size_t arm_count() const noexcept override { return alpha_.size(); }
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  double posterior_mean(std::size_t arm) const;

 private:
  // Sample Beta(a, b) via two Gamma draws (Marsaglia-Tsang).
  static double sample_beta(double a, double b, support::Rng& rng);
  static double sample_gamma(double shape, support::Rng& rng);

  std::vector<double> alpha_;  // successes + 1
  std::vector<double> beta_;   // failures + 1
  // choose() needs randomness for probabilities(); keep a scratch stream so
  // the diagnostic accessor stays const-friendly and deterministic.
};

}  // namespace mak::rl
