#include "rl/epsilon_greedy.h"

#include <algorithm>
#include <stdexcept>

#include "support/snapshot.h"

namespace mak::rl {

EpsilonGreedy::EpsilonGreedy(std::size_t arms, double epsilon)
    : epsilon_(epsilon) {
  if (arms == 0) throw std::invalid_argument("EpsilonGreedy: zero arms");
  if (!(epsilon >= 0.0 && epsilon <= 1.0)) {
    throw std::invalid_argument("EpsilonGreedy: epsilon must be in [0, 1]");
  }
  means_.assign(arms, 0.0);
  counts_.assign(arms, 0);
}

std::size_t EpsilonGreedy::best_arm() const noexcept {
  // Unvisited arms first (optimistic), then highest empirical mean.
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) return i;
  }
  return static_cast<std::size_t>(
      std::max_element(means_.begin(), means_.end()) - means_.begin());
}

std::size_t EpsilonGreedy::choose(support::Rng& rng) {
  if (rng.chance(epsilon_)) return rng.next_below(means_.size());
  return best_arm();
}

void EpsilonGreedy::update(std::size_t arm, double reward01) {
  if (arm >= means_.size()) throw std::out_of_range("EpsilonGreedy: bad arm");
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("EpsilonGreedy: reward must be in [0, 1]");
  }
  ++counts_[arm];
  means_[arm] += (reward01 - means_[arm]) / static_cast<double>(counts_[arm]);
}

std::vector<double> EpsilonGreedy::probabilities() const {
  const std::size_t k = means_.size();
  std::vector<double> probs(k, epsilon_ / static_cast<double>(k));
  probs[best_arm()] += 1.0 - epsilon_;
  return probs;
}

void EpsilonGreedy::reset() {
  std::fill(means_.begin(), means_.end(), 0.0);
  std::fill(counts_.begin(), counts_.end(), 0);
}

support::json::Value EpsilonGreedy::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.epsilon_greedy", 1);
  state.emplace("epsilon", epsilon_);
  state.emplace("means", snapshot::doubles_to_json(means_));
  state.emplace("counts", snapshot::indices_to_json(counts_));
  return support::json::Value(std::move(state));
}

void EpsilonGreedy::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.epsilon_greedy", 1);
  if (snapshot::require_number(state, "epsilon") != epsilon_) {
    throw support::SnapshotError(
        "EpsilonGreedy: epsilon mismatch with checkpoint");
  }
  auto means =
      snapshot::doubles_from_json(snapshot::require(state, "means"), "means");
  auto counts = snapshot::indices_from_json(snapshot::require(state, "counts"),
                                            "counts");
  if (means.size() != means_.size() || counts.size() != counts_.size()) {
    throw support::SnapshotError(
        "EpsilonGreedy: arm count mismatch with checkpoint");
  }
  means_ = std::move(means);
  counts_ = std::move(counts);
}

}  // namespace mak::rl
