// Rotting-aware Exp3 variant with exponentially discounted gains.
//
// Coverage reward provably decays as a crawl saturates — the Rotting
// Bandits regime (Levine, Crammer & Mannor, NeurIPS 2017). Plain Exp3
// weights are products over the *entire* history, so an arm that paid well
// a million steps ago keeps its head start forever. DiscountedExp3 keeps
// importance-weighted gain estimates instead and multiplies all of them by
// a discount factor rho in (0, 1] after every update, giving the policy an
// effective memory of ~1/(1-rho) steps. With rho = 1 the sampling
// distribution coincides with plain Exp3's (same exponent, summed rather
// than accumulated multiplicatively).
#pragma once

#include <cstddef>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

class DiscountedExp3 final : public BanditPolicy {
 public:
  DiscountedExp3(std::size_t arms, double gamma, double discount);

  std::size_t arm_count() const noexcept override { return gains_.size(); }
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  double gamma() const noexcept { return gamma_; }
  double discount() const noexcept { return discount_; }
  std::size_t steps() const noexcept { return steps_; }
  const std::vector<double>& discounted_gains() const noexcept {
    return gains_;
  }

 private:
  const std::vector<double>& current_probabilities() const;

  double gamma_;
  double discount_;
  std::vector<double> gains_;  // discounted \hat{G}_i
  std::size_t steps_ = 0;
  // See Exp3::probs_ — memoized sampling distribution, invalidated by every
  // gain mutation.
  mutable std::vector<double> probs_;
  mutable bool probs_valid_ = false;
};

}  // namespace mak::rl
