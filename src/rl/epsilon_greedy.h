// Epsilon-greedy bandit (ablation baseline for Exp3.1).
//
// Tracks empirical mean reward per arm; with probability epsilon explores
// uniformly, otherwise exploits the best empirical arm. Assumes stationary
// rewards — exactly the assumption the paper argues against — which is what
// makes it a useful ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

class EpsilonGreedy final : public BanditPolicy {
 public:
  EpsilonGreedy(std::size_t arms, double epsilon);

  std::size_t arm_count() const noexcept override { return means_.size(); }
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

 private:
  std::size_t best_arm() const noexcept;

  double epsilon_;
  std::vector<double> means_;
  std::vector<std::size_t> counts_;
};

}  // namespace mak::rl
