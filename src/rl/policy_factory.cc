#include "rl/policy_factory.h"

#include <stdexcept>

#include "rl/discounted_exp3.h"
#include "rl/dsee.h"
#include "rl/epsilon_greedy.h"
#include "rl/exp3.h"
#include "rl/thompson.h"
#include "rl/ucb.h"

namespace mak::rl {

namespace {

// Default hyperparameters, mirroring core::MakConfig.
constexpr double kDefaultGamma = 0.1;
constexpr double kDefaultEpsilon = 0.1;
constexpr double kDefaultDiscount = 0.99;
constexpr double kDefaultDseeWeight = 8.0;

// The catalog below is parsed by tools/check_docs.sh (check #4): one
// {"name", "summary"} entry per line, names must appear in
// docs/policies.md.
const PolicyInfo kPolicyCatalog[] = {
    {"exp3.1", "Exp3 with the doubling-epoch schedule (the paper's policy)"},
    {"exp3", "plain Exp3, fixed exploration rate gamma=0.1"},
    {"eps-greedy", "epsilon-greedy over empirical means, epsilon=0.1"},
    {"ucb1", "UCB1 optimism over confidence radii"},
    {"thompson", "Thompson sampling with Beta posteriors"},
    {"exp3-rotting", "discounted-gain Exp3 for rotting rewards, rho=0.99"},
    {"dsee", "deterministic sequencing of exploration and exploitation"},
};

}  // namespace

const std::vector<PolicyInfo>& policy_catalog() {
  static const std::vector<PolicyInfo> catalog(std::begin(kPolicyCatalog),
                                               std::end(kPolicyCatalog));
  return catalog;
}

std::string policy_names_joined() {
  std::string joined;
  for (const PolicyInfo& info : policy_catalog()) {
    if (!joined.empty()) joined += ", ";
    joined += info.name;
  }
  return joined;
}

std::unique_ptr<BanditPolicy> make_policy(std::string_view name,
                                          std::size_t arms) {
  if (name == "exp3.1") return std::make_unique<Exp31>(arms);
  if (name == "exp3") return std::make_unique<Exp3>(arms, kDefaultGamma);
  if (name == "eps-greedy") {
    return std::make_unique<EpsilonGreedy>(arms, kDefaultEpsilon);
  }
  if (name == "ucb1") return std::make_unique<Ucb1>(arms);
  if (name == "thompson") return std::make_unique<ThompsonSampling>(arms);
  if (name == "exp3-rotting") {
    return std::make_unique<DiscountedExp3>(arms, kDefaultGamma,
                                            kDefaultDiscount);
  }
  if (name == "dsee") return std::make_unique<Dsee>(arms, kDefaultDseeWeight);
  throw std::invalid_argument("unknown policy '" + std::string(name) +
                              "' (valid: " + policy_names_joined() + ")");
}

}  // namespace mak::rl
