// Exp3 and Exp3.1 for the adversarial multi-armed bandit problem
// (Auer, Cesa-Bianchi, Freund, Schapire — "The Nonstochastic Multiarmed
// Bandit Problem", SIAM J. Comput. 2002).
//
// Exp3.1 is Algorithm 1 of the MAK paper: it runs Exp3 in epochs with a
// per-epoch gain target g_m = (K ln K / (e-1)) 4^m and learning rate
// gamma_m = min(1, sqrt(K ln K / ((e-1) g_m))), resetting the arm weights at
// every epoch boundary. The weight resets let the policy track
// non-stationary (adversarial) reward distributions — the property the paper
// relies on for crawling modular web applications.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

// Plain Exp3 with a fixed exploration rate gamma in (0, 1].
class Exp3 final : public BanditPolicy {
 public:
  Exp3(std::size_t arms, double gamma);

  std::size_t arm_count() const noexcept override { return weights_.size(); }
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  double gamma() const noexcept { return gamma_; }

 private:
  const std::vector<double>& current_probabilities() const;

  double gamma_;
  std::vector<double> weights_;
  // Sampling distribution memoized between choose() and update(): the crawl
  // loop calls them back to back on unchanged weights, so the second
  // normalization pass (and its heap allocation) is pure waste. Invalidated
  // by every weight/gamma mutation.
  mutable std::vector<double> probs_;
  mutable bool probs_valid_ = false;
};

// Exp3.1: Exp3 with the doubling-epoch schedule (Algorithm 1 of the paper).
class Exp31 final : public BanditPolicy {
 public:
  explicit Exp31(std::size_t arms);

  std::size_t arm_count() const noexcept override { return weights_.size(); }
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  // Introspection (tests, benches).
  std::size_t epoch() const noexcept { return epoch_; }
  double gamma() const noexcept { return gamma_; }
  double gain_target() const noexcept { return gain_target_; }
  const std::vector<double>& estimated_gains() const noexcept {
    return gains_;
  }
  // Number of weight resets since construction (one per epoch entered,
  // including resets triggered by reset()). Lets tests assert that epoch
  // resets fire exactly when the gain target is exceeded.
  std::size_t weight_resets() const noexcept { return weight_resets_; }

 private:
  void configure_epoch(std::size_t m) noexcept;
  // Enter the first epoch whose termination condition does not already hold.
  void advance_epochs() noexcept;
  void renormalize_weights() noexcept;
  const std::vector<double>& current_probabilities() const;

  std::size_t epoch_ = 0;
  double gamma_ = 1.0;
  double gain_target_ = 0.0;
  std::size_t weight_resets_ = 0;
  std::vector<double> weights_;
  std::vector<double> gains_;  // \hat{G}_i — persists across epochs
  // See Exp3::probs_ — memoized sampling distribution, invalidated by every
  // weight/gamma mutation (updates, epoch entries, resets, state loads).
  mutable std::vector<double> probs_;
  mutable bool probs_valid_ = false;
};

}  // namespace mak::rl
