// DSEE: Deterministic Sequencing of Exploration and Exploitation
// (Vakili, Liu & Zhao, "Deterministic Sequencing of Exploration and
// Exploitation for Multi-Armed Bandit Problems", IEEE JSTSP 2013).
//
// The policy interleaves a deterministic exploration schedule with greedy
// exploitation: each arm must accumulate ceil(w * ln t) pulls; whenever
// some arm is behind that target the least-pulled arm is played (ties to
// the lowest index), otherwise the arm with the best empirical mean wins.
// choose() consumes NO randomness — the whole trajectory is a function of
// the observed rewards — which makes it the natural deterministic
// counterpoint to the Exp3 family in the drift benches.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

class Dsee final : public BanditPolicy {
 public:
  Dsee(std::size_t arms, double exploration_weight);

  std::size_t arm_count() const noexcept override { return counts_.size(); }
  // Deterministic: ignores `rng` and never advances its stream.
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  // Degenerate distribution: 1 on the arm choose() would return.
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  double exploration_weight() const noexcept { return exploration_weight_; }
  std::size_t steps() const noexcept { return steps_; }
  // Exploration target ceil(w * ln t) for the upcoming round.
  std::size_t exploration_target() const noexcept;
  const std::vector<std::size_t>& pull_counts() const noexcept {
    return counts_;
  }

 private:
  std::size_t pick() const noexcept;

  double exploration_weight_;
  std::vector<double> means_;
  std::vector<std::size_t> counts_;
  std::size_t steps_ = 0;
};

}  // namespace mak::rl
