#include "rl/regret.h"

#include <algorithm>
#include <stdexcept>

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

namespace mak::rl {

namespace {

// Importance weights are clamped so a pathological near-zero probability
// (possible only through float underflow) cannot blow the estimate up to
// infinity. Exp3-family policies keep p_i >= gamma/K >> this floor.
constexpr double kMinProbability = 1e-6;

struct RegretMetrics {
  support::Counter& updates;
  support::Gauge& realized_gain;
  support::Gauge& best_arm_gain;
  support::Gauge& weak;
  support::Gauge& cumulative;

  static RegretMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static RegretMetrics metrics{
        registry.counter(metric::kRegretUpdates),
        registry.gauge(metric::kRegretRealizedGain),
        registry.gauge(metric::kRegretBestArmGain),
        registry.gauge(metric::kRegretWeak),
        registry.gauge(metric::kRegretCumulative),
    };
    return metrics;
  }
};

}  // namespace

RegretAccountant::RegretAccountant(std::size_t arms) {
  if (arms == 0) throw std::invalid_argument("RegretAccountant: zero arms");
  gains_.assign(arms, 0.0);
}

void RegretAccountant::observe(std::size_t arm, double reward01,
                               const std::vector<double>& probs) {
  if (arm >= gains_.size()) {
    throw std::out_of_range("RegretAccountant: bad arm");
  }
  if (probs.size() != gains_.size()) {
    throw std::invalid_argument("RegretAccountant: probability size mismatch");
  }
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("RegretAccountant: reward must be in [0, 1]");
  }
  const double p = std::clamp(probs[arm], kMinProbability, 1.0);
  realized_gain_ += reward01;
  gains_[arm] += reward01 / p;
  ++updates_;
  const double weak = weak_regret();
  cumulative_regret_ = std::max(cumulative_regret_, weak);
  RegretMetrics& metrics = RegretMetrics::instance();
  metrics.updates.add();
  metrics.realized_gain.set(realized_gain_);
  metrics.best_arm_gain.set(best_arm_gain());
  metrics.weak.set(weak);
  metrics.cumulative.set(cumulative_regret_);
}

double RegretAccountant::best_arm_gain() const noexcept {
  return *std::max_element(gains_.begin(), gains_.end());
}

double RegretAccountant::weak_regret() const noexcept {
  return std::max(0.0, best_arm_gain() - realized_gain_);
}

void RegretAccountant::reset() {
  std::fill(gains_.begin(), gains_.end(), 0.0);
  realized_gain_ = 0.0;
  cumulative_regret_ = 0.0;
  updates_ = 0;
}

support::json::Value RegretAccountant::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.regret", 1);
  state.emplace("gains", snapshot::doubles_to_json(gains_));
  state.emplace("realized_gain", realized_gain_);
  state.emplace("cumulative_regret", cumulative_regret_);
  state.emplace("updates", static_cast<double>(updates_));
  return support::json::Value(std::move(state));
}

void RegretAccountant::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.regret", 1);
  auto gains =
      snapshot::doubles_from_json(snapshot::require(state, "gains"), "gains");
  if (gains.size() != gains_.size()) {
    throw support::SnapshotError(
        "RegretAccountant: arm count mismatch with checkpoint");
  }
  gains_ = std::move(gains);
  realized_gain_ = snapshot::require_number(state, "realized_gain");
  cumulative_regret_ = snapshot::require_number(state, "cumulative_regret");
  updates_ =
      static_cast<std::size_t>(snapshot::require_index(state, "updates"));
}

}  // namespace mak::rl
