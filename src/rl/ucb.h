// UCB1 (Auer, Cesa-Bianchi, Fischer 2002) — the classic *stochastic*
// multi-armed bandit policy.
//
// UCB1 assumes each arm's rewards are i.i.d. draws from a fixed
// distribution; its confidence bounds shrink permanently as an arm is
// sampled. In the crawling setting the reward distribution drifts as the
// frontier moves through the application (the paper's argument for the
// adversarial formulation), so UCB1 serves as the natural "wrong
// assumptions" baseline next to epsilon-greedy in the policy ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/bandit.h"

namespace mak::rl {

class Ucb1 final : public BanditPolicy {
 public:
  // exploration_scale multiplies the confidence radius (1.0 = textbook).
  explicit Ucb1(std::size_t arms, double exploration_scale = 1.0);

  std::size_t arm_count() const noexcept override { return means_.size(); }
  std::size_t choose(support::Rng& rng) override;
  void update(std::size_t arm, double reward01) override;
  std::vector<double> probabilities() const override;
  void reset() override;
  support::json::Value save_state() const override;
  void load_state(const support::json::Value& state) override;

  std::size_t pulls(std::size_t arm) const { return counts_.at(arm); }
  double mean(std::size_t arm) const { return means_.at(arm); }

 private:
  std::size_t best_upper_bound(support::Rng& rng) const;

  double exploration_scale_;
  std::vector<double> means_;
  std::vector<std::size_t> counts_;
  std::size_t total_pulls_ = 0;
};

}  // namespace mak::rl
