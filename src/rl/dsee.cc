#include "rl/dsee.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/snapshot.h"

namespace mak::rl {

Dsee::Dsee(std::size_t arms, double exploration_weight)
    : exploration_weight_(exploration_weight) {
  if (arms == 0) throw std::invalid_argument("Dsee: zero arms");
  if (!(exploration_weight > 0.0)) {
    throw std::invalid_argument("Dsee: exploration weight must be positive");
  }
  means_.assign(arms, 0.0);
  counts_.assign(arms, 0);
}

std::size_t Dsee::exploration_target() const noexcept {
  const double t = static_cast<double>(steps_ + 1);
  if (t < 2.0) return 1;
  return static_cast<std::size_t>(std::ceil(exploration_weight_ * std::log(t)));
}

std::size_t Dsee::pick() const noexcept {
  const std::size_t target = exploration_target();
  std::size_t least = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] < counts_[least]) least = i;
  }
  if (counts_[least] < target) return least;
  std::size_t best = 0;
  for (std::size_t i = 1; i < means_.size(); ++i) {
    if (means_[i] > means_[best]) best = i;
  }
  return best;
}

std::size_t Dsee::choose(support::Rng& rng) {
  (void)rng;  // deterministic sequencing: the RNG stream is untouched
  return pick();
}

void Dsee::update(std::size_t arm, double reward01) {
  if (arm >= counts_.size()) throw std::out_of_range("Dsee: bad arm");
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("Dsee: reward must be in [0, 1]");
  }
  ++counts_[arm];
  means_[arm] += (reward01 - means_[arm]) / static_cast<double>(counts_[arm]);
  ++steps_;
}

std::vector<double> Dsee::probabilities() const {
  std::vector<double> probs(counts_.size(), 0.0);
  probs[pick()] = 1.0;
  return probs;
}

void Dsee::reset() {
  std::fill(means_.begin(), means_.end(), 0.0);
  std::fill(counts_.begin(), counts_.end(), 0);
  steps_ = 0;
}

support::json::Value Dsee::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.dsee", 1);
  state.emplace("exploration_weight", exploration_weight_);
  state.emplace("means", snapshot::doubles_to_json(means_));
  state.emplace("counts", snapshot::indices_to_json(counts_));
  state.emplace("steps", static_cast<double>(steps_));
  return support::json::Value(std::move(state));
}

void Dsee::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.dsee", 1);
  if (snapshot::require_number(state, "exploration_weight") !=
      exploration_weight_) {
    throw support::SnapshotError(
        "Dsee: exploration weight mismatch with checkpoint");
  }
  auto means =
      snapshot::doubles_from_json(snapshot::require(state, "means"), "means");
  auto counts = snapshot::indices_from_json(snapshot::require(state, "counts"),
                                            "counts");
  if (means.size() != means_.size() || counts.size() != counts_.size()) {
    throw support::SnapshotError("Dsee: arm count mismatch with checkpoint");
  }
  means_ = std::move(means);
  counts_ = std::move(counts);
  steps_ = static_cast<std::size_t>(snapshot::require_index(state, "steps"));
}

}  // namespace mak::rl
