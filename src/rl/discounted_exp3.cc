#include "rl/discounted_exp3.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/snapshot.h"

namespace mak::rl {

DiscountedExp3::DiscountedExp3(std::size_t arms, double gamma, double discount)
    : gamma_(gamma), discount_(discount) {
  if (arms == 0) throw std::invalid_argument("DiscountedExp3: zero arms");
  if (!(gamma > 0.0 && gamma <= 1.0)) {
    throw std::invalid_argument("DiscountedExp3: gamma must be in (0, 1]");
  }
  if (!(discount > 0.0 && discount <= 1.0)) {
    throw std::invalid_argument("DiscountedExp3: discount must be in (0, 1]");
  }
  gains_.assign(arms, 0.0);
}

const std::vector<double>& DiscountedExp3::current_probabilities() const {
  if (!probs_valid_) {
    // p_i = (1 - gamma) softmax(eta * G_i) + gamma / K with eta = gamma / K,
    // the Exp3 exponent applied to the discounted gain sum. Max-subtraction
    // keeps exp() in range without changing the distribution.
    const std::size_t k = gains_.size();
    const double eta = gamma_ / static_cast<double>(k);
    const double max_gain = *std::max_element(gains_.begin(), gains_.end());
    probs_.resize(k);
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      probs_[i] = std::exp(eta * (gains_[i] - max_gain));
      total += probs_[i];
    }
    for (std::size_t i = 0; i < k; ++i) {
      probs_[i] = (1.0 - gamma_) * (probs_[i] / total) +
                  gamma_ / static_cast<double>(k);
    }
    probs_valid_ = true;
  }
  return probs_;
}

std::size_t DiscountedExp3::choose(support::Rng& rng) {
  return rng.weighted_index(current_probabilities());
}

void DiscountedExp3::update(std::size_t arm, double reward01) {
  if (arm >= gains_.size()) {
    throw std::out_of_range("DiscountedExp3: bad arm");
  }
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("DiscountedExp3: reward must be in [0, 1]");
  }
  const std::vector<double>& probs = current_probabilities();
  const double estimated = reward01 / probs[arm];
  gains_[arm] += estimated;
  // The rotting twist: every arm's estimate decays, so evidence from before
  // a drift event fades instead of anchoring the distribution forever.
  for (double& g : gains_) g *= discount_;
  ++steps_;
  probs_valid_ = false;
}

std::vector<double> DiscountedExp3::probabilities() const {
  return current_probabilities();
}

void DiscountedExp3::reset() {
  std::fill(gains_.begin(), gains_.end(), 0.0);
  steps_ = 0;
  probs_valid_ = false;
}

support::json::Value DiscountedExp3::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.exp3_discounted", 1);
  state.emplace("gamma", gamma_);
  state.emplace("discount", discount_);
  state.emplace("gains", snapshot::doubles_to_json(gains_));
  state.emplace("steps", static_cast<double>(steps_));
  return support::json::Value(std::move(state));
}

void DiscountedExp3::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.exp3_discounted", 1);
  if (snapshot::require_number(state, "gamma") != gamma_) {
    throw support::SnapshotError(
        "DiscountedExp3: gamma mismatch with checkpoint");
  }
  if (snapshot::require_number(state, "discount") != discount_) {
    throw support::SnapshotError(
        "DiscountedExp3: discount mismatch with checkpoint");
  }
  auto gains =
      snapshot::doubles_from_json(snapshot::require(state, "gains"), "gains");
  if (gains.size() != gains_.size()) {
    throw support::SnapshotError(
        "DiscountedExp3: arm count mismatch with checkpoint");
  }
  gains_ = std::move(gains);
  steps_ = static_cast<std::size_t>(snapshot::require_index(state, "steps"));
  probs_valid_ = false;
}

}  // namespace mak::rl
