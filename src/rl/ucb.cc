#include "rl/ucb.h"

#include <cmath>
#include <stdexcept>

#include "support/snapshot.h"

namespace mak::rl {

Ucb1::Ucb1(std::size_t arms, double exploration_scale)
    : exploration_scale_(exploration_scale) {
  if (arms == 0) throw std::invalid_argument("Ucb1: zero arms");
  if (exploration_scale <= 0.0) {
    throw std::invalid_argument("Ucb1: non-positive exploration scale");
  }
  means_.assign(arms, 0.0);
  counts_.assign(arms, 0);
}

std::size_t Ucb1::best_upper_bound(support::Rng& rng) const {
  // Unpulled arms first (infinite bound), ties at random.
  std::size_t chosen = means_.size();
  std::size_t unpulled_ties = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      ++unpulled_ties;
      if (rng.next_below(unpulled_ties) == 0) chosen = i;
    }
  }
  if (chosen != means_.size()) return chosen;

  double best = -1e300;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double radius =
        exploration_scale_ *
        std::sqrt(2.0 * std::log(static_cast<double>(total_pulls_)) /
                  static_cast<double>(counts_[i]));
    const double bound = means_[i] + radius;
    if (bound > best) {
      best = bound;
      chosen = i;
    }
  }
  return chosen;
}

std::size_t Ucb1::choose(support::Rng& rng) { return best_upper_bound(rng); }

void Ucb1::update(std::size_t arm, double reward01) {
  if (arm >= means_.size()) throw std::out_of_range("Ucb1: bad arm");
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("Ucb1: reward must be in [0, 1]");
  }
  ++total_pulls_;
  ++counts_[arm];
  means_[arm] +=
      (reward01 - means_[arm]) / static_cast<double>(counts_[arm]);
}

std::vector<double> Ucb1::probabilities() const {
  // While unpulled arms remain, choose() picks among them uniformly at
  // random — report exactly that distribution, so an importance-weighted
  // observer (rl::RegretAccountant) never sees the pulled arm at
  // probability 0. Past that phase UCB1 is deterministic given history:
  // a point mass on the arm choose() would pick.
  std::vector<double> probs(means_.size(), 0.0);
  std::size_t unpulled = 0;
  for (std::size_t count : counts_) {
    if (count == 0) ++unpulled;
  }
  if (unpulled > 0) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) {
        probs[i] = 1.0 / static_cast<double>(unpulled);
      }
    }
    return probs;
  }
  support::Rng rng(0);
  probs[best_upper_bound(rng)] = 1.0;
  return probs;
}

void Ucb1::reset() {
  std::fill(means_.begin(), means_.end(), 0.0);
  std::fill(counts_.begin(), counts_.end(), 0);
  total_pulls_ = 0;
}

support::json::Value Ucb1::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.ucb1", 1);
  state.emplace("exploration_scale", exploration_scale_);
  state.emplace("means", snapshot::doubles_to_json(means_));
  state.emplace("counts", snapshot::indices_to_json(counts_));
  state.emplace("total_pulls", static_cast<double>(total_pulls_));
  return support::json::Value(std::move(state));
}

void Ucb1::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.ucb1", 1);
  if (snapshot::require_number(state, "exploration_scale") !=
      exploration_scale_) {
    throw support::SnapshotError(
        "Ucb1: exploration scale mismatch with checkpoint");
  }
  auto means =
      snapshot::doubles_from_json(snapshot::require(state, "means"), "means");
  auto counts = snapshot::indices_from_json(snapshot::require(state, "counts"),
                                            "counts");
  if (means.size() != means_.size() || counts.size() != counts_.size()) {
    throw support::SnapshotError("Ucb1: arm count mismatch with checkpoint");
  }
  means_ = std::move(means);
  counts_ = std::move(counts);
  total_pulls_ = static_cast<std::size_t>(
      snapshot::require_index(state, "total_pulls"));
}

}  // namespace mak::rl
