// Tabular Q-learning over dynamically discovered states with per-state
// action sets — the machinery behind the WebExplor and QExplore baselines.
//
// States are opaque 64-bit ids produced by the crawlers' state abstractions.
// Each state has its own action list (the interactables visible on the
// page), so the table stores a vector of Q-values per state, grown on
// demand and initialized to `initial_q`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/rng.h"

namespace mak::rl {

using StateId = std::uint64_t;

struct QLearningConfig {
  double alpha = 0.5;      // learning rate
  double gamma = 0.6;      // discount factor
  double initial_q = 3.0;  // optimistic: above r_max/(1-gamma), so unseen beats tried
};

class QTable {
 public:
  explicit QTable(QLearningConfig config = {}) : config_(config) {}

  const QLearningConfig& config() const noexcept { return config_; }

  // Ensure `state` exists with at least `action_count` actions.
  void touch(StateId state, std::size_t action_count);

  bool knows(StateId state) const noexcept;
  std::size_t state_count() const noexcept { return table_.size(); }
  std::size_t action_count(StateId state) const;

  double q(StateId state, std::size_t action) const;
  void set_q(StateId state, std::size_t action, double value);

  // Max over the state's actions (initial_q if the state is unknown/empty:
  // an unseen state is worth exploring).
  double max_q(StateId state) const;

  // Standard Bellman update:
  //   Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a))
  void bellman_update(StateId s, std::size_t a, double reward, StateId s_next);

  // QExplore-style modified update: the future-value term is scaled by an
  // action-richness factor in [0, 1) that grows with the number of actions
  // available in the successor state, steering the crawler toward
  // action-rich pages while keeping the contraction property of the
  // Bellman operator (gamma * richness < 1):
  //   richness = |A(s')| / (|A(s')| + 5)
  //   Q(s,a) += alpha * (r + gamma * richness * max Q(s') - Q(s,a))
  void action_guided_update(StateId s, std::size_t a, double reward,
                            StateId s_next, std::size_t next_action_count);

  // Index of the highest-Q action, ties broken uniformly at random (with
  // optimistic initialization every unseen action ties at initial_q, so the
  // tie-break IS the exploration mechanism). `action_count` must be > 0.
  std::size_t argmax_action(StateId state, std::size_t action_count,
                            support::Rng& rng);

 private:
  std::vector<double>& row(StateId state, std::size_t action_count);

  QLearningConfig config_;
  std::unordered_map<StateId, std::vector<double>> table_;
};

// Gumbel-softmax action selection over a state's Q-values (WebExplor's
// CHOOSE_ACTION): sample G_i ~ Gumbel(0,1), pick argmax_i (Q_i + tau * G_i).
// Equivalent to sampling from softmax(Q / tau).
std::size_t gumbel_softmax_choice(const std::vector<double>& q_values,
                                  double temperature, support::Rng& rng);

}  // namespace mak::rl
