// Reward shaping for the crawlers.
//
// MAK (Section IV-C): the reward for a step is the increment in link
// coverage, standardized against the running history of increments
// ((r_t - mean_t) / std_t) and squashed into [0, 1] with the logistic
// function, as Exp3.1 requires bounded rewards.
//
// WebExplor/QExplore (Section III-B): curiosity — count how often each
// state-action (or element) has been executed and reward rarity.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "support/json.h"
#include "support/stats.h"

namespace mak::rl {

// Standardized-increment reward with logistic normalization.
class StandardizedReward {
 public:
  // Feed the raw increment (e.g. newly discovered links this step); returns
  // the shaped reward in [0, 1].
  double shape(double raw_increment) noexcept;

  std::size_t observations() const noexcept { return history_.count(); }
  double mean() const noexcept { return history_.mean(); }
  double stddev() const noexcept { return history_.stddev(); }

  void reset() noexcept { history_.reset(); }

  // Checkpointing: the full increment history accumulator.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  support::RunningStats history_;
};

// Count-based curiosity: reward(key) = 1 / sqrt(times key was executed).
// First execution yields 1; repeats decay toward zero regardless of their
// server-side effect — the short-sightedness the paper criticizes.
class CuriosityReward {
 public:
  // Record an execution of `key` and return its curiosity reward.
  double visit(std::uint64_t key);

  std::size_t count(std::uint64_t key) const noexcept;
  std::size_t distinct_keys() const noexcept { return counts_.size(); }

  void reset() { counts_.clear(); }

  // Checkpointing: the visit-count table as [hex key, count] pairs.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  std::unordered_map<std::uint64_t, std::size_t> counts_;
};

}  // namespace mak::rl
