#include "rl/exp3.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

namespace mak::rl {

namespace {

// Exp3.1 policy internals (Algorithm 1 of the paper / Auer et al. 2002).
// Gauges reflect the most recent update across all live policies; with one
// profiled run (the intended consumer) that is the run's policy state.
struct Exp31Metrics {
  support::Counter& updates;
  support::Counter& weight_resets;
  support::Gauge& epoch;
  support::Gauge& gamma;
  // Pre-update sampling probabilities of the first three arms — for MAK
  // these are exactly Head, Tail and Random.
  std::array<support::Gauge*, 3> arm_probability;

  static Exp31Metrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static Exp31Metrics metrics{
        registry.counter(metric::kExp31Updates),
        registry.counter(metric::kExp31WeightResets),
        registry.gauge(metric::kExp31Epoch),
        registry.gauge(metric::kExp31Gamma),
        {&registry.gauge(metric::kExp31ProbArm0),
         &registry.gauge(metric::kExp31ProbArm1),
         &registry.gauge(metric::kExp31ProbArm2)},
    };
    return metrics;
  }
};

void check_reward(double reward01) {
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("Exp3: reward must be in [0, 1]");
  }
}

// Fill `probs` with the Exp3 sampling distribution. The summation loop and
// the per-arm expression are the historical ones verbatim: any reordering
// would change double rounding, hence arm draws, hence every downstream
// result.
void exp3_probabilities_into(const std::vector<double>& weights, double gamma,
                             std::vector<double>& probs) {
  const std::size_t k = weights.size();
  double total = 0.0;
  for (double w : weights) total += w;
  probs.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    probs[i] = (1.0 - gamma) * (weights[i] / total) +
               gamma / static_cast<double>(k);
  }
}

}  // namespace

// ------------------------------------------------------------------- Exp3

Exp3::Exp3(std::size_t arms, double gamma) : gamma_(gamma) {
  if (arms == 0) throw std::invalid_argument("Exp3: zero arms");
  if (!(gamma > 0.0 && gamma <= 1.0)) {
    throw std::invalid_argument("Exp3: gamma must be in (0, 1]");
  }
  weights_.assign(arms, 1.0);
}

const std::vector<double>& Exp3::current_probabilities() const {
  if (!probs_valid_) {
    exp3_probabilities_into(weights_, gamma_, probs_);
    probs_valid_ = true;
  }
  return probs_;
}

std::size_t Exp3::choose(support::Rng& rng) {
  return rng.weighted_index(current_probabilities());
}

void Exp3::update(std::size_t arm, double reward01) {
  if (arm >= weights_.size()) throw std::out_of_range("Exp3: bad arm");
  check_reward(reward01);
  static support::Counter& updates = support::MetricsRegistry::global()
                                         .counter(
                                             support::metric::kExp3Updates);
  updates.add();
  const std::vector<double>& probs = current_probabilities();
  const double estimated = reward01 / probs[arm];
  weights_[arm] *=
      std::exp(gamma_ * estimated / static_cast<double>(weights_.size()));
  probs_valid_ = false;
  // Keep weights bounded (scaling all weights leaves the policy unchanged).
  const double max_w = *std::max_element(weights_.begin(), weights_.end());
  if (max_w > 1e100) {
    for (double& w : weights_) w /= max_w;
  }
}

std::vector<double> Exp3::probabilities() const {
  return current_probabilities();
}

void Exp3::reset() {
  std::fill(weights_.begin(), weights_.end(), 1.0);
  probs_valid_ = false;
}

support::json::Value Exp3::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.exp3", 1);
  state.emplace("gamma", gamma_);
  state.emplace("weights", snapshot::doubles_to_json(weights_));
  return support::json::Value(std::move(state));
}

void Exp3::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.exp3", 1);
  if (snapshot::require_number(state, "gamma") != gamma_) {
    throw support::SnapshotError("Exp3: gamma mismatch with checkpoint");
  }
  auto weights = snapshot::doubles_from_json(
      snapshot::require(state, "weights"), "weights");
  if (weights.size() != weights_.size()) {
    throw support::SnapshotError("Exp3: arm count mismatch with checkpoint");
  }
  weights_ = std::move(weights);
  probs_valid_ = false;
}

// ------------------------------------------------------------------ Exp3.1

Exp31::Exp31(std::size_t arms) {
  if (arms == 0) throw std::invalid_argument("Exp31: zero arms");
  weights_.assign(arms, 1.0);
  gains_.assign(arms, 0.0);
  configure_epoch(0);
  advance_epochs();
}

void Exp31::configure_epoch(std::size_t m) noexcept {
  epoch_ = m;
  const double k = static_cast<double>(weights_.size());
  const double k_ln_k = k * std::log(k);
  // g_m = (K ln K / (e - 1)) * 4^m        (Algorithm 1, line 6)
  gain_target_ =
      k_ln_k / (std::numbers::e - 1.0) * std::pow(4.0, static_cast<double>(m));
  // gamma_m = min(1, sqrt(K ln K / ((e - 1) g_m)))   (line 7)
  gamma_ = std::min(
      1.0, std::sqrt(k_ln_k / ((std::numbers::e - 1.0) * gain_target_)));
  std::fill(weights_.begin(), weights_.end(), 1.0);  // line 8
  probs_valid_ = false;
  ++weight_resets_;
  Exp31Metrics& metrics = Exp31Metrics::instance();
  metrics.weight_resets.add();
  metrics.epoch.set(static_cast<double>(epoch_));
  metrics.gamma.set(gamma_);
}

void Exp31::advance_epochs() noexcept {
  // Line 9: the epoch runs while max_i G_i <= g_m - K/gamma_m. If the bound
  // already fails (as it does for small m, where g_m - K/gamma_m < 0), move
  // to the next epoch.
  const double k = static_cast<double>(weights_.size());
  for (;;) {
    const double max_gain = *std::max_element(gains_.begin(), gains_.end());
    if (max_gain <= gain_target_ - k / gamma_) return;
    configure_epoch(epoch_ + 1);
  }
}

const std::vector<double>& Exp31::current_probabilities() const {
  if (!probs_valid_) {
    exp3_probabilities_into(weights_, gamma_, probs_);
    probs_valid_ = true;
  }
  return probs_;
}

std::size_t Exp31::choose(support::Rng& rng) {
  return rng.weighted_index(current_probabilities());
}

void Exp31::update(std::size_t arm, double reward01) {
  if (arm >= weights_.size()) throw std::out_of_range("Exp31: bad arm");
  check_reward(reward01);
  const std::size_t k = weights_.size();
  const std::vector<double>& probs = current_probabilities();
  {
    Exp31Metrics& metrics = Exp31Metrics::instance();
    metrics.updates.add();
    for (std::size_t i = 0; i < metrics.arm_probability.size() && i < k; ++i) {
      metrics.arm_probability[i]->set(probs[i]);
    }
  }
  // Lines 13-15: importance-weighted reward estimate, weight update, gain
  // accumulation (only the chosen arm has a non-zero estimate).
  const double estimated = reward01 / probs[arm];
  weights_[arm] *= std::exp(gamma_ * estimated / static_cast<double>(k));
  probs_valid_ = false;
  gains_[arm] += estimated;
  renormalize_weights();
  advance_epochs();
}

void Exp31::renormalize_weights() noexcept {
  const double max_w = *std::max_element(weights_.begin(), weights_.end());
  if (max_w > 1e100) {
    for (double& w : weights_) w /= max_w;
    probs_valid_ = false;
  }
}

std::vector<double> Exp31::probabilities() const {
  return current_probabilities();
}

void Exp31::reset() {
  std::fill(gains_.begin(), gains_.end(), 0.0);
  configure_epoch(0);
  advance_epochs();
}

support::json::Value Exp31::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.exp31", 1);
  state.emplace("epoch", static_cast<double>(epoch_));
  // gamma and gain_target are functions of epoch, but serialize them anyway:
  // restoring by assignment (not configure_epoch) avoids the weight reset
  // and metric side effects the epoch-entry path performs.
  state.emplace("gamma", gamma_);
  state.emplace("gain_target", gain_target_);
  state.emplace("weight_resets", static_cast<double>(weight_resets_));
  state.emplace("weights", snapshot::doubles_to_json(weights_));
  state.emplace("gains", snapshot::doubles_to_json(gains_));
  return support::json::Value(std::move(state));
}

void Exp31::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.exp31", 1);
  auto weights = snapshot::doubles_from_json(
      snapshot::require(state, "weights"), "weights");
  auto gains =
      snapshot::doubles_from_json(snapshot::require(state, "gains"), "gains");
  if (weights.size() != weights_.size() || gains.size() != gains_.size()) {
    throw support::SnapshotError("Exp31: arm count mismatch with checkpoint");
  }
  const double gamma = snapshot::require_number(state, "gamma");
  if (!(gamma > 0.0 && gamma <= 1.0)) {
    throw support::SnapshotError("Exp31: gamma out of range in checkpoint");
  }
  epoch_ = static_cast<std::size_t>(snapshot::require_index(state, "epoch"));
  gamma_ = gamma;
  gain_target_ = snapshot::require_number(state, "gain_target");
  weight_resets_ = static_cast<std::size_t>(
      snapshot::require_index(state, "weight_resets"));
  weights_ = std::move(weights);
  gains_ = std::move(gains);
  probs_valid_ = false;
}

}  // namespace mak::rl
