#include "rl/qlearning.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mak::rl {

void QTable::touch(StateId state, std::size_t action_count) {
  row(state, action_count);
}

bool QTable::knows(StateId state) const noexcept {
  return table_.find(state) != table_.end();
}

std::size_t QTable::action_count(StateId state) const {
  const auto it = table_.find(state);
  return it != table_.end() ? it->second.size() : 0;
}

std::vector<double>& QTable::row(StateId state, std::size_t action_count) {
  auto& values = table_[state];
  if (values.size() < action_count) {
    values.resize(action_count, config_.initial_q);
  }
  return values;
}

double QTable::q(StateId state, std::size_t action) const {
  const auto it = table_.find(state);
  if (it == table_.end() || action >= it->second.size()) {
    return config_.initial_q;
  }
  return it->second[action];
}

void QTable::set_q(StateId state, std::size_t action, double value) {
  row(state, action + 1)[action] = value;
}

double QTable::max_q(StateId state) const {
  const auto it = table_.find(state);
  if (it == table_.end() || it->second.empty()) return config_.initial_q;
  return *std::max_element(it->second.begin(), it->second.end());
}

void QTable::bellman_update(StateId s, std::size_t a, double reward,
                            StateId s_next) {
  auto& values = row(s, a + 1);
  const double target = reward + config_.gamma * max_q(s_next);
  values[a] += config_.alpha * (target - values[a]);
}

void QTable::action_guided_update(StateId s, std::size_t a, double reward,
                                  StateId s_next,
                                  std::size_t next_action_count) {
  auto& values = row(s, a + 1);
  const double n = static_cast<double>(next_action_count);
  const double richness = n / (n + 5.0);
  const double target = reward + config_.gamma * richness * max_q(s_next);
  values[a] += config_.alpha * (target - values[a]);
}

std::size_t QTable::argmax_action(StateId state, std::size_t action_count,
                                  support::Rng& rng) {
  if (action_count == 0) {
    throw std::invalid_argument("QTable::argmax_action: no actions");
  }
  const auto& values = row(state, action_count);
  double best = values[0];
  for (std::size_t i = 1; i < action_count; ++i) {
    best = std::max(best, values[i]);
  }
  // Reservoir-style uniform pick among the (near-)ties.
  constexpr double kTieEpsilon = 1e-12;
  std::size_t chosen = 0;
  std::size_t ties = 0;
  for (std::size_t i = 0; i < action_count; ++i) {
    if (values[i] >= best - kTieEpsilon) {
      ++ties;
      if (rng.next_below(ties) == 0) chosen = i;
    }
  }
  return chosen;
}

std::size_t gumbel_softmax_choice(const std::vector<double>& q_values,
                                  double temperature, support::Rng& rng) {
  if (q_values.empty()) {
    throw std::invalid_argument("gumbel_softmax_choice: no actions");
  }
  if (temperature <= 0.0) {
    throw std::invalid_argument("gumbel_softmax_choice: temperature <= 0");
  }
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t i = 0; i < q_values.size(); ++i) {
    double u = rng.uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    const double gumbel = -std::log(-std::log(u));
    const double score = q_values[i] + temperature * gumbel;
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace mak::rl
