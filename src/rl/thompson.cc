#include "rl/thompson.h"

#include <cmath>
#include <stdexcept>

#include "support/snapshot.h"

namespace mak::rl {

ThompsonSampling::ThompsonSampling(std::size_t arms) {
  if (arms == 0) throw std::invalid_argument("ThompsonSampling: zero arms");
  alpha_.assign(arms, 1.0);
  beta_.assign(arms, 1.0);
}

double ThompsonSampling::sample_gamma(double shape, support::Rng& rng) {
  // Marsaglia-Tsang for shape >= 1; boost smaller shapes via the
  // Gamma(shape) = Gamma(shape+1) * U^(1/shape) identity.
  if (shape < 1.0) {
    const double u = std::max(rng.uniform01(), 0x1.0p-53);
    return sample_gamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 0x1.0p-53)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double ThompsonSampling::sample_beta(double a, double b, support::Rng& rng) {
  const double x = sample_gamma(a, rng);
  const double y = sample_gamma(b, rng);
  return x / (x + y);
}

std::size_t ThompsonSampling::choose(support::Rng& rng) {
  std::size_t best = 0;
  double best_draw = -1.0;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    const double draw = sample_beta(alpha_[i], beta_[i], rng);
    if (draw > best_draw) {
      best_draw = draw;
      best = i;
    }
  }
  return best;
}

void ThompsonSampling::update(std::size_t arm, double reward01) {
  if (arm >= alpha_.size()) {
    throw std::out_of_range("ThompsonSampling: bad arm");
  }
  if (!(reward01 >= 0.0 && reward01 <= 1.0)) {
    throw std::invalid_argument("ThompsonSampling: reward must be in [0, 1]");
  }
  // Fractional Bernoulli update: credit reward01 success mass and
  // (1 - reward01) failure mass (equivalent in expectation to the
  // probabilistic coin-flip trick, but deterministic).
  alpha_[arm] += reward01;
  beta_[arm] += 1.0 - reward01;
}

double ThompsonSampling::posterior_mean(std::size_t arm) const {
  return alpha_.at(arm) / (alpha_.at(arm) + beta_.at(arm));
}

std::vector<double> ThompsonSampling::probabilities() const {
  // Monte-Carlo estimate of P(arm is the argmax draw) with a fixed scratch
  // stream. Laplace-smoothed: every arm has nonzero posterior probability
  // of winning, so an importance-weighted observer (rl::RegretAccountant)
  // must never see a pulled arm reported at exactly 0.
  constexpr int kSamples = 512;
  support::Rng rng(0xbe7a);
  std::vector<std::size_t> wins(alpha_.size(), 0);
  for (int s = 0; s < kSamples; ++s) {
    std::size_t best = 0;
    double best_draw = -1.0;
    for (std::size_t i = 0; i < alpha_.size(); ++i) {
      const double draw = sample_beta(alpha_[i], beta_[i], rng);
      if (draw > best_draw) {
        best_draw = draw;
        best = i;
      }
    }
    ++wins[best];
  }
  std::vector<double> probs(alpha_.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = (static_cast<double>(wins[i]) + 1.0) /
               (kSamples + static_cast<double>(alpha_.size()));
  }
  return probs;
}

void ThompsonSampling::reset() {
  std::fill(alpha_.begin(), alpha_.end(), 1.0);
  std::fill(beta_.begin(), beta_.end(), 1.0);
}

support::json::Value ThompsonSampling::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.thompson", 1);
  state.emplace("alpha", snapshot::doubles_to_json(alpha_));
  state.emplace("beta", snapshot::doubles_to_json(beta_));
  return support::json::Value(std::move(state));
}

void ThompsonSampling::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.thompson", 1);
  auto alpha =
      snapshot::doubles_from_json(snapshot::require(state, "alpha"), "alpha");
  auto beta =
      snapshot::doubles_from_json(snapshot::require(state, "beta"), "beta");
  if (alpha.size() != alpha_.size() || beta.size() != beta_.size()) {
    throw support::SnapshotError(
        "ThompsonSampling: arm count mismatch with checkpoint");
  }
  alpha_ = std::move(alpha);
  beta_ = std::move(beta);
}

}  // namespace mak::rl
