#include "rl/reward.h"

#include <cmath>

#include <algorithm>

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

namespace mak::rl {

double StandardizedReward::shape(double raw_increment) noexcept {
  history_.add(raw_increment);
  const double sigma = history_.stddev();
  double standardized;
  if (sigma > 0.0) {
    standardized = (raw_increment - history_.mean()) / sigma;
  } else {
    // Degenerate history (all increments identical so far, including the
    // very first step): a positive increment is good news, zero is neutral.
    standardized = raw_increment > 0.0 ? 1.0 : 0.0;
  }
  const double shaped = support::logistic(standardized);
  {
    // Section IV-C standardization state, observable per step.
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static support::Counter& observations =
        registry.counter(metric::kRewardObservations);
    static support::Gauge& mean = registry.gauge(metric::kRewardMean);
    static support::Gauge& stddev = registry.gauge(metric::kRewardStddev);
    static support::Histogram& shaped_hist = registry.histogram(
        metric::kRewardShaped, support::unit_interval_bounds());
    observations.add();
    mean.set(history_.mean());
    stddev.set(history_.stddev());
    shaped_hist.record(shaped);
  }
  return shaped;
}

double CuriosityReward::visit(std::uint64_t key) {
  const std::size_t n = ++counts_[key];
  return 1.0 / std::sqrt(static_cast<double>(n));
}

std::size_t CuriosityReward::count(std::uint64_t key) const noexcept {
  const auto it = counts_.find(key);
  return it != counts_.end() ? it->second : 0;
}

support::json::Value StandardizedReward::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.reward.standardized", 1);
  state.emplace("history", snapshot::stats_to_json(history_));
  return support::json::Value(std::move(state));
}

void StandardizedReward::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.reward.standardized", 1);
  snapshot::stats_from_json(history_, snapshot::require(state, "history"));
}

support::json::Value CuriosityReward::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("rl.reward.curiosity", 1);
  // Sort by key so equal states serialize to equal bytes regardless of the
  // hash table's insertion history.
  std::vector<std::pair<std::uint64_t, std::size_t>> entries(counts_.begin(),
                                                             counts_.end());
  std::sort(entries.begin(), entries.end());
  support::json::Array counts;
  counts.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    support::json::Array pair;
    pair.emplace_back(snapshot::u64_to_hex(key));
    pair.emplace_back(static_cast<double>(count));
    counts.emplace_back(std::move(pair));
  }
  state.emplace("counts", support::json::Value(std::move(counts)));
  return support::json::Value(std::move(state));
}

void CuriosityReward::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "rl.reward.curiosity", 1);
  const auto& counts = snapshot::require_array(state, "counts");
  std::unordered_map<std::uint64_t, std::size_t> loaded;
  loaded.reserve(counts.size());
  for (const auto& entry : counts) {
    if (!entry.is_array() || entry.as_array().size() != 2 ||
        !entry.as_array()[0].is_string() ||
        !entry.as_array()[1].is_number()) {
      throw support::SnapshotError(
          "CuriosityReward: counts entries must be [hex key, count] pairs");
    }
    const std::uint64_t key =
        snapshot::hex_to_u64(entry.as_array()[0].as_string());
    const double count = entry.as_array()[1].as_number();
    if (!(count >= 0.0) || count != std::floor(count) || count >= 0x1p53) {
      throw support::SnapshotError("CuriosityReward: bad visit count");
    }
    loaded[key] = static_cast<std::size_t>(count);
  }
  counts_ = std::move(loaded);
}

}  // namespace mak::rl
