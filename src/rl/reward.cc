#include "rl/reward.h"

#include <cmath>

#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::rl {

double StandardizedReward::shape(double raw_increment) noexcept {
  history_.add(raw_increment);
  const double sigma = history_.stddev();
  double standardized;
  if (sigma > 0.0) {
    standardized = (raw_increment - history_.mean()) / sigma;
  } else {
    // Degenerate history (all increments identical so far, including the
    // very first step): a positive increment is good news, zero is neutral.
    standardized = raw_increment > 0.0 ? 1.0 : 0.0;
  }
  const double shaped = support::logistic(standardized);
  {
    // Section IV-C standardization state, observable per step.
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static support::Counter& observations =
        registry.counter(metric::kRewardObservations);
    static support::Gauge& mean = registry.gauge(metric::kRewardMean);
    static support::Gauge& stddev = registry.gauge(metric::kRewardStddev);
    static support::Histogram& shaped_hist = registry.histogram(
        metric::kRewardShaped, support::unit_interval_bounds());
    observations.add();
    mean.set(history_.mean());
    stddev.set(history_.stddev());
    shaped_hist.record(shaped);
  }
  return shaped;
}

double CuriosityReward::visit(std::uint64_t key) {
  const std::size_t n = ++counts_[key];
  return 1.0 / std::sqrt(static_cast<double>(n));
}

std::size_t CuriosityReward::count(std::uint64_t key) const noexcept {
  const auto it = counts_.find(key);
  return it != counts_.end() ? it->second : 0;
}

}  // namespace mak::rl
