#include "rl/reward.h"

#include <cmath>

namespace mak::rl {

double StandardizedReward::shape(double raw_increment) noexcept {
  history_.add(raw_increment);
  const double sigma = history_.stddev();
  double standardized;
  if (sigma > 0.0) {
    standardized = (raw_increment - history_.mean()) / sigma;
  } else {
    // Degenerate history (all increments identical so far, including the
    // very first step): a positive increment is good news, zero is neutral.
    standardized = raw_increment > 0.0 ? 1.0 : 0.0;
  }
  return support::logistic(standardized);
}

double CuriosityReward::visit(std::uint64_t key) {
  const std::size_t n = ++counts_[key];
  return 1.0 / std::sqrt(static_cast<double>(n));
}

std::size_t CuriosityReward::count(std::uint64_t key) const noexcept {
  const auto it = counts_.find(key);
  return it != counts_.end() ? it->second : 0;
}

}  // namespace mak::rl
