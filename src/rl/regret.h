// Cumulative-regret accounting for bandit policies (docs/policies.md).
//
// Weak regret in the adversarial formulation of Bubeck & Cesa-Bianchi
// ("Regret Analysis of Stochastic and Nonstochastic Multi-armed Bandit
// Problems", 2012, §3): the gap between the total gain of the single best
// arm in hindsight and the gain the policy actually realized,
//
//   R_T = max_i G_i(T) - sum_t x_t .
//
// The crawler only observes the reward of the arm it pulled, so per-arm
// gains are estimated with the standard importance-weighted estimator
// \hat{G}_i += x_t / p_i(t) for the pulled arm — exactly the quantity
// Exp3-family policies bound their regret against. The accountant is an
// observer: it never samples randomness, never touches the policy, and its
// removal changes no crawl behaviour.
#pragma once

#include <cstddef>
#include <vector>

#include "support/json.h"

namespace mak::rl {

class RegretAccountant {
 public:
  explicit RegretAccountant(std::size_t arms);

  // Record one policy step: `arm` was pulled with the pre-update sampling
  // distribution `probs` (from BanditPolicy::probabilities()) and returned
  // reward01 in [0, 1]. Updates the metrics registry gauges.
  void observe(std::size_t arm, double reward01,
               const std::vector<double>& probs);

  std::size_t arm_count() const noexcept { return gains_.size(); }
  std::size_t updates() const noexcept { return updates_; }
  // Total reward the policy actually collected: sum_t x_t.
  double realized_gain() const noexcept { return realized_gain_; }
  // Importance-weighted gain estimate of the best single arm in hindsight.
  double best_arm_gain() const noexcept;
  // Current weak regret, clamped at 0 (the estimator is noisy early on).
  double weak_regret() const noexcept;
  // High-water mark of weak_regret(): monotone non-decreasing by
  // construction, the headline number reported per policy.
  double cumulative_regret() const noexcept { return cumulative_regret_; }
  const std::vector<double>& estimated_gains() const noexcept {
    return gains_;
  }

  void reset();

  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  std::vector<double> gains_;  // \hat{G}_i, importance-weighted
  double realized_gain_ = 0.0;
  double cumulative_regret_ = 0.0;
  std::size_t updates_ = 0;
};

}  // namespace mak::rl
