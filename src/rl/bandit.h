// Multi-armed bandit policy interface.
//
// MAK's policy (Exp3.1) and the ablation policies (fixed-gamma Exp3,
// epsilon-greedy) implement this interface so the crawler and the benches
// can swap them freely.
#pragma once

#include <cstddef>
#include <vector>

#include "support/json.h"
#include "support/rng.h"

namespace mak::rl {

class BanditPolicy {
 public:
  virtual ~BanditPolicy() = default;

  virtual std::size_t arm_count() const noexcept = 0;

  // Sample an arm according to the current policy.
  virtual std::size_t choose(support::Rng& rng) = 0;

  // Feed back the reward (in [0, 1]) for the arm chosen last.
  virtual void update(std::size_t arm, double reward01) = 0;

  // Current per-arm selection probabilities (sums to 1).
  virtual std::vector<double> probabilities() const = 0;

  virtual void reset() = 0;

  // Checkpointing (docs/robustness.md): capture / restore the full policy
  // state. Each policy self-identifies in the state object, so loading a
  // checkpoint written by a different policy or configuration raises
  // support::SnapshotError instead of silently corrupting the run.
  virtual support::json::Value save_state() const = 0;
  virtual void load_state(const support::json::Value& state) = 0;
};

}  // namespace mak::rl
