#include "apps/catalog.h"

#include <stdexcept>

#include "apps/features/aliased_reviews.h"
#include "apps/generator/generator.h"
#include "apps/features/calendar_trap.h"
#include "apps/features/cart_flow.h"
#include "apps/features/deep_wizard.h"
#include "apps/features/login_area.h"
#include "apps/features/module_router.h"
#include "apps/features/mutable_shortcuts.h"
#include "apps/features/paginated_forum.h"
#include "apps/features/search_box.h"
#include "apps/features/static_section.h"
#include "apps/features/validated_signup.h"

namespace mak::apps {

namespace {

// Per-app latency: page cost ~= base + per_kb * size. Calibrated so a
// 30-minute budget yields roughly 850-950 atomic interactions, matching the
// interaction counts reported in Section V-D.
void set_latency(SyntheticApp& app, support::VirtualMillis base_ms,
                 support::VirtualMillis per_kb_ms) {
  app.latency().base_ms = base_ms;
  app.latency().per_kilobyte_ms = per_kb_ms;
}

}  // namespace

std::unique_ptr<SyntheticApp> make_addressbook() {
  // AddressBook v8.2.5 — a small contact manager. Nearly everything is one
  // or two clicks from the home page; all crawlers reach high coverage and
  // the margins are small (paper: 99.3 / 98.5 / 96.4).
  auto app = std::make_unique<SyntheticApp>("AddressBook", "addressbook.test",
                                            Platform::kPhp);
  set_latency(*app, 1000, 12);
  app->set_framework_overhead(900);
  app->add_feature(std::make_unique<NewsArchive>(NewsArchiveParams{
      .slug = "contacts",
      .title = "Contacts",
      .article_count = 70,
      .index_page_size = 20,
      .variants = 12,
      .lines_per_variant = 60,
      .lines_per_entity = 3,
      .shared_lines = 350,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "groups",
      .title = "Groups",
      .page_count = 16,
      .fanout = 6,
      .variants = 8,
      .lines_per_variant = 45,
      .lines_per_entity = 3,
      .shared_lines = 150,
  }));
  app->add_feature(std::make_unique<SearchBox>(SearchBoxParams{
      .slug = "search",
      .result_paths = {"/contacts/a/0", "/contacts/a/1", "/contacts/a/2"},
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "admin",
      .private_pages = 8,
      .page_variants = 4,
      .lines_per_variant = 45,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_drupal() {
  // Drupal v8.6.15 — the largest PHP app: a heavyweight framework, a large
  // content inventory, admin modules, and the self-modifying shortcut panel
  // of Figure 1 (bottom).
  auto app = std::make_unique<SyntheticApp>("Drupal", "drupal.test",
                                            Platform::kPhp);
  set_latency(*app, 1550, 15);
  app->set_framework_overhead(15000);
  app->add_feature(std::make_unique<NewsArchive>(NewsArchiveParams{
      .slug = "node",
      .title = "Content",
      .article_count = 700,
      .index_page_size = 12,
      .variants = 100,
      .lines_per_variant = 75,
      .lines_per_entity = 3,
      .shared_lines = 1500,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "taxonomy",
      .title = "Taxonomy",
      .page_count = 250,
      .fanout = 5,
      .variants = 40,
      .lines_per_variant = 65,
      .lines_per_entity = 2,
      .shared_lines = 800,
  }));
  app->add_feature(std::make_unique<ModuleRouter>(ModuleRouterParams{
      .script = "/admin.php",
      .module_count = 16,
      .actions_per_module = 8,
      .lines_per_module = 60,
      .lines_per_action = 22,
      .shared_lines = 400,
  }));
  app->add_feature(std::make_unique<MutableShortcuts>(MutableShortcutsParams{
      .slug = "dashboard",
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "config",
      .title = "Site configuration",
      .steps = 20,
      .lines_per_step = 200,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "user",
      .private_pages = 40,
      .page_variants = 8,
      .lines_per_variant = 60,
  }));
  app->add_feature(std::make_unique<SearchBox>(SearchBoxParams{
      .slug = "search",
      .result_paths = {"/node/a/0", "/node/a/1", "/node/a/2", "/node/a/3"},
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_hotcrp() {
  // HotCRP v2.102 — conference management with the aliased review-form URLs
  // of Figure 1 (top) and a deep submission wizard.
  auto app = std::make_unique<SyntheticApp>("HotCRP", "hotcrp.test",
                                            Platform::kPhp);
  set_latency(*app, 1350, 13);
  app->set_framework_overhead(5000);
  app->add_feature(std::make_unique<AliasedReviews>(AliasedReviewsParams{
      .paper_count = 60,
      .paper_variants = 10,
      .lines_per_paper_variant = 40,
      .review_variants = 12,
      .lines_per_review_variant = 50,
      .reviewer_id = 23,
      .shared_lines = 500,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "submit",
      .title = "Paper submission",
      .steps = 15,
      .lines_per_step = 110,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "help",
      .title = "Help",
      .page_count = 80,
      .fanout = 4,
      .variants = 25,
      .lines_per_variant = 50,
      .lines_per_entity = 3,
      .shared_lines = 400,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "profile",
      .private_pages = 20,
      .page_variants = 6,
      .lines_per_variant = 50,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_matomo() {
  // Matomo v4.11.0 — analytics platform routed almost entirely through
  // ?module=...&action=... query parameters (Section III-A), plus
  // date-navigation calendar links.
  auto app = std::make_unique<SyntheticApp>("Matomo", "matomo.test",
                                            Platform::kPhp);
  set_latency(*app, 1500, 14);
  app->set_framework_overhead(9000);
  app->add_feature(std::make_unique<ModuleRouter>(ModuleRouterParams{
      .script = "/index.php",
      .module_count = 20,
      .actions_per_module = 8,
      .lines_per_module = 220,
      .lines_per_action = 30,
      .shared_lines = 1200,
  }));
  app->add_feature(std::make_unique<CalendarTrap>(CalendarTrapParams{
      .slug = "period",
      .month_count = 720,
      .start_month = 360,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "site-setup",
      .title = "Tracking setup",
      .steps = 15,
      .lines_per_step = 200,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "docs",
      .title = "Guides",
      .page_count = 100,
      .fanout = 5,
      .variants = 15,
      .lines_per_variant = 90,
      .lines_per_entity = 2,
      .shared_lines = 500,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "settings",
      .private_pages = 25,
      .page_variants = 6,
      .lines_per_variant = 50,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_oscommerce() {
  // OsCommerce2 v2.3.4.1 — e-commerce with the cart/checkout state machine
  // that motivates the paper's reward design (Section IV-C).
  auto app = std::make_unique<SyntheticApp>("OsCommerce2", "oscommerce.test",
                                            Platform::kPhp);
  set_latency(*app, 1250, 12);
  app->set_framework_overhead(1900);
  app->add_feature(std::make_unique<CartFlow>(CartFlowParams{
      .slug = "shop",
      .product_count = 80,
      .products_per_page = 10,
      .product_variants = 12,
      .lines_per_product_variant = 40,
      .shared_lines = 450,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "info",
      .title = "Store information",
      .page_count = 60,
      .fanout = 4,
      .variants = 12,
      .lines_per_variant = 70,
      .lines_per_entity = 3,
      .shared_lines = 300,
  }));
  app->add_feature(std::make_unique<SearchBox>(SearchBoxParams{
      .slug = "search",
      .result_paths = {"/shop/product/0", "/shop/product/1",
                       "/shop/product/2"},
      .reflect_unescaped = true,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "account-setup",
      .title = "Account setup",
      .steps = 12,
      .lines_per_step = 120,
  }));
  app->add_feature(std::make_unique<ValidatedSignup>(ValidatedSignupParams{
      .slug = "newsletter",
      .success_lines = 150,
      .member_pages = 5,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "customer",
      .private_pages = 15,
      .page_variants = 5,
      .lines_per_variant = 45,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_phpbb() {
  // PhpBB2 v2.0.23 — classic forum: boards, paginated topic lists, reply
  // forms. Link discovery outpaces coverage growth.
  auto app = std::make_unique<SyntheticApp>("PhpBB2", "phpbb.test",
                                            Platform::kPhp);
  set_latency(*app, 1300, 13);
  app->set_framework_overhead(2600);
  app->add_feature(std::make_unique<PaginatedForum>(PaginatedForumParams{
      .slug = "forum",
      .board_count = 8,
      .topics_per_board = 50,
      .topics_per_page = 10,
      .posts_per_topic = 4,
      .lines_per_board = 35,
      .topic_variants = 15,
      .lines_per_topic_variant = 45,
      .shared_lines = 400,
      .sqli_page_param = true,
      .stored_xss_replies = true,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "faq",
      .title = "FAQ",
      .page_count = 40,
      .fanout = 4,
      .variants = 10,
      .lines_per_variant = 60,
      .lines_per_entity = 3,
      .shared_lines = 250,
  }));
  app->add_feature(std::make_unique<SearchBox>(SearchBoxParams{
      .slug = "search",
      .result_paths = {"/forum/topic/0", "/forum/topic/1", "/forum/topic/2"},
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "register",
      .title = "Member registration",
      .steps = 12,
      .lines_per_step = 100,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "profile",
      .private_pages = 15,
      .page_variants = 5,
      .lines_per_variant = 45,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_vanilla() {
  // Vanilla v2.0.17.10 — a small discussion forum.
  auto app = std::make_unique<SyntheticApp>("Vanilla", "vanilla.test",
                                            Platform::kPhp);
  set_latency(*app, 1150, 12);
  app->set_framework_overhead(1100);
  app->add_feature(std::make_unique<PaginatedForum>(PaginatedForumParams{
      .slug = "discussions",
      .board_count = 4,
      .topics_per_board = 25,
      .topics_per_page = 10,
      .posts_per_topic = 3,
      .lines_per_board = 30,
      .topic_variants = 12,
      .lines_per_topic_variant = 40,
      .shared_lines = 350,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "categories",
      .title = "Categories",
      .page_count = 30,
      .fanout = 4,
      .variants = 8,
      .lines_per_variant = 50,
      .lines_per_entity = 3,
      .shared_lines = 200,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "onboarding",
      .title = "Community onboarding",
      .steps = 10,
      .lines_per_step = 90,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "profile",
      .private_pages = 12,
      .page_variants = 5,
      .lines_per_variant = 40,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_wordpress() {
  // WordPress v5.1.0 — the blog platform the paper's search example comes
  // from (Section III-B): a very large post inventory, read-only search and
  // month-archive navigation. Run-to-run variance is high; even the best
  // crawler leaves much of the union uncovered in a single run.
  auto app = std::make_unique<SyntheticApp>("WordPress", "wordpress.test",
                                            Platform::kPhp);
  set_latency(*app, 1450, 14);
  app->set_framework_overhead(10000);
  app->add_feature(std::make_unique<NewsArchive>(NewsArchiveParams{
      .slug = "posts",
      .title = "Blog",
      .article_count = 1500,
      .index_page_size = 10,
      .variants = 150,
      .lines_per_variant = 60,
      .lines_per_entity = 3,
      .shared_lines = 1200,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "pages",
      .title = "Pages",
      .page_count = 150,
      .fanout = 5,
      .variants = 35,
      .lines_per_variant = 65,
      .lines_per_entity = 3,
      .shared_lines = 600,
  }));
  app->add_feature(std::make_unique<SearchBox>(SearchBoxParams{
      .slug = "search",
      .result_paths = {"/posts/a/0", "/posts/a/1", "/posts/a/2",
                       "/posts/a/3", "/posts/a/4"},
      .shared_lines = 400,
      .reflect_unescaped = true,
  }));
  app->add_feature(std::make_unique<CalendarTrap>(CalendarTrapParams{
      .slug = "archive",
      .month_count = 600,
      .start_month = 300,
      .days_per_month = 30,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "customizer",
      .title = "Site customizer",
      .steps = 18,
      .lines_per_step = 180,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "wp-admin",
      .private_pages = 30,
      .page_variants = 8,
      .lines_per_variant = 60,
      .shared_lines = 300,
  }));
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_actual() {
  // Actual v25.2.1 — Node.js finance manager: SPA-style module routes and a
  // budget-setup wizard, plus a large unreachable server surface (bank-sync
  // protocol, importers) that caps coverage-node percentages around the
  // mid-60s for every crawler.
  auto app = std::make_unique<SyntheticApp>("Actual", "actual.test",
                                            Platform::kNode);
  set_latency(*app, 1200, 12);
  app->set_framework_overhead(2000);
  app->add_feature(std::make_unique<ModuleRouter>(ModuleRouterParams{
      .script = "/app",
      .module_count = 10,
      .actions_per_module = 6,
      .lines_per_module = 60,
      .lines_per_action = 25,
      .shared_lines = 500,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "budget-setup",
      .title = "Budget setup",
      .steps = 12,
      .lines_per_step = 120,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "reports",
      .title = "Reports",
      .page_count = 40,
      .fanout = 4,
      .variants = 8,
      .lines_per_variant = 60,
      .lines_per_entity = 2,
      .shared_lines = 300,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "sync",
      .private_pages = 12,
      .page_variants = 5,
      .lines_per_variant = 45,
  }));
  // Unreachable server code: bank-sync protocol handlers, importers and the
  // embedded API that the web UI never links to.
  app->arena().file("server/bank-sync.js");
  app->arena().dead_code(2600);
  app->arena().file("server/importers.js");
  app->arena().dead_code(1400);
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_docmost() {
  // Docmost v0.8.4 — Node.js documentation/wiki: deep page trees, search,
  // workspaces behind a login, plus unreachable collaboration endpoints.
  auto app = std::make_unique<SyntheticApp>("Docmost", "docmost.test",
                                            Platform::kNode);
  set_latency(*app, 1250, 12);
  app->set_framework_overhead(2000);
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "pages",
      .title = "Workspace pages",
      .page_count = 90,
      .fanout = 3,
      .variants = 10,
      .lines_per_variant = 65,
      .lines_per_entity = 2,
      .shared_lines = 400,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "spaces",
      .title = "Spaces",
      .page_count = 30,
      .fanout = 4,
      .variants = 6,
      .lines_per_variant = 55,
      .lines_per_entity = 2,
      .shared_lines = 250,
  }));
  app->add_feature(std::make_unique<SearchBox>(SearchBoxParams{
      .slug = "search",
      .result_paths = {"/pages/p/0", "/pages/p/1", "/pages/p/2"},
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "workspace",
      .private_pages = 14,
      .page_variants = 5,
      .lines_per_variant = 40,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "space-setup",
      .title = "Space setup",
      .steps = 10,
      .lines_per_step = 100,
  }));
  app->add_feature(std::make_unique<ValidatedSignup>(ValidatedSignupParams{
      .slug = "invite",
      .success_lines = 140,
      .member_pages = 4,
  }));
  // Real-time collaboration (websocket) and attachment-processing code is
  // unreachable through plain HTTP crawling.
  app->arena().file("server/collab-ws.js");
  app->arena().dead_code(2200);
  app->arena().file("server/attachments.js");
  app->arena().dead_code(700);
  app->finalize();
  return app;
}

std::unique_ptr<SyntheticApp> make_retroboard() {
  // Retro-board v5.5.2 — Node.js retrospective boards; roughly half of the
  // server (websocket game loop) is unreachable over HTTP.
  auto app = std::make_unique<SyntheticApp>("Retro-board", "retroboard.test",
                                            Platform::kNode);
  set_latency(*app, 1150, 12);
  app->set_framework_overhead(1200);
  app->add_feature(std::make_unique<PaginatedForum>(PaginatedForumParams{
      .slug = "boards",
      .board_count = 5,
      .topics_per_board = 20,
      .topics_per_page = 8,
      .posts_per_topic = 3,
      .lines_per_board = 32,
      .topic_variants = 10,
      .lines_per_topic_variant = 40,
      .shared_lines = 350,
      .sqli_page_param = true,
  }));
  app->add_feature(std::make_unique<StaticSection>(StaticSectionParams{
      .slug = "templates",
      .title = "Board templates",
      .page_count = 25,
      .fanout = 4,
      .variants = 6,
      .lines_per_variant = 45,
      .lines_per_entity = 2,
      .shared_lines = 200,
  }));
  app->add_feature(std::make_unique<LoginArea>(LoginAreaParams{
      .slug = "account",
      .private_pages = 10,
      .page_variants = 4,
      .lines_per_variant = 40,
  }));
  app->add_feature(std::make_unique<DeepWizard>(DeepWizardParams{
      .slug = "board-setup",
      .title = "Board setup",
      .steps = 10,
      .lines_per_step = 90,
  }));
  // The live-session websocket engine dominates the code base and never
  // executes during crawling.
  app->arena().file("server/game-ws.js");
  app->arena().dead_code(3400);
  app->finalize();
  return app;
}

const std::vector<AppInfo>& app_catalog() {
  static const std::vector<AppInfo> catalog = {
      {"AddressBook", "8.2.5", Platform::kPhp, make_addressbook},
      {"Drupal", "8.6.15", Platform::kPhp, make_drupal},
      {"HotCRP", "2.102", Platform::kPhp, make_hotcrp},
      {"Matomo", "4.11.0", Platform::kPhp, make_matomo},
      {"OsCommerce2", "2.3.4.1", Platform::kPhp, make_oscommerce},
      {"PhpBB2", "2.0.23", Platform::kPhp, make_phpbb},
      {"Vanilla", "2.0.17.10", Platform::kPhp, make_vanilla},
      {"WordPress", "5.1.0", Platform::kPhp, make_wordpress},
      {"Actual", "25.2.1", Platform::kNode, make_actual},
      {"Docmost", "0.8.4", Platform::kNode, make_docmost},
      {"Retro-board", "5.5.2", Platform::kNode, make_retroboard},
  };
  return catalog;
}

std::vector<const AppInfo*> php_apps() {
  std::vector<const AppInfo*> out;
  for (const auto& info : app_catalog()) {
    if (info.platform == Platform::kPhp) out.push_back(&info);
  }
  return out;
}

std::unique_ptr<SyntheticApp> make_app(std::string_view name) {
  for (const auto& info : app_catalog()) {
    if (info.name == name) return info.factory();
  }
  if (const auto spec = generator::AppSpec::from_name(name)) {
    return generator::make_generated(*spec);
  }
  std::string message = "unknown app: " + std::string(name) + " (valid: ";
  bool first = true;
  for (const auto& info : app_catalog()) {
    if (!first) message += ", ";
    message += info.name;
    first = false;
  }
  message += ", or a generated \"gen-v1-...\" name)";
  throw std::invalid_argument(message);
}

std::optional<AppInfo> resolve_app(std::string_view name) {
  for (const auto& info : app_catalog()) {
    if (info.name == name) return info;
  }
  if (const auto spec = generator::AppSpec::from_name(name)) {
    AppInfo info;
    info.name = spec->to_name();
    info.version = "generated";
    info.platform = spec->platform;
    info.factory = [spec = *spec]() { return generator::make_generated(spec); };
    return info;
  }
  return std::nullopt;
}

}  // namespace mak::apps
