// Variant-based code accounting for entity collections.
//
// In a real application, all articles (products, topics, ...) run the same
// handler; what differs between entities is which *branches* execute:
// an article with comments, a product on sale, a topic with attachments.
// VariantSet models this: a collection of N entities shares V variant
// regions, with a Zipf-like assignment (low variants common, high variants
// rare). Any crawler covers the common variants after a handful of entity
// visits; the rare variants are the long tail that separates thorough
// crawlers from shallow ones. A small per-entity region (a few lines) keeps
// coverage weakly increasing with every newly visited entity, mirroring
// data-dependent micro-branches.
#pragma once

#include <cstddef>
#include <vector>

#include "webapp/code_arena.h"

namespace mak::apps {

class VariantSet {
 public:
  VariantSet() = default;

  // Allocate `variants` variant regions of `lines_per_variant` lines each,
  // plus one `lines_per_entity`-line region per entity, in the arena's
  // current file.
  void allocate(webapp::CodeArena& arena, std::size_t entities,
                std::size_t variants, std::size_t lines_per_variant,
                std::size_t lines_per_entity);

  std::size_t entity_count() const noexcept { return entity_regions_.size(); }
  std::size_t variant_count() const noexcept { return variant_regions_.size(); }

  // Deterministic Zipf-distributed variant of entity i: P(variant k) ~ 1/k.
  std::size_t variant_of(std::size_t entity) const;

  const webapp::CodeRegion& variant_region(std::size_t entity) const;
  const webapp::CodeRegion& entity_region(std::size_t entity) const;

  // Total lines this set contributed to the arena.
  std::size_t total_lines() const noexcept;

 private:
  std::vector<webapp::CodeRegion> variant_regions_;
  std::vector<webapp::CodeRegion> entity_regions_;
  double zipf_total_ = 0.0;  // harmonic normalizer H(V)
};

}  // namespace mak::apps
