#include "apps/variant_set.h"

#include <cmath>
#include <stdexcept>

#include "support/rng.h"

namespace mak::apps {

void VariantSet::allocate(webapp::CodeArena& arena, std::size_t entities,
                          std::size_t variants, std::size_t lines_per_variant,
                          std::size_t lines_per_entity) {
  if (variants == 0) throw std::invalid_argument("VariantSet: zero variants");
  variant_regions_.reserve(variants);
  for (std::size_t v = 0; v < variants; ++v) {
    variant_regions_.push_back(arena.region(lines_per_variant));
  }
  zipf_total_ = 0.0;
  for (std::size_t k = 1; k <= variants; ++k) {
    zipf_total_ += 1.0 / static_cast<double>(k);
  }
  entity_regions_.reserve(entities);
  for (std::size_t e = 0; e < entities; ++e) {
    entity_regions_.push_back(
        lines_per_entity > 0 ? arena.region(lines_per_entity)
                             : webapp::CodeRegion{});
  }
}

std::size_t VariantSet::variant_of(std::size_t entity) const {
  // Hash the entity id to a uniform u in [0,1) and invert the Zipf CDF:
  // variant k is hit with probability proportional to 1/(k+1). The head
  // variants are common (any crawler finds them within a few entity
  // visits); the tail is thin enough that only a broad sweep uncovers it.
  const double u =
      static_cast<double>(support::mix64(entity) >> 11) * 0x1.0p-53;
  const double target = u * zipf_total_;
  double acc = 0.0;
  for (std::size_t k = 0; k < variant_regions_.size(); ++k) {
    acc += 1.0 / static_cast<double>(k + 1);
    if (target < acc) return k;
  }
  return variant_regions_.size() - 1;
}

const webapp::CodeRegion& VariantSet::variant_region(std::size_t entity) const {
  return variant_regions_.at(variant_of(entity));
}

const webapp::CodeRegion& VariantSet::entity_region(std::size_t entity) const {
  return entity_regions_.at(entity);
}

std::size_t VariantSet::total_lines() const noexcept {
  std::size_t total = 0;
  for (const auto& r : variant_regions_) total += r.lines();
  for (const auto& r : entity_regions_) total += r.lines();
  return total;
}

}  // namespace mak::apps
