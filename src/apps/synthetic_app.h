// A synthetic testbed application: a WebApp composed of Features.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/feature.h"
#include "webapp/app_base.h"

namespace mak::apps {

// Server platform of the modelled application. Determines how the harness
// measures coverage, mirroring the paper's tooling: PHP apps (Xdebug) can be
// sampled at any time during the run, Node apps (coverage-node) only report
// at the end, against the total declared line count.
enum class Platform { kPhp, kNode };

std::string_view to_string(Platform platform) noexcept;

class SyntheticApp final : public webapp::WebApp {
 public:
  SyntheticApp(std::string name, std::string host, Platform platform)
      : WebApp(std::move(name), std::move(host)), platform_(platform) {}

  Platform platform() const noexcept { return platform_; }

  // Install a feature (allocates regions, registers routes). Must be called
  // before finalize(); the app takes ownership.
  void add_feature(std::unique_ptr<Feature> feature);

  std::size_t feature_count() const noexcept { return features_.size(); }

  // Sum of the installed features' calibrated_lines() — the feature part of
  // the line-calibration identity (see Feature::calibrated_lines()):
  //   total = kFrameworkBaseLines + framework_overhead_lines()
  //           + calibrated_feature_lines() + arena().dead_lines()
  std::size_t calibrated_feature_lines() const noexcept;

 private:
  Platform platform_;
  std::vector<std::unique_ptr<Feature>> features_;
};

}  // namespace mak::apps
