#include "apps/synthetic_app.h"

#include <stdexcept>

namespace mak::apps {

std::string_view to_string(Platform platform) noexcept {
  switch (platform) {
    case Platform::kPhp:
      return "PHP";
    case Platform::kNode:
      return "Node.js";
  }
  return "?";
}

std::size_t SyntheticApp::calibrated_feature_lines() const noexcept {
  std::size_t total = 0;
  for (const auto& feature : features_) total += feature->calibrated_lines();
  return total;
}

void SyntheticApp::add_feature(std::unique_ptr<Feature> feature) {
  if (finalized()) {
    throw std::logic_error("SyntheticApp::add_feature after finalize()");
  }
  feature->install(*this);
  features_.push_back(std::move(feature));
}

}  // namespace mak::apps
