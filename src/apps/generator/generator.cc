#include "apps/generator/generator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "apps/features/aliased_reviews.h"
#include "apps/features/calendar_trap.h"
#include "apps/features/cart_flow.h"
#include "apps/features/deep_wizard.h"
#include "apps/features/login_area.h"
#include "apps/features/module_router.h"
#include "apps/features/mutable_shortcuts.h"
#include "apps/features/paginated_forum.h"
#include "apps/features/search_box.h"
#include "apps/features/static_section.h"
#include "apps/features/validated_signup.h"
#include "support/rng.h"
#include "support/strings.h"
#include "webapp/app_base.h"

namespace mak::apps::generator {

namespace {

enum class SlotKind {
  kStatic,
  kNews,
  kModules,
  kAliased,
  kForum,
  kCart,
  kLogin,
  kWizard,
  kSearch,
  kSignup,
  kShortcuts,
};

// A feature slot competing for the distributable budget R. min_lines is the
// smallest share its builder can consume exactly (the bounds in the builder
// arithmetic below assume it); weight steers the largest-remainder split of
// the surplus — content carries most of an app's code, flows next, chrome
// features least.
struct Slot {
  SlotKind kind;
  std::size_t index = 0;  // ordinal in its group; keeps slugs unique
  std::size_t min_lines = 0;
  std::size_t weight = 0;
  std::size_t share = 0;
};

std::size_t slot_min(SlotKind kind) {
  switch (kind) {
    case SlotKind::kStatic:
    case SlotKind::kNews:
      return 600;
    case SlotKind::kModules:
      return 900;
    case SlotKind::kAliased:
    case SlotKind::kForum:
    case SlotKind::kCart:
      return 700;
    case SlotKind::kLogin:
      return 500;
    case SlotKind::kWizard:
      return 300;
    case SlotKind::kSearch:
      return 320;
    case SlotKind::kSignup:
      return 250;
    case SlotKind::kShortcuts:
      return 230;
  }
  return 0;
}

std::size_t slot_weight(SlotKind kind) {
  switch (kind) {
    case SlotKind::kStatic:
    case SlotKind::kNews:
    case SlotKind::kModules:
    case SlotKind::kAliased:
      return 4;
    case SlotKind::kForum:
    case SlotKind::kCart:
      return 3;
    case SlotKind::kLogin:
    case SlotKind::kWizard:
      return 2;
    case SlotKind::kSearch:
    case SlotKind::kSignup:
    case SlotKind::kShortcuts:
      return 1;
  }
  return 1;
}

Slot make_slot(SlotKind kind, std::size_t index) {
  return Slot{kind, index, slot_min(kind), slot_weight(kind), 0};
}

struct Plan {
  std::size_t overhead_lines = 0;
  std::size_t dead_lines = 0;
  std::vector<Slot> slots;  // kept slots, shares summing exactly to R
};

// Split `surplus` over the slots proportionally to weight, distributing the
// integer leftovers by largest remainder (ties to the earlier slot) so the
// shares sum exactly to min + surplus.
void allocate_shares(std::vector<Slot>& slots, std::size_t surplus) {
  if (slots.empty()) return;
  std::size_t total_weight = 0;
  for (const Slot& slot : slots) total_weight += slot.weight;
  std::size_t assigned = 0;
  std::vector<std::pair<std::size_t, std::size_t>> remainders;  // (rem, idx)
  remainders.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::size_t portion = surplus * slots[i].weight;
    const std::size_t extra = portion / total_weight;
    slots[i].share = slots[i].min_lines + extra;
    assigned += extra;
    remainders.emplace_back(portion % total_weight, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::size_t leftover = surplus - assigned;
  for (std::size_t i = 0; i < leftover; ++i) {
    slots[remainders[i % remainders.size()].second].share += 1;
  }
}

Plan plan_app(const AppSpec& spec) {
  spec.validate();
  Plan plan;
  plan.overhead_lines = generated_overhead_lines(spec);
  plan.dead_lines = generated_dead_lines(spec);

  const std::size_t fixed = webapp::WebApp::kFrameworkBaseLines +
                            plan.overhead_lines + plan.dead_lines +
                            spec.traps * kTrapLines;
  // The AppSpec bounds guarantee R >= 846 >= the largest single slot
  // minimum, so at least one content section always fits.
  const std::size_t distributable = spec.line_budget - fixed;

  const std::uint64_t h = support::mix64(spec.seed);

  // Content sections rotate through the four content kinds, starting at a
  // seed-chosen offset. AliasedReviews registers fixed route paths
  // (/papers, /review), so at most one instance per app; repeats fall back
  // to NewsArchive. A non-zero alias dial pins the first section to
  // StaticSection, the feature that implements URL-alias mirrors.
  static constexpr SlotKind kCycle[4] = {SlotKind::kStatic, SlotKind::kNews,
                                         SlotKind::kModules,
                                         SlotKind::kAliased};
  std::vector<Slot> content;
  bool aliased_used = false;
  for (std::size_t j = 0; j < spec.breadth; ++j) {
    SlotKind kind = kCycle[(static_cast<std::size_t>(h & 3) + j) % 4];
    if (j == 0 && spec.alias_density > 0) kind = SlotKind::kStatic;
    if (kind == SlotKind::kAliased) {
      if (aliased_used) kind = SlotKind::kNews;
      aliased_used = true;
    }
    content.push_back(make_slot(kind, j));
  }
  std::vector<Slot> flows;
  for (std::size_t j = 0; j < spec.pagination; ++j) {
    flows.push_back(make_slot(
        ((h >> (8 + j)) & 1) ? SlotKind::kCart : SlotKind::kForum, j));
  }
  std::vector<Slot> logins;
  for (std::size_t j = 0; j < spec.login_walls; ++j) {
    logins.push_back(make_slot(SlotKind::kLogin, j));
  }
  std::vector<Slot> wizards;
  for (std::size_t j = 0; j < spec.wizards; ++j) {
    wizards.push_back(make_slot(SlotKind::kWizard, j));
  }

  // Priority order for small budgets: the first content section and the
  // site chrome come first, then the dial-driven features round-robin, then
  // extra content sections. The kept set is the longest prefix whose
  // minimums fit in R — dials beyond the budget are quietly dropped, which
  // keeps every (budget, dials) combination constructible.
  std::vector<Slot> ordered;
  const auto push_group = [&ordered](const std::vector<Slot>& group,
                                     std::size_t i) {
    if (i < group.size()) ordered.push_back(group[i]);
  };
  push_group(content, 0);
  ordered.push_back(make_slot(SlotKind::kSearch, 0));
  push_group(logins, 0);
  push_group(wizards, 0);
  push_group(flows, 0);
  push_group(content, 1);
  if ((h >> 2) & 1) ordered.push_back(make_slot(SlotKind::kSignup, 0));
  if ((h >> 3) & 1) ordered.push_back(make_slot(SlotKind::kShortcuts, 0));
  for (std::size_t j = 1; j < 3; ++j) {
    push_group(logins, j);
    push_group(wizards, j);
    push_group(flows, j);
    push_group(content, j + 1);
  }
  push_group(content, 4);
  push_group(content, 5);

  std::size_t used = 0;
  for (const Slot& slot : ordered) {
    if (used + slot.min_lines > distributable) break;
    used += slot.min_lines;
    plan.slots.push_back(slot);
  }
  allocate_shares(plan.slots, distributable - used);
  return plan;
}

// --- feature builders -----------------------------------------------------
//
// Each builder consumes slot.share EXACTLY: fixed handler regions and
// variant/entity tables are sized from the share and the depth dial, and
// the integer remainder is absorbed into the feature's shared-lines
// parameter. make_generated() re-checks this via calibrated_lines().

std::unique_ptr<Feature> build_static(const Slot& slot, const AppSpec& spec,
                                      std::size_t alias_routes) {
  const std::size_t share = slot.share;
  StaticSectionParams p;
  p.slug = "sec" + std::to_string(slot.index);
  p.title = "Section " + std::to_string(slot.index);
  p.lines_per_variant = 40;
  p.lines_per_entity = 3;
  p.variants = std::clamp<std::size_t>(6 + 2 * spec.depth, 2,
                                       (share / 2 - 30) / 40);
  const std::size_t rest = share - 30 - p.variants * p.lines_per_variant;
  p.page_count = rest / 6;
  p.shared_lines = rest - p.page_count * p.lines_per_entity;
  p.fanout = spec.depth >= 2 ? 3 : 4;
  p.cross_links = 2;
  p.alias_routes = alias_routes;
  return std::make_unique<StaticSection>(std::move(p));
}

std::unique_ptr<Feature> build_news(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  NewsArchiveParams p;
  p.slug = "news" + std::to_string(slot.index);
  p.title = "News " + std::to_string(slot.index);
  p.lines_per_variant = 50;
  p.lines_per_entity = 3;
  p.index_page_size = 10;
  p.variants = std::clamp<std::size_t>(8 + 2 * spec.depth, 2,
                                       (share / 2 - 65) / 50);
  const std::size_t rest = share - 65 - p.variants * p.lines_per_variant;
  p.article_count = rest / 6;
  p.shared_lines = rest - p.article_count * p.lines_per_entity;
  return std::make_unique<NewsArchive>(std::move(p));
}

std::unique_ptr<Feature> build_modules(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  ModuleRouterParams p;
  p.script = "/admin" + std::to_string(slot.index) + ".php";
  p.module_count = 5 + spec.depth;
  p.lines_per_action = 22;
  // Reserve a fifth of the share for shared plugin-framework code, then
  // size each module to an equal cut of the rest.
  const std::size_t per_module = (share - 45 - share / 5) / p.module_count;
  p.actions_per_module =
      std::clamp<std::size_t>((per_module - 20) / p.lines_per_action, 2, 6);
  p.lines_per_module =
      per_module - p.actions_per_module * p.lines_per_action;
  p.shared_lines =
      share - 45 -
      p.module_count * (p.lines_per_module +
                        p.actions_per_module * p.lines_per_action);
  return std::make_unique<ModuleRouter>(std::move(p));
}

std::unique_ptr<Feature> build_aliased(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  AliasedReviewsParams p;
  p.lines_per_paper_variant = 35;
  p.lines_per_review_variant = 45;
  p.lines_per_entity = 2;
  p.paper_variants =
      std::clamp<std::size_t>(6 + spec.depth, 2, (share / 4) / 35);
  p.review_variants =
      std::clamp<std::size_t>(8 + spec.depth, 2, (share / 4) / 45);
  const std::size_t rest = share - 135 -
                           p.paper_variants * p.lines_per_paper_variant -
                           p.review_variants * p.lines_per_review_variant;
  p.paper_count = rest / 8;  // each paper costs 2 * lines_per_entity
  p.shared_lines = rest - 2 * p.paper_count * p.lines_per_entity;
  return std::make_unique<AliasedReviews>(std::move(p));
}

std::unique_ptr<Feature> build_forum(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  PaginatedForumParams p;
  p.slug = "forum" + std::to_string(slot.index);
  p.board_count = 2 + spec.depth;
  p.lines_per_board = 30;
  p.lines_per_topic_variant = 45;
  p.lines_per_topic = 2;
  p.topics_per_page = 8;
  p.posts_per_topic = 3;
  p.topic_variants =
      std::clamp<std::size_t>(6 + 2 * spec.depth, 2, (share / 4) / 45);
  const std::size_t rest = share - 129 -
                           p.board_count * p.lines_per_board -
                           p.topic_variants * p.lines_per_topic_variant;
  p.topics_per_board = std::max<std::size_t>(3, rest / (4 * p.board_count));
  p.shared_lines =
      rest - p.board_count * p.topics_per_board * p.lines_per_topic;
  return std::make_unique<PaginatedForum>(std::move(p));
}

std::unique_ptr<Feature> build_cart(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  CartFlowParams p;
  p.slug = "shop" + std::to_string(slot.index);
  p.lines_per_product_variant = 40;
  p.lines_per_product = 2;
  p.products_per_page = 10;
  p.product_variants =
      std::clamp<std::size_t>(8 + spec.depth, 2, (share / 4) / 40);
  const std::size_t rest =
      share - 206 - p.product_variants * p.lines_per_product_variant;
  p.product_count = rest / 4;
  p.shared_lines = rest - p.product_count * p.lines_per_product;
  return std::make_unique<CartFlow>(std::move(p));
}

std::unique_ptr<Feature> build_login(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  LoginAreaParams p;
  p.slug = "account" + std::to_string(slot.index);
  p.lines_per_variant = 45;
  p.lines_per_page = 3;
  p.page_variants =
      std::clamp<std::size_t>(4 + spec.depth, 1, (share / 4) / 45);
  const std::size_t rest = share - 78 - p.page_variants * p.lines_per_variant;
  p.private_pages = std::max<std::size_t>(3, rest / 6);
  p.shared_lines = rest - p.private_pages * p.lines_per_page;
  return std::make_unique<LoginArea>(std::move(p));
}

std::unique_ptr<Feature> build_wizard(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  DeepWizardParams p;
  p.slug = "wizard" + std::to_string(slot.index);
  p.title = "Setup wizard " + std::to_string(slot.index);
  const std::size_t avail =
      share - 68 - std::max<std::size_t>(80, share / 4);
  p.steps = 5 + 3 * spec.depth;
  p.lines_per_step = avail / p.steps;
  if (p.lines_per_step < 8) {
    p.steps = std::max<std::size_t>(3, avail / 8);
    p.lines_per_step = avail / p.steps;
  }
  p.shared_lines = share - 68 - p.steps * p.lines_per_step;
  return std::make_unique<DeepWizard>(std::move(p));
}

std::unique_ptr<Feature> build_search(const Slot& slot,
                                      std::vector<std::string> targets) {
  SearchBoxParams p;
  p.result_paths = std::move(targets);
  p.shared_lines = slot.share - 57;
  return std::make_unique<SearchBox>(std::move(p));
}

std::unique_ptr<Feature> build_signup(const Slot& slot, const AppSpec& spec) {
  const std::size_t share = slot.share;
  ValidatedSignupParams p;
  p.lines_per_member_page = 25;
  p.member_pages = 3 + spec.depth;
  if (78 + p.member_pages * p.lines_per_member_page + 40 > share) {
    p.member_pages = std::max<std::size_t>(2, (share - 78 - 40) / 25);
  }
  p.success_lines = share - 78 - p.member_pages * p.lines_per_member_page;
  return std::make_unique<ValidatedSignup>(std::move(p));
}

std::unique_ptr<Feature> build_shortcuts(const Slot& slot) {
  MutableShortcutsParams p;
  p.max_shortcuts = 500;
  p.shared_lines = slot.share - 70;
  return std::make_unique<MutableShortcuts>(std::move(p));
}

// Search-result targets pointing into the first content section, so the
// search feature links to real content whatever kind leads the mix.
std::vector<std::string> search_targets(const Plan& plan) {
  for (const Slot& slot : plan.slots) {
    switch (slot.kind) {
      case SlotKind::kStatic: {
        const std::string base = "/sec" + std::to_string(slot.index) + "/p/";
        return {base + "1", base + "2", base + "3"};
      }
      case SlotKind::kNews: {
        const std::string base = "/news" + std::to_string(slot.index);
        return {base, base + "/a/1", base + "/a/2"};
      }
      case SlotKind::kModules: {
        const std::string base = "/admin" + std::to_string(slot.index) +
                                 ".php?module=";
        return {base + "CoreHome&action=index",
                base + "Dashboard&action=manage"};
      }
      case SlotKind::kAliased:
        return {"/papers", "/paper/1", "/review"};
      default:
        continue;
    }
  }
  return {"/"};
}

std::unique_ptr<Feature> build_slot(const Slot& slot, const AppSpec& spec,
                                    const Plan& plan) {
  switch (slot.kind) {
    case SlotKind::kStatic:
      return build_static(slot, spec,
                          slot.index == 0 ? spec.alias_density : 0);
    case SlotKind::kNews:
      return build_news(slot, spec);
    case SlotKind::kModules:
      return build_modules(slot, spec);
    case SlotKind::kAliased:
      return build_aliased(slot, spec);
    case SlotKind::kForum:
      return build_forum(slot, spec);
    case SlotKind::kCart:
      return build_cart(slot, spec);
    case SlotKind::kLogin:
      return build_login(slot, spec);
    case SlotKind::kWizard:
      return build_wizard(slot, spec);
    case SlotKind::kSearch:
      return build_search(slot, search_targets(plan));
    case SlotKind::kSignup:
      return build_signup(slot, spec);
    case SlotKind::kShortcuts:
      return build_shortcuts(slot);
  }
  throw std::logic_error("generator: unhandled slot kind");
}

}  // namespace

std::size_t generated_overhead_lines(const AppSpec& spec) {
  return spec.line_budget / 5;
}

std::size_t generated_dead_lines(const AppSpec& spec) {
  return spec.line_budget * spec.dead_pct / 100;
}

GeneratedApp describe_generated(const AppSpec& spec) {
  spec.validate();
  GeneratedApp described;
  described.spec = spec;
  described.name = spec.to_name();
  described.total_lines = spec.line_budget;
  described.reachable_lines = spec.line_budget - generated_dead_lines(spec);
  return described;
}

std::unique_ptr<SyntheticApp> make_generated(const AppSpec& spec) {
  const Plan plan = plan_app(spec);
  const std::string name = spec.to_name();
  // URL parsing lowercases hosts, so the host must not carry the name's
  // uppercase budget marker ("-L12000-").
  std::string host = support::to_lower(name) + ".test";
  auto app = std::make_unique<SyntheticApp>(name, std::move(host),
                                            spec.platform);
  app->set_framework_overhead(plan.overhead_lines);
  if (plan.dead_lines > 0) {
    const auto file = app->arena().file(
        spec.platform == Platform::kNode ? "build/bundle.js"
                                         : "vendor/unused.php");
    app->arena().dead_code(file, plan.dead_lines);
  }
  for (const Slot& slot : plan.slots) {
    auto feature = build_slot(slot, spec, plan);
    if (feature->calibrated_lines() != slot.share) {
      throw std::logic_error(
          "generator: slot consumed " +
          std::to_string(feature->calibrated_lines()) + " lines, share was " +
          std::to_string(slot.share) + " (app " + name + ")");
    }
    app->add_feature(std::move(feature));
  }
  for (std::size_t j = 0; j < spec.traps; ++j) {
    CalendarTrapParams p;
    p.slug = "cal" + std::to_string(j);
    p.month_count = 720;
    p.start_month = 360;
    p.days_per_month = (j % 2) ? 28 : 0;
    p.shared_lines = 120;
    auto trap = std::make_unique<CalendarTrap>(std::move(p));
    if (trap->calibrated_lines() != kTrapLines) {
      throw std::logic_error("generator: trap calibration drifted");
    }
    app->add_feature(std::move(trap));
  }
  app->finalize();
  if (app->code_model().total_lines() != spec.line_budget) {
    throw std::logic_error(
        "generator: app " + name + " modelled " +
        std::to_string(app->code_model().total_lines()) +
        " lines, budget was " + std::to_string(spec.line_budget));
  }
  return app;
}

std::vector<GeneratedApp> population(std::uint64_t seed, std::size_t n) {
  std::vector<GeneratedApp> apps;
  apps.reserve(n);
  for (AppSpec& spec : population_specs(seed, n)) {
    apps.push_back(describe_generated(spec));
  }
  return apps;
}

}  // namespace mak::apps::generator
