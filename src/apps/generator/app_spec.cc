#include "apps/generator/app_spec.h"

#include <cstdio>
#include <stdexcept>

#include "support/rng.h"

namespace mak::apps::generator {

namespace {

void check_range(const char* field, std::size_t value, std::size_t lo,
                 std::size_t hi) {
  if (value < lo || value > hi) {
    throw std::invalid_argument(
        std::string("AppSpec.") + field + " = " + std::to_string(value) +
        " out of range [" + std::to_string(lo) + ", " + std::to_string(hi) +
        "]");
  }
}

// Parse "<letter><decimal>" at `pos` in `name`; advances pos past the
// trailing '-' (or to end). Returns false on any mismatch.
bool take_field(std::string_view name, std::size_t& pos, char letter,
                std::size_t& out) {
  if (pos >= name.size() || name[pos] != letter) return false;
  ++pos;
  std::size_t value = 0;
  std::size_t digits = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(name[pos] - '0');
    ++pos;
    if (++digits > 9) return false;
  }
  if (digits == 0) return false;
  if (pos < name.size()) {
    if (name[pos] != '-') return false;
    ++pos;
  }
  out = value;
  return true;
}

}  // namespace

void AppSpec::validate() const {
  check_range("line_budget", line_budget, 4000, 200000);
  check_range("breadth", breadth, 1, 6);
  check_range("depth", depth, 0, 3);
  check_range("alias_density", alias_density, 0, 3);
  check_range("traps", traps, 0, 4);
  check_range("login_walls", login_walls, 0, 3);
  check_range("wizards", wizards, 0, 3);
  check_range("pagination", pagination, 0, 3);
  check_range("dead_pct", dead_pct, 0, 40);
}

std::string AppSpec::to_name() const {
  char seed_hex[17];
  std::snprintf(seed_hex, sizeof(seed_hex), "%llx",
                static_cast<unsigned long long>(seed));
  std::string name = "gen-v1-s";
  name += seed_hex;
  name += "-L" + std::to_string(line_budget);
  name += "-b" + std::to_string(breadth);
  name += "-d" + std::to_string(depth);
  name += "-a" + std::to_string(alias_density);
  name += "-t" + std::to_string(traps);
  name += "-g" + std::to_string(login_walls);
  name += "-w" + std::to_string(wizards);
  name += "-p" + std::to_string(pagination);
  name += "-x" + std::to_string(dead_pct);
  name += platform == Platform::kPhp ? "-php" : "-node";
  return name;
}

std::optional<AppSpec> AppSpec::from_name(std::string_view name) {
  constexpr std::string_view kPrefix = "gen-v1-s";
  if (!name.starts_with(kPrefix)) return std::nullopt;
  std::size_t pos = kPrefix.size();

  std::uint64_t seed = 0;
  std::size_t digits = 0;
  while (pos < name.size() && name[pos] != '-') {
    const char c = name[pos];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    seed = (seed << 4) | nibble;
    ++pos;
    if (++digits > 16) return std::nullopt;
  }
  if (digits == 0 || pos >= name.size()) return std::nullopt;
  ++pos;  // skip '-'

  AppSpec spec;
  spec.seed = seed;
  if (!take_field(name, pos, 'L', spec.line_budget)) return std::nullopt;
  if (!take_field(name, pos, 'b', spec.breadth)) return std::nullopt;
  if (!take_field(name, pos, 'd', spec.depth)) return std::nullopt;
  if (!take_field(name, pos, 'a', spec.alias_density)) return std::nullopt;
  if (!take_field(name, pos, 't', spec.traps)) return std::nullopt;
  if (!take_field(name, pos, 'g', spec.login_walls)) return std::nullopt;
  if (!take_field(name, pos, 'w', spec.wizards)) return std::nullopt;
  if (!take_field(name, pos, 'p', spec.pagination)) return std::nullopt;
  if (!take_field(name, pos, 'x', spec.dead_pct)) return std::nullopt;

  const std::string_view tail = name.substr(pos);
  if (tail == "php") {
    spec.platform = Platform::kPhp;
  } else if (tail == "node") {
    spec.platform = Platform::kNode;
  } else {
    return std::nullopt;
  }
  spec.validate();
  return spec;
}

AppSpec AppSpec::from_seed(std::uint64_t population_seed) {
  // Decisions draw from an Rng forked off the population seed; the content
  // seed is an independent draw so structurally identical dial vectors from
  // different population seeds still produce different apps.
  support::Rng rng(support::mix64(population_seed ^ 0x67656e2d763100ULL));

  AppSpec spec;
  // Budget bands roughly matching the paper's testbed spread: many small
  // apps (AddressBook-sized), a fat middle, a few Drupal-sized ones.
  const std::uint64_t band = rng.next_below(100);
  if (band < 40) {
    spec.line_budget = 4000 + 100 * rng.next_below(61);      // 4k..10k
  } else if (band < 85) {
    spec.line_budget = 10000 + 250 * rng.next_below(81);     // 10k..30k
  } else {
    spec.line_budget = 30000 + 500 * rng.next_below(141);    // 30k..100k
  }

  const std::uint64_t b = rng.next_below(100);
  spec.breadth = b < 30 ? 1 : b < 60 ? 2 : b < 80 ? 3 : b < 92 ? 4
                 : b < 98 ? 5 : 6;
  spec.depth = rng.next_below(4);
  spec.alias_density = rng.next_below(4);
  const std::uint64_t t = rng.next_below(100);
  spec.traps = t < 50 ? 0 : t < 75 ? 1 : t < 90 ? 2 : t < 97 ? 3 : 4;
  const std::uint64_t g = rng.next_below(100);
  spec.login_walls = g < 45 ? 0 : g < 80 ? 1 : g < 95 ? 2 : 3;
  spec.wizards = rng.next_below(3);
  spec.pagination = rng.next_below(4);

  // Platform mix mirrors the paper's 8 PHP : 3 Node testbed. Node apps get
  // substantial dead code (coverage-node reports against total declared
  // lines, vendored-but-unreachable code included); PHP apps mostly none.
  if (rng.next_below(11) < 8) {
    spec.platform = Platform::kPhp;
    spec.dead_pct = rng.next_below(100) < 25 ? 5 * (1 + rng.next_below(2)) : 0;
  } else {
    spec.platform = Platform::kNode;
    spec.dead_pct = 10 + 5 * rng.next_below(7);  // 10..40
  }

  spec.seed = rng.next();
  spec.validate();
  return spec;
}

std::vector<AppSpec> population_specs(std::uint64_t seed, std::size_t n) {
  std::vector<AppSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs.push_back(AppSpec::from_seed(support::mix64(seed) + i));
  }
  return specs;
}

}  // namespace mak::apps::generator
