// Procedural app generator: composes the feature library (apps/features)
// into SyntheticApps with closed-form ground truth, driven by an AppSpec.
//
// The central invariant is EXACT budget accounting. A generated app's total
// arena line count equals spec.line_budget to the line:
//
//   line_budget = WebApp::kFrameworkBaseLines            (fixed skeleton)
//               + framework overhead (line_budget / 5)
//               + dead code          (line_budget * dead_pct / 100)
//               + traps * kTrapLines (calendar traps, fixed size)
//               + R                  (distributed over variable features)
//
// R is split across the spec's feature slots by a largest-remainder
// weighted allocation, and every feature builder consumes its share
// exactly (absorbing integer remainders into the feature's shared-code
// parameter). Consequences the test harness relies on:
//
//   * reachable lines = line_budget - dead lines, independent of the
//     alias dial (aliases mint URLs, not code) and independent of trap
//     count (a trap's lines come out of R, not on top of it);
//   * ground truth is known without crawling: see GeneratedApp;
//   * SyntheticApp::calibrated_feature_lines() matches the model exactly
//     (make_generated verifies this and throws std::logic_error on drift).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/generator/app_spec.h"
#include "apps/synthetic_app.h"

namespace mak::apps::generator {

// Arena lines of one calendar trap as the generator configures it
// (CalendarTrap shared_lines 120 + 34 fixed).
inline constexpr std::size_t kTrapLines = 154;

// Closed-form description of a generated app; cheap (no app construction).
struct GeneratedApp {
  AppSpec spec;
  std::string name;  // spec.to_name()
  // Ground truth: total modelled lines (== spec.line_budget) and the subset
  // reachable by any crawler (total minus dead code).
  std::size_t total_lines = 0;
  std::size_t reachable_lines = 0;
};

// Framework overhead the generator assigns (line_budget / 5), mirroring the
// hand-built catalog apps where boot/vendor code sets the coverage floor.
std::size_t generated_overhead_lines(const AppSpec& spec);

// Dead lines the generator allocates (line_budget * dead_pct / 100).
std::size_t generated_dead_lines(const AppSpec& spec);

// Describe without building. Validates the spec.
GeneratedApp describe_generated(const AppSpec& spec);

// Build the app. Deterministic: byte-identical route tables and line
// layout for equal specs. Validates the spec; throws std::logic_error if
// the built app misses its calibration (a generator bug, not a user error).
std::unique_ptr<SyntheticApp> make_generated(const AppSpec& spec);

// The first n apps of the population stream rooted at `seed` (described,
// not built).
std::vector<GeneratedApp> population(std::uint64_t seed, std::size_t n);

}  // namespace mak::apps::generator
