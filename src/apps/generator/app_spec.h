// Trait grammar for procedurally generated testbed applications.
//
// An AppSpec is a small vector of structural dials — breadth/depth of the
// content mix, URL-alias density, trap count, login/wizard/pagination
// counts, a dead-code percentage — plus a target server-side line budget.
// The generator (apps/generator/generator.h) composes the feature library
// into a SyntheticApp whose total arena line count equals line_budget
// EXACTLY, so ground truth is known in closed form per spec.
//
// Everything downstream is a pure function of (seed, dials): the canonical
// name encodes every field and round-trips through from_name(), which is
// how orchestrator worker processes (which re-exec and look apps up by
// name) rebuild the identical app.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/synthetic_app.h"

namespace mak::apps::generator {

struct AppSpec {
  // Content seed: drives section-kind rotation, slugs, and any structural
  // choice not pinned by a dial. Two specs differing only in seed are
  // different apps with the same trait surface.
  std::uint64_t seed = 0;

  // Target total server-side lines (framework + features + dead code).
  // The generated app's CodeModel totals exactly this many lines.
  std::size_t line_budget = 12000;

  // Structural dials. validate() documents the accepted ranges; the bounds
  // guarantee the budget allocator always has room for at least one
  // content section.
  std::size_t breadth = 2;        // content sections, 1..6
  std::size_t depth = 1;          // link-depth dial, 0..3 (deeper trees,
                                  // more wizard steps, more variants)
  std::size_t alias_density = 0;  // URL-alias mirrors per page, 0..3
  std::size_t traps = 0;          // calendar traps, 0..4
  std::size_t login_walls = 0;    // login-gated areas, 0..3
  std::size_t wizards = 0;        // multi-step wizards, 0..3
  std::size_t pagination = 0;     // paginated flows (forum/cart), 0..3
  std::size_t dead_pct = 0;       // % of budget that is dead code, 0..40
  Platform platform = Platform::kPhp;

  bool operator==(const AppSpec&) const = default;

  // Throws std::invalid_argument naming the offending field if any dial is
  // out of range.
  void validate() const;

  // Canonical self-describing name, e.g.
  //   gen-v1-s1f3a-L12000-b2-d1-a0-t0-g1-w0-p1-x0-php
  // (s = seed in hex, L = line budget, then one letter per dial). Used as
  // the AppInfo name, so scratch directories, digests and worker lookups
  // work unchanged for generated apps.
  std::string to_name() const;

  // Parse a canonical name back into a spec. Returns nullopt if the string
  // is not a well-formed gen-v1 name; the result is validate()d.
  static std::optional<AppSpec> from_name(std::string_view name);

  // Sample a spec from a population seed: every dial drawn from a fixed
  // distribution (budget bands, trait frequencies) so a seed sweep covers
  // the trait space. Pure function of population_seed.
  static AppSpec from_seed(std::uint64_t population_seed);
};

// The first n specs of the population stream rooted at `seed`: element i is
// from_seed(mix(seed, i)), so populations with the same root are prefixes
// of each other.
std::vector<AppSpec> population_specs(std::uint64_t seed, std::size_t n);

}  // namespace mak::apps::generator
