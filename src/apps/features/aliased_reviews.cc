#include "apps/features/aliased_reviews.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void AliasedReviews::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file("review/papers.php");
  common_region_ = arena.region(params_.shared_lines);
  list_region_ = arena.region(35);
  paper_handler_region_ = arena.region(28);
  arena.file("review/review.php");
  review_handler_region_ = arena.region(40);
  review_submit_region_ = arena.region(32);
  arena.file("review/content.php");
  papers_.allocate(arena, params_.paper_count, params_.paper_variants,
                   params_.lines_per_paper_variant, params_.lines_per_entity);
  reviews_.allocate(arena, params_.paper_count, params_.review_variants,
                    params_.lines_per_review_variant,
                    params_.lines_per_entity);

  // Paper list.
  app.router().get("/papers", [this, &app](RequestContext&) {
    app.cover(common_region_);
    app.cover(list_region_);
    PageBuilder page("Submitted papers");
    page.heading("Your assigned papers");
    page.list_begin();
    for (std::size_t i = 0; i < params_.paper_count; ++i) {
      page.nav_link("/paper/" + std::to_string(i),
                    "Paper #" + std::to_string(i));
    }
    page.list_end();
    return Response::html(page.build());
  });

  // Paper page: links to the review form through BOTH aliases.
  app.router().get("/paper/:id", [this, &app](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(paper_handler_region_);
    std::size_t id = 0;
    try {
      id = std::stoul(ctx.param("id"));
    } catch (...) {
      return Response::not_found("bad paper id");
    }
    if (id >= params_.paper_count) return Response::not_found("paper");
    app.cover(papers_.variant_region(id));
    app.cover(papers_.entity_region(id));

    const std::string p = std::to_string(id);
    // Review id convention: reviewer 23's review of paper 8 is "8B23".
    const std::string rid = p + "B" + std::to_string(params_.reviewer_id);
    PageBuilder page("Paper #" + p);
    page.heading("Paper #" + p);
    page.paragraph("Abstract of paper " + p + ".");
    page.list_begin();
    page.nav_link("/review?p=" + p + "&r=" + rid, "Edit your review");
    page.nav_link("/review?p=" + p + "&m=rea", "Review (reader mode)");
    page.nav_link("/papers", "Back to the list");
    page.list_end();
    return Response::html(page.build());
  });

  // The review form: one handler, one code path, two alias URLs.
  app.router().get("/review", [this, &app](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(review_handler_region_);
    std::size_t id = 0;
    try {
      id = std::stoul(ctx.req().param("p", "0"));
    } catch (...) {
      return Response::not_found("bad paper id");
    }
    if (id >= params_.paper_count) return Response::not_found("review");
    // NOTE: the r= / m= parameters deliberately do NOT change the executed
    // code — that is the aliasing trap.
    app.cover(reviews_.variant_region(id));
    app.cover(reviews_.entity_region(id));

    const std::string p = std::to_string(id);
    PageBuilder page("Review paper #" + p);
    page.heading("Review form — paper #" + p);
    FormSpec form;
    form.action = "/review/submit";
    form.method = "post";
    form.hidden_field("p", p);
    form.text_field("summary");
    form.select_field("score", {"1", "2", "3", "4", "5"});
    form.textarea("comments");
    form.submit_label = "Save review";
    page.form(form);
    page.link("/paper/" + p, "Back to paper #" + p);
    return Response::html(page.build());
  });

  app.router().post("/review/submit", [this, &app](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(review_submit_region_);
    const std::string p = ctx.req().form_value("p", "0");
    ctx.sess().push_list("reviews", p);
    return Response::redirect("/paper/" + p);
  });

  if (params_.link_from_home) {
    app.add_home_link("/papers", "Assigned papers");
  }
}


std::size_t AliasedReviews::calibrated_lines() const {
  return params_.shared_lines + 35 + 28 + 40 + 32 +
         params_.paper_variants * params_.lines_per_paper_variant +
         params_.review_variants * params_.lines_per_review_variant +
         2 * params_.paper_count * params_.lines_per_entity;
}

}  // namespace mak::apps
