#include "apps/features/mutable_shortcuts.h"

#include "url/url.h"
#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void MutableShortcuts::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/shortcuts.php");
  common_region_ = arena.region(params_.shared_lines);
  panel_region_ = arena.region(38);
  add_region_ = arena.region(20);
  go_region_ = arena.region(12);

  const std::string base = "/" + params_.slug + "/shortcuts";

  app.router().get(base, [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(panel_region_);
    PageBuilder page("Shortcuts");
    page.heading("Your shortcuts");
    page.list_begin();
    for (const auto& shortcut : ctx.sess().get_list("shortcuts")) {
      page.nav_link("/" + params_.slug + "/go/" + url::encode_component(shortcut),
                    shortcut);
    }
    page.list_end();
    FormSpec form;
    form.action = base + "/add";
    form.method = "post";
    form.text_field("label");
    form.submit_label = "Add shortcut";
    page.form(form);
    return Response::html(page.build());
  });

  app.router().post(base + "/add", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(add_region_);
    const std::string label = ctx.req().form_value("label");
    if (!label.empty() &&
        ctx.sess().get_list("shortcuts").size() < params_.max_shortcuts) {
      ctx.sess().push_list("shortcuts", label);
    }
    return Response::redirect(base);
  });

  // Following a user-created shortcut: the target is an arbitrary string
  // the crawler typed, so resolution always fails (navigation error).
  app.router().get("/" + params_.slug + "/go/:label",
                   [this, &app](RequestContext& ctx) {
                     app.cover(common_region_);
                     app.cover(go_region_);
                     return Response::not_found("shortcut target " +
                                                ctx.param("label"));
                   });

  if (params_.link_from_home) {
    app.add_home_link(base, "Shortcuts");
  }
}


std::size_t MutableShortcuts::calibrated_lines() const {
  return params_.shared_lines + 38 + 20 + 12;
}

}  // namespace mak::apps
