// Server-side form validation gate.
//
// A signup form whose handler validates its fields the way real
// applications do: the email needs '@' and a dot, the age must parse into
// [18, 99], the username must be non-empty alphanumeric. Only a VALID
// submission executes the success path (profile creation, welcome page,
// member area); invalid input hits a short error path. Crawlers that fill
// inputs with junk never unlock the gated region — the "sophisticated input
// filling" dimension the paper notes as a GET_ACTIONS difference between
// crawlers (Section III). bench/input_strategies measures it.
#pragma once

#include <string>

#include "apps/feature.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct ValidatedSignupParams {
  std::string slug = "signup";
  std::size_t success_lines = 180;  // profile-creation + welcome code
  std::size_t member_pages = 6;     // gated pages behind a valid signup
  std::size_t lines_per_member_page = 30;
  bool link_from_home = true;
};

class ValidatedSignup final : public Feature {
 public:
  explicit ValidatedSignup(ValidatedSignupParams params)
      : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  std::string flag_key() const { return params_.slug + ".member"; }

  ValidatedSignupParams params_;
  webapp::CodeRegion form_region_;
  webapp::CodeRegion validate_region_;
  webapp::CodeRegion reject_region_;
  webapp::CodeRegion success_region_;
  webapp::CodeRegion member_guard_region_;
  std::vector<webapp::CodeRegion> member_regions_;
};

}  // namespace mak::apps
