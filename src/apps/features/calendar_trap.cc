#include "apps/features/calendar_trap.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void CalendarTrap::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/calendar.php");
  common_region_ = arena.region(params_.shared_lines);
  render_region_ = arena.region(34);

  const std::string base = "/" + params_.slug;

  app.router().get(base, [this, &app, base](RequestContext& ctx) {
    // One region regardless of the month: the trap yields no new coverage.
    app.cover(common_region_);
    app.cover(render_region_);
    std::size_t month = params_.start_month;
    try {
      month = std::stoul(
          ctx.req().param("month", std::to_string(params_.start_month)));
    } catch (...) {
      month = params_.start_month;
    }
    if (month >= params_.month_count) month = params_.start_month;

    PageBuilder page("Calendar — month " + std::to_string(month));
    page.heading("Archive for month " + std::to_string(month));
    page.paragraph("No entries for this month.");
    page.list_begin();
    // The day grid: a burst of junk links, contiguous in discovery order.
    for (std::size_t d = 1; d <= params_.days_per_month; ++d) {
      page.nav_link(base + "/day?month=" + std::to_string(month) +
                        "&d=" + std::to_string(d),
                    "Day " + std::to_string(d));
    }
    if (month + 1 < params_.month_count) {
      page.nav_link(base + "?month=" + std::to_string(month + 1),
                    "Next month");
    }
    if (month > 0) {
      page.nav_link(base + "?month=" + std::to_string(month - 1),
                    "Previous month");
    }
    page.list_end();
    return Response::html(page.build());
  });

  if (params_.days_per_month > 0) {
    app.router().get(base + "/day", [this, &app, base](RequestContext& ctx) {
      // Same shared code as the month view; a day page yields nothing new.
      app.cover(common_region_);
      const std::string month =
          ctx.req().param("month", std::to_string(params_.start_month));
      PageBuilder page("Day view");
      page.heading("No entries on day " + ctx.req().param("d", "1"));
      page.link(base + "?month=" + month, "Back to the month");
      return Response::html(page.build());
    });
  }

  if (params_.link_from_home) {
    app.add_home_link(base + "?month=" + std::to_string(params_.start_month),
                      "Calendar");
  }
}


std::size_t CalendarTrap::calibrated_lines() const {
  return params_.shared_lines + 34;
}

}  // namespace mak::apps
