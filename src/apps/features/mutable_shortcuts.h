// Self-modifying page, the Drupal shortcut pattern (Section III-A, Figure 1
// bottom).
//
// A private dashboard page carries a form for adding "shortcut" links. Every
// submission appends a new link to the page; the crawlers generate arbitrary
// strings, so the created links always trigger navigation errors. For
// QExplore, each new link changes the page's interactable-attribute sequence
// and therefore mints an unbounded stream of new states with no coverage
// behind them.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct MutableShortcutsParams {
  std::string slug = "dashboard";
  std::size_t max_shortcuts = 500;  // server-side cap per session
  std::size_t shared_lines = 150;   // shortcut module shared code
  bool link_from_home = true;
};

class MutableShortcuts final : public Feature {
 public:
  explicit MutableShortcuts(MutableShortcutsParams params)
      : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  MutableShortcutsParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion panel_region_;
  webapp::CodeRegion add_region_;
  webapp::CodeRegion go_region_;
};

}  // namespace mak::apps
