#include "apps/features/deep_wizard.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void DeepWizard::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/wizard.php");
  common_region_ = arena.region(params_.shared_lines);
  start_region_ = arena.region(24);
  guard_region_ = arena.region(14);
  finish_region_ = arena.region(30);
  for (std::size_t i = 0; i < params_.steps; ++i) {
    step_regions_.push_back(arena.region(params_.lines_per_step));
  }

  const std::string base = "/" + params_.slug;

  app.router().get(base + "/start", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(start_region_);
    if (!ctx.sess().has(progress_key())) {
      ctx.sess().set_int(progress_key(), 0);  // initialize, never reset
    }
    PageBuilder page(params_.title);
    page.heading(params_.title);
    page.paragraph("This wizard has " + std::to_string(params_.steps) +
                   " steps.");
    page.link(base + "/step/1", "Begin step 1");
    return Response::html(page.build());
  });

  app.router().get(base + "/step/:i", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(guard_region_);
    std::size_t i = 0;
    try {
      i = std::stoul(ctx.param("i"));
    } catch (...) {
      return Response::not_found("bad step");
    }
    if (i == 0 || i > params_.steps) return Response::not_found("step");
    const std::int64_t raw_progress = ctx.sess().get_int(progress_key(), -1);
    if (raw_progress < 0) {
      return Response::redirect(base + "/start");
    }
    const auto progress = static_cast<std::size_t>(raw_progress);
    if (i > progress + 1) {
      // Skipping ahead resumes at the furthest unlocked step.
      return Response::redirect(base + "/step/" +
                                std::to_string(progress + 1));
    }
    app.cover(step_regions_[i - 1]);

    PageBuilder page(params_.title + " — step " + std::to_string(i));
    page.heading("Step " + std::to_string(i) + " of " +
                 std::to_string(params_.steps));
    FormSpec form;
    form.action = base + "/step/" + std::to_string(i) + "/complete";
    form.method = "post";
    form.text_field("choice", "default-" + std::to_string(i));
    form.submit_label = "Continue";
    page.form(form);
    return Response::html(page.build());
  });

  app.router().post(base + "/step/:i/complete",
                    [this, &app, base](RequestContext& ctx) {
                      app.cover(common_region_);
                      app.cover(guard_region_);
                      std::size_t i = 0;
                      try {
                        i = std::stoul(ctx.param("i"));
                      } catch (...) {
                        return Response::not_found("bad step");
                      }
                      const auto progress = ctx.sess().get_int(progress_key(), -1);
                      if (progress < 0 || i > params_.steps) {
                        return Response::redirect(base + "/start");
                      }
                      const auto next =
                          static_cast<std::size_t>(progress) + 1;
                      if (i != next) {
                        // Re-submitting a completed step keeps the session
                        // where it is; it does not rewind progress.
                        return Response::redirect(
                            base + "/step/" +
                            std::to_string(next > params_.steps ? params_.steps
                                                                : next));
                      }
                      ctx.sess().set_int(progress_key(),
                                         static_cast<std::int64_t>(i));
                      if (i == params_.steps) {
                        return Response::redirect(base + "/done");
                      }
                      return Response::redirect(base + "/step/" +
                                                std::to_string(i + 1));
                    });

  app.router().get(base + "/done", [this, &app](RequestContext& ctx) {
    app.cover(common_region_);
    const auto progress = ctx.sess().get_int(progress_key(), -1);
    if (progress < static_cast<std::int64_t>(params_.steps)) {
      return Response::redirect("/" + params_.slug + "/start");
    }
    app.cover(finish_region_);
    PageBuilder page(params_.title + " — complete");
    page.heading("All done");
    page.paragraph("The wizard completed successfully.");
    return Response::html(page.build());
  });

  if (params_.link_from_home) {
    app.add_home_link(base + "/start", params_.title);
  }
}


std::size_t DeepWizard::calibrated_lines() const {
  return params_.shared_lines + 24 + 14 + 30 +
         params_.steps * params_.lines_per_step;
}

}  // namespace mak::apps
