// Shopping-cart flow, the OsCommerce pattern — and the paper's reward
// example (Section IV-C).
//
// The checkout button executes *different* server-side code depending on
// whether the cart is empty (error path) or filled (purchase path).
// Executing the same action twice can therefore yield new coverage — which
// curiosity rewards cannot see, but a link/coverage-correlated reward can.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "apps/variant_set.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct CartFlowParams {
  std::string slug = "shop";
  std::size_t product_count = 40;
  std::size_t products_per_page = 10;
  std::size_t product_variants = 12;  // product-page branches
  std::size_t lines_per_product_variant = 40;
  std::size_t lines_per_product = 2;  // per-product micro-branches
  std::size_t shared_lines = 400;  // catalog/cart engine shared code
  bool link_from_home = true;
};

class CartFlow final : public Feature {
 public:
  explicit CartFlow(CartFlowParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  CartFlowParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion catalog_region_;
  webapp::CodeRegion product_handler_region_;
  webapp::CodeRegion add_region_;
  webapp::CodeRegion cart_view_region_;
  webapp::CodeRegion checkout_empty_region_;   // error path: empty cart
  webapp::CodeRegion checkout_filled_region_;  // purchase path
  webapp::CodeRegion confirm_region_;
  VariantSet products_;
};

}  // namespace mak::apps
