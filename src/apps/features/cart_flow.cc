#include "apps/features/cart_flow.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void CartFlow::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/catalog.php");
  common_region_ = arena.region(params_.shared_lines);
  catalog_region_ = arena.region(36);
  product_handler_region_ = arena.region(26);
  arena.file(params_.slug + "/cart.php");
  add_region_ = arena.region(24);
  cart_view_region_ = arena.region(30);
  checkout_empty_region_ = arena.region(16);
  checkout_filled_region_ = arena.region(48);
  confirm_region_ = arena.region(26);
  arena.file(params_.slug + "/products.php");
  products_.allocate(arena, params_.product_count, params_.product_variants,
                     params_.lines_per_product_variant,
                     params_.lines_per_product);

  const std::string base = "/" + params_.slug;
  const std::size_t pages =
      (params_.product_count + params_.products_per_page - 1) /
      params_.products_per_page;

  app.router().get(base, [this, &app, base, pages](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(catalog_region_);
    std::size_t pg = 0;
    try {
      pg = std::stoul(ctx.req().param("page", "0"));
    } catch (...) {
      pg = 0;
    }
    if (pg >= pages) pg = 0;
    PageBuilder page("Catalog — page " + std::to_string(pg));
    page.heading("Products");
    page.list_begin();
    const std::size_t begin = pg * params_.products_per_page;
    const std::size_t end =
        std::min(begin + params_.products_per_page, params_.product_count);
    for (std::size_t i = begin; i < end; ++i) {
      page.nav_link(base + "/product/" + std::to_string(i),
                    "Product " + std::to_string(i));
    }
    page.list_end();
    if (pg + 1 < pages) {
      page.link(base + "?page=" + std::to_string(pg + 1), "Next page");
    }
    page.link(base + "/cart", "View cart");
    return Response::html(page.build());
  });

  app.router().get(base + "/product/:id",
                   [this, &app, base](RequestContext& ctx) {
                     app.cover(common_region_);
                     app.cover(product_handler_region_);
                     std::size_t id = 0;
                     try {
                       id = std::stoul(ctx.param("id"));
                     } catch (...) {
                       return Response::not_found("bad product");
                     }
                     if (id >= params_.product_count) {
                       return Response::not_found("product");
                     }
                     app.cover(products_.variant_region(id));
                     app.cover(products_.entity_region(id));
                     const std::string p = std::to_string(id);
                     PageBuilder page("Product " + p);
                     page.heading("Product " + p);
                     page.paragraph("Detailed description of product " + p + ".");
                     FormSpec form;
                     form.action = base + "/cart/add";
                     form.method = "post";
                     form.hidden_field("product", p);
                     form.select_field("quantity", {"1", "2", "3"});
                     form.submit_label = "Add to cart";
                     page.form(form);
                     page.link(base, "Back to the catalog");
                     page.link(base + "/cart", "View cart");
                     return Response::html(page.build());
                   });

  app.router().post(base + "/cart/add", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(add_region_);
    const std::string product = ctx.req().form_value("product");
    if (!product.empty()) {
      ctx.sess().push_list(params_.slug + ".cart", product);
    }
    return Response::redirect(base + "/cart");
  });

  app.router().get(base + "/cart", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(cart_view_region_);
    const auto& items = ctx.sess().get_list(params_.slug + ".cart");
    PageBuilder page("Your cart");
    page.heading("Shopping cart");
    if (items.empty()) {
      page.paragraph("The cart is empty.");
    } else {
      page.list_begin();
      for (const auto& item : items) page.list_item("Product " + item);
      page.list_end();
    }
    page.button(base + "/checkout", "Checkout", "post");
    page.link(base, "Continue shopping");
    return Response::html(page.build());
  });

  // The paper's example: same button, different code depending on state.
  app.router().post(base + "/checkout", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    const auto& items = ctx.sess().get_list(params_.slug + ".cart");
    if (items.empty()) {
      app.cover(checkout_empty_region_);
      PageBuilder page("Checkout error");
      page.heading("Cannot check out");
      page.paragraph("Your cart is empty.");
      page.link(base, "Back to the catalog");
      return Response::html(page.build());
    }
    app.cover(checkout_filled_region_);
    ctx.sess().clear_list(params_.slug + ".cart");
    return Response::redirect(base + "/order/confirm");
  });

  app.router().get(base + "/order/confirm", [this, &app, base](
                                                RequestContext&) {
    app.cover(common_region_);
    app.cover(confirm_region_);
    PageBuilder page("Order confirmed");
    page.heading("Thank you for your order");
    page.link(base, "Back to the catalog");
    return Response::html(page.build());
  });

  if (params_.link_from_home) {
    app.add_home_link(base, "Shop");
    app.add_home_link(base + "/cart", "Cart");
  }
}


std::size_t CartFlow::calibrated_lines() const {
  return params_.shared_lines + 36 + 26 + 24 + 30 + 16 + 48 + 26 +
         params_.product_variants * params_.lines_per_product_variant +
         params_.product_count * params_.lines_per_product;
}

}  // namespace mak::apps
