// Breadth-oriented content features.
//
// StaticSection: a tree of content pages (fanout x depth); every page has
// its own code region, so coverage grows with each newly visited page.
// Rewards breadth-first exploration.
//
// NewsArchive: a flat archive of many articles behind a chunked index;
// coverage is dominated by the per-article regions, of which a 30-minute
// budget only reaches a part — the source of run-to-run variance on the
// large apps (WordPress, Drupal).
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "apps/variant_set.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct StaticSectionParams {
  std::string slug = "docs";       // URL prefix: /<slug>/p/<id>
  std::string title = "Documentation";
  std::size_t page_count = 40;     // total pages in the tree
  std::size_t fanout = 4;          // children per page
  std::size_t variants = 12;       // page-template branches (Zipf-assigned)
  std::size_t lines_per_variant = 60;
  std::size_t lines_per_entity = 3;  // per-page micro-branches
  std::size_t cross_links = 2;     // extra deterministic cross links per page
  std::size_t shared_lines = 150;  // section code shared by all its pages
  // URL-alias mirrors (the HotCRP pattern): every page is additionally
  // served under /<slug>/alt<k>/<id> for k in [1, alias_routes], executing
  // the same regions. Cross links rotate through the mirrors, so crawlers
  // that key state on exact URLs see alias_routes + 1 URLs per page while
  // the server-side line count is unchanged.
  std::size_t alias_routes = 0;
  bool link_from_home = true;
};

class StaticSection final : public Feature {
 public:
  explicit StaticSection(StaticSectionParams params)
      : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  StaticSectionParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion handler_region_;
  VariantSet pages_;
};

struct NewsArchiveParams {
  std::string slug = "news";
  std::string title = "News";
  std::size_t article_count = 300;
  std::size_t index_page_size = 12;  // articles listed per index chunk
  std::size_t variants = 25;         // article-rendering branches
  std::size_t lines_per_variant = 70;
  std::size_t lines_per_entity = 3;
  std::size_t shared_lines = 350;  // archive code shared by all articles
  bool link_from_home = true;
};

class NewsArchive final : public Feature {
 public:
  explicit NewsArchive(NewsArchiveParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  NewsArchiveParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion index_region_;
  webapp::CodeRegion article_handler_region_;
  VariantSet articles_;
};

}  // namespace mak::apps
