// Forum with boards, paginated topic lists and threads (the PhpBB/Vanilla
// pattern).
//
// Link discovery grows quickly (every list page mints many topic links)
// while code coverage saturates: all topics of a board share the same
// handler, with only a small unique region each. The mismatch between link
// growth and coverage growth exercises MAK's standardized reward.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "apps/variant_set.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct PaginatedForumParams {
  std::string slug = "forum";
  std::size_t board_count = 6;
  std::size_t topics_per_board = 30;
  std::size_t topics_per_page = 8;
  std::size_t posts_per_topic = 3;
  std::size_t lines_per_board = 30;
  std::size_t topic_variants = 15;   // thread-rendering branches
  std::size_t lines_per_topic_variant = 45;
  std::size_t lines_per_topic = 2;   // per-thread micro-branches
  std::size_t shared_lines = 350;  // forum engine shared code
  // Vulnerability toggle: the board page parameter is concatenated into a
  // "query" unsanitized; a quote character surfaces a database error page.
  bool sqli_page_param = false;
  // Vulnerability toggle: replies are rendered back without escaping
  // (stored XSS) — one vulnerable injection point PER TOPIC, so findings
  // scale with how much of the forum the crawler actually discovered.
  bool stored_xss_replies = false;
  bool enable_reply_form = true;
  bool link_from_home = true;
};

class PaginatedForum final : public Feature {
 public:
  explicit PaginatedForum(PaginatedForumParams params)
      : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  std::size_t topic_id(std::size_t board, std::size_t index) const {
    return board * params_.topics_per_board + index;
  }

  PaginatedForumParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion index_region_;
  webapp::CodeRegion board_handler_region_;
  webapp::CodeRegion topic_handler_region_;
  webapp::CodeRegion reply_region_;
  std::vector<webapp::CodeRegion> board_regions_;
  VariantSet topics_;
};

}  // namespace mak::apps
