#include "apps/features/static_section.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void StaticSection::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/section.php");
  common_region_ = arena.region(params_.shared_lines);
  handler_region_ = arena.region(30);
  pages_.allocate(arena, params_.page_count, params_.variants,
                  params_.lines_per_variant, params_.lines_per_entity);

  // Path of page `id`, rotated through the alias mirrors: salt picks which
  // of the alias_routes + 1 equivalent URL spellings a link uses.
  const auto page_path = [this](std::size_t id, std::size_t salt) {
    const std::size_t spellings = params_.alias_routes + 1;
    const std::size_t mirror = (id + salt) % spellings;
    const std::string segment =
        mirror == 0 ? std::string("p") : "alt" + std::to_string(mirror);
    return "/" + params_.slug + "/" + segment + "/" + std::to_string(id);
  };

  const auto handler = [this, &app, page_path](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(handler_region_);
    std::size_t id = 0;
    try {
      id = std::stoul(ctx.param("id"));
    } catch (...) {
      return Response::not_found("bad page id");
    }
    if (id >= params_.page_count) {
      return Response::not_found(params_.slug + " page");
    }
    app.cover(pages_.variant_region(id));
    app.cover(pages_.entity_region(id));

    PageBuilder page(params_.title + " #" + std::to_string(id));
    page.heading(params_.title + " — page " + std::to_string(id));
    page.paragraph("Static content for " + params_.slug + " page " +
                   std::to_string(id) + ".");
    page.list_begin();
    // Tree children.
    for (std::size_t c = 1; c <= params_.fanout; ++c) {
      const std::size_t child = id * params_.fanout + c;
      if (child < params_.page_count) {
        page.nav_link(page_path(child, 0),
                      params_.title + " " + std::to_string(child));
      }
    }
    // Deterministic cross links (siblings elsewhere in the tree), spelled
    // through rotating alias mirrors when the dial is on.
    for (std::size_t k = 1; k <= params_.cross_links; ++k) {
      const std::size_t other = (id * 7 + k * 13) % params_.page_count;
      if (other != id) {
        page.nav_link(page_path(other, k),
                      "See also " + std::to_string(other));
      }
    }
    if (id != 0) {
      page.nav_link(page_path(0, id), params_.title + " home");
    }
    page.list_end();
    return Response::html(page.build());
  };

  app.router().get("/" + params_.slug + "/p/:id", handler);
  for (std::size_t k = 1; k <= params_.alias_routes; ++k) {
    app.router().get("/" + params_.slug + "/alt" + std::to_string(k) + "/:id",
                     handler);
  }

  if (params_.link_from_home) {
    app.add_home_link("/" + params_.slug + "/p/0", params_.title);
  }
}

std::size_t StaticSection::calibrated_lines() const {
  return params_.shared_lines + 30 +
         params_.variants * params_.lines_per_variant +
         params_.page_count * params_.lines_per_entity;
}

void NewsArchive::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/archive.php");
  common_region_ = arena.region(params_.shared_lines);
  index_region_ = arena.region(40);
  article_handler_region_ = arena.region(25);
  arena.file(params_.slug + "/articles.php");
  articles_.allocate(arena, params_.article_count, params_.variants,
                     params_.lines_per_variant, params_.lines_per_entity);

  const std::size_t chunks =
      (params_.article_count + params_.index_page_size - 1) /
      params_.index_page_size;

  // Chunked index: /<slug>?chunk=N
  app.router().get("/" + params_.slug, [this, &app, chunks](
                                           RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(index_region_);
    std::size_t chunk = 0;
    try {
      chunk = std::stoul(ctx.req().param("chunk", "0"));
    } catch (...) {
      chunk = 0;
    }
    if (chunk >= chunks) chunk = 0;

    PageBuilder page(params_.title + " — archive " + std::to_string(chunk));
    page.heading(params_.title);
    page.list_begin();
    const std::size_t begin = chunk * params_.index_page_size;
    const std::size_t end =
        std::min(begin + params_.index_page_size, params_.article_count);
    for (std::size_t i = begin; i < end; ++i) {
      page.nav_link("/" + params_.slug + "/a/" + std::to_string(i),
                    params_.title + " story " + std::to_string(i));
    }
    page.list_end();
    if (chunk + 1 < chunks) {
      page.link("/" + params_.slug + "?chunk=" + std::to_string(chunk + 1),
                "Older stories");
    }
    if (chunk > 0) {
      page.link("/" + params_.slug + "?chunk=" + std::to_string(chunk - 1),
                "Newer stories");
    }
    return Response::html(page.build());
  });

  app.router().get(
      "/" + params_.slug + "/a/:id", [this, &app](RequestContext& ctx) {
        app.cover(common_region_);
        app.cover(article_handler_region_);
        std::size_t id = 0;
        try {
          id = std::stoul(ctx.param("id"));
        } catch (...) {
          return Response::not_found("bad article id");
        }
        if (id >= params_.article_count) {
          return Response::not_found("article");
        }
        app.cover(articles_.variant_region(id));
        app.cover(articles_.entity_region(id));

        PageBuilder page(params_.title + " story " + std::to_string(id));
        page.heading("Story " + std::to_string(id));
        page.paragraph("Long-form article body number " + std::to_string(id) +
                       " with enough text to look like a real story.");
        page.list_begin();
        if (id + 1 < params_.article_count) {
          page.nav_link("/" + params_.slug + "/a/" + std::to_string(id + 1),
                        "Next story");
        }
        if (id > 0) {
          page.nav_link("/" + params_.slug + "/a/" + std::to_string(id - 1),
                        "Previous story");
        }
        page.nav_link("/" + params_.slug, "Back to the archive");
        page.list_end();
        return Response::html(page.build());
      });

  if (params_.link_from_home) {
    app.add_home_link("/" + params_.slug, params_.title);
  }
}

std::size_t NewsArchive::calibrated_lines() const {
  return params_.shared_lines + 40 + 25 +
         params_.variants * params_.lines_per_variant +
         params_.article_count * params_.lines_per_entity;
}

}  // namespace mak::apps
