// Login wall guarding a private section.
//
// The login form is prefilled with a valid username (the standard testbed
// fixture); any non-empty password is accepted. A successful login sets a
// session flag unlocking a tree of private pages. Crawlers that never
// submit the form miss the entire section.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "apps/variant_set.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct LoginAreaParams {
  std::string slug = "account";
  std::string username = "admin";
  std::size_t private_pages = 15;
  std::size_t page_variants = 6;   // private-page template branches
  std::size_t lines_per_variant = 45;
  std::size_t lines_per_page = 3;  // per-page micro-branches
  std::size_t shared_lines = 250;  // auth subsystem shared code
  bool link_from_home = true;
};

class LoginArea final : public Feature {
 public:
  explicit LoginArea(LoginAreaParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  std::string flag_key() const { return params_.slug + ".logged_in"; }

  LoginAreaParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion login_form_region_;
  webapp::CodeRegion login_check_region_;
  webapp::CodeRegion login_fail_region_;
  webapp::CodeRegion guard_region_;
  webapp::CodeRegion logout_region_;
  VariantSet pages_;
};

}  // namespace mak::apps
