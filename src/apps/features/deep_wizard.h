// Sequentially unlocked multi-step flow (submission wizards, checkout
// funnels, budget setup).
//
// Step i+1 is only reachable after step i has been completed in the current
// session; each step executes its own server-side region. Depth-first
// exploration shines here: the newest discovered link is always the next
// step. Breadth-first keeps deferring the chain and pays a long delay.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct DeepWizardParams {
  std::string slug = "wizard";
  std::string title = "Setup wizard";
  std::size_t steps = 12;
  std::size_t lines_per_step = 28;
  std::size_t shared_lines = 180;  // wizard engine shared code
  bool link_from_home = true;
};

class DeepWizard final : public Feature {
 public:
  explicit DeepWizard(DeepWizardParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  std::string progress_key() const { return params_.slug + ".progress"; }

  DeepWizardParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion start_region_;
  webapp::CodeRegion guard_region_;
  webapp::CodeRegion finish_region_;
  std::vector<webapp::CodeRegion> step_regions_;
};

}  // namespace mak::apps
