#include "apps/features/validated_signup.h"

#include <cctype>

#include "support/strings.h"
#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

namespace {

bool valid_email(const std::string& email) {
  const std::size_t at = email.find('@');
  if (at == std::string::npos || at == 0) return false;
  return email.find('.', at) != std::string::npos;
}

bool valid_age(const std::string& age) {
  if (age.empty() || age.size() > 3) return false;
  for (char c : age) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  const int value = std::stoi(age);
  return value >= 18 && value <= 99;
}

bool valid_username(const std::string& username) {
  if (username.empty()) return false;
  for (char c : username) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

void ValidatedSignup::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/signup.php");
  form_region_ = arena.region(24);
  validate_region_ = arena.region(30);
  reject_region_ = arena.region(14);
  success_region_ = arena.region(params_.success_lines);
  member_guard_region_ = arena.region(10);
  for (std::size_t i = 0; i < params_.member_pages; ++i) {
    member_regions_.push_back(arena.region(params_.lines_per_member_page));
  }

  const std::string base = "/" + params_.slug;

  app.router().get(base, [this, &app, base](RequestContext&) {
    app.cover(form_region_);
    PageBuilder page("Sign up");
    page.heading("Create your account");
    FormSpec form;
    form.action = base;
    form.method = "post";
    form.text_field("username");
    form.fields.push_back(FormSpec::Field{"email", "email", "", {}});
    form.fields.push_back(FormSpec::Field{"age", "number", "", {}});
    form.submit_label = "Sign up";
    page.form(form);
    return Response::html(page.build());
  });

  app.router().post(base, [this, &app, base](RequestContext& ctx) {
    app.cover(validate_region_);
    const std::string username = ctx.req().form_value("username");
    const std::string email = ctx.req().form_value("email");
    const std::string age = ctx.req().form_value("age");
    if (!valid_username(username) || !valid_email(email) || !valid_age(age)) {
      app.cover(reject_region_);
      PageBuilder page("Sign up failed");
      page.heading("Please fix the errors");
      page.paragraph("Username must be alphanumeric, the email must be real "
                     "and the age between 18 and 99.");
      page.link(base, "Back to the form");
      return Response::html(page.build());
    }
    app.cover(success_region_);
    ctx.sess().set_flag(flag_key(), true);
    return Response::redirect(base + "/welcome");
  });

  app.router().get(base + "/welcome", [this, &app, base](RequestContext& ctx) {
    app.cover(member_guard_region_);
    if (!ctx.sess().get_flag(flag_key())) return Response::redirect(base);
    PageBuilder page("Welcome");
    page.heading("Welcome aboard");
    page.list_begin();
    for (std::size_t i = 0; i < params_.member_pages; ++i) {
      page.nav_link(base + "/member/" + std::to_string(i),
                    "Member page " + std::to_string(i));
    }
    page.list_end();
    return Response::html(page.build());
  });

  app.router().get(base + "/member/:id",
                   [this, &app, base](RequestContext& ctx) {
                     app.cover(member_guard_region_);
                     if (!ctx.sess().get_flag(flag_key())) {
                       return Response::redirect(base);
                     }
                     std::size_t id = 0;
                     try {
                       id = std::stoul(ctx.param("id"));
                     } catch (...) {
                       return Response::not_found("bad member page");
                     }
                     if (id >= params_.member_pages) {
                       return Response::not_found("member page");
                     }
                     app.cover(member_regions_[id]);
                     PageBuilder page("Member page " + std::to_string(id));
                     page.heading("Members only: " + std::to_string(id));
                     page.link(base + "/welcome", "Back");
                     return Response::html(page.build());
                   });

  if (params_.link_from_home) {
    app.add_home_link(base, "Sign up");
  }
}


std::size_t ValidatedSignup::calibrated_lines() const {
  return 24 + 30 + 14 + 10 + params_.success_lines +
         params_.member_pages * params_.lines_per_member_page;
}

}  // namespace mak::apps
