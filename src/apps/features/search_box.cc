#include "apps/features/search_box.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void SearchBox::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/search.php");
  common_region_ = arena.region(params_.shared_lines);
  form_region_ = arena.region(22);
  results_region_ = arena.region(35);

  const std::string base = "/" + params_.slug;

  app.router().get(base, [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    const std::string query = ctx.req().param("q");
    PageBuilder page("Search");
    if (query.empty()) {
      app.cover(form_region_);
      page.heading("Search the site");
    } else {
      // The same code executes for EVERY query; results are a fixed set of
      // already-linked pages. No server-side state changes.
      app.cover(form_region_);
      app.cover(results_region_);
      page.heading("Results for \"" + query + "\"");
      if (params_.reflect_unescaped) {
        // BUG (intentional): raw echo of attacker-controlled input.
        page.raw("<div class=\"echo\">" + query + "</div>");
      }
      page.list_begin();
      for (const auto& path : params_.result_paths) {
        page.nav_link(path, "Result: " + path);
      }
      page.list_end();
    }
    FormSpec form;
    form.action = base;
    form.method = "get";
    form.fields.push_back(FormSpec::Field{"q", "search", "", {}});
    form.submit_label = "Search";
    page.form(form);
    return Response::html(page.build());
  });

  if (params_.link_from_home) {
    app.add_home_link(base, "Search");
  }
}


std::size_t SearchBox::calibrated_lines() const {
  return params_.shared_lines + 22 + 35;
}

}  // namespace mak::apps
