// URL aliasing, the HotCRP pattern (Section III-A, Figure 1 top).
//
// Each paper's review form is reachable through two different URLs that
// carry distinct query parameters (r=<reviewId> and m=rea) but execute the
// same server-side code. WebExplor's exact-URL state matching creates a
// separate state for every alias, inflating the state space with no
// coverage gain.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "apps/variant_set.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct AliasedReviewsParams {
  std::size_t paper_count = 30;
  std::size_t paper_variants = 10;    // paper-page branches
  std::size_t lines_per_paper_variant = 35;
  std::size_t review_variants = 10;   // review-form branches
  std::size_t lines_per_review_variant = 45;
  std::size_t lines_per_entity = 2;   // per-paper micro-branches
  std::size_t reviewer_id = 23;       // appears in the r= alias
  std::size_t shared_lines = 400;     // review subsystem shared code
  bool link_from_home = true;
};

class AliasedReviews final : public Feature {
 public:
  explicit AliasedReviews(AliasedReviewsParams params)
      : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  AliasedReviewsParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion list_region_;
  webapp::CodeRegion paper_handler_region_;
  webapp::CodeRegion review_handler_region_;
  webapp::CodeRegion review_submit_region_;
  VariantSet papers_;
  VariantSet reviews_;
};

}  // namespace mak::apps
