#include "apps/features/login_area.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void LoginArea::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/auth.php");
  common_region_ = arena.region(params_.shared_lines);
  login_form_region_ = arena.region(20);
  login_check_region_ = arena.region(26);
  login_fail_region_ = arena.region(12);
  guard_region_ = arena.region(10);
  logout_region_ = arena.region(10);
  arena.file(params_.slug + "/private.php");
  pages_.allocate(arena, params_.private_pages, params_.page_variants,
                  params_.lines_per_variant, params_.lines_per_page);

  const std::string base = "/" + params_.slug;

  app.router().get(base + "/login", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(login_form_region_);
    PageBuilder page("Sign in");
    page.heading("Sign in");
    if (ctx.sess().get_flag(flag_key())) {
      page.paragraph("You are already signed in.");
      page.link(base + "/home", "Go to your account");
    }
    FormSpec form;
    form.action = base + "/login";
    form.method = "post";
    form.text_field("username", params_.username);  // prefilled fixture
    form.password_field("password");
    form.submit_label = "Sign in";
    page.form(form);
    return Response::html(page.build());
  });

  app.router().post(base + "/login", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(login_check_region_);
    const std::string username = ctx.req().form_value("username");
    const std::string password = ctx.req().form_value("password");
    if (username != params_.username || password.empty()) {
      app.cover(login_fail_region_);
      PageBuilder page("Sign in failed");
      page.heading("Invalid credentials");
      page.link(base + "/login", "Try again");
      return Response::html(page.build());
    }
    ctx.sess().set_flag(flag_key(), true);
    return Response::redirect(base + "/home");
  });

  app.router().get(base + "/logout", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(logout_region_);
    ctx.sess().set_flag(flag_key(), false);
    return Response::redirect(base + "/login");
  });

  app.router().get(base + "/home", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(guard_region_);
    if (!ctx.sess().get_flag(flag_key())) {
      return Response::redirect(base + "/login");
    }
    PageBuilder page("Your account");
    page.heading("Account home");
    page.list_begin();
    for (std::size_t i = 0; i < params_.private_pages; ++i) {
      page.nav_link(base + "/page/" + std::to_string(i),
                    "Private page " + std::to_string(i));
    }
    page.nav_link(base + "/logout", "Sign out");
    page.list_end();
    return Response::html(page.build());
  });

  app.router().get(base + "/page/:id", [this, &app, base](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(guard_region_);
    if (!ctx.sess().get_flag(flag_key())) {
      return Response::redirect(base + "/login");
    }
    std::size_t id = 0;
    try {
      id = std::stoul(ctx.param("id"));
    } catch (...) {
      return Response::not_found("bad page");
    }
    if (id >= params_.private_pages) return Response::not_found("page");
    app.cover(pages_.variant_region(id));
    app.cover(pages_.entity_region(id));
    PageBuilder page("Private page " + std::to_string(id));
    page.heading("Private page " + std::to_string(id));
    page.paragraph("Sensitive account content number " + std::to_string(id) +
                   ".");
    page.link(base + "/home", "Back to account home");
    return Response::html(page.build());
  });

  if (params_.link_from_home) {
    app.add_home_link(base + "/login", "Sign in");
  }
}


std::size_t LoginArea::calibrated_lines() const {
  return params_.shared_lines + 20 + 26 + 12 + 10 + 10 +
         params_.page_variants * params_.lines_per_variant +
         params_.private_pages * params_.lines_per_page;
}

}  // namespace mak::apps
