// Read-only search, the WordPress pattern (Section III-B).
//
// The search endpoint reads from the server but never changes its state:
// every query executes the same code and links to the same fixed set of
// result pages. Curiosity-driven crawlers keep re-submitting the form
// (each query string is a "new" URL/state) while gaining no coverage; a
// link-coverage reward recognizes the stagnation.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct SearchBoxParams {
  std::string slug = "search";
  // Result links point into these target paths (existing content).
  std::vector<std::string> result_paths;
  std::size_t shared_lines = 250;  // query parsing/ranking shared code
  // Vulnerability toggle: echo the query back WITHOUT escaping (a classic
  // reflected-XSS bug several of the paper's testbed apps historically had).
  bool reflect_unescaped = false;
  bool link_from_home = true;
};

class SearchBox final : public Feature {
 public:
  explicit SearchBox(SearchBoxParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  SearchBoxParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion form_region_;
  webapp::CodeRegion results_region_;
};

}  // namespace mak::apps
