// Calendar crawler trap (archive-by-month navigation).
//
// Every month page links to the next and previous months, minting fresh
// URLs indefinitely while executing the same server-side code after the
// first visit. Depth-first crawlers chain through months forever; crawlers
// whose state abstraction keys on the URL (WebExplor) mint a new state —
// with fresh optimistic Q-values and fresh curiosity — for every month.
#pragma once

#include <string>

#include "apps/feature.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct CalendarTrapParams {
  std::string slug = "calendar";
  std::size_t month_count = 720;  // 60 years of months; >> any 30-min budget
  std::size_t start_month = 360;
  std::size_t days_per_month = 0;  // >0: each month floods a grid of day
                                   // links, none of which yields coverage
  std::size_t shared_lines = 120;  // date/rendering shared code
  bool link_from_home = true;
};

class CalendarTrap final : public Feature {
 public:
  explicit CalendarTrap(CalendarTrapParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

 private:
  CalendarTrapParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion render_region_;
};

}  // namespace mak::apps
