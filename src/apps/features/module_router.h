// Query-parameter module routing, the Matomo pattern (Section III-A).
//
// A single front-controller path (/index.php) dispatches on the `module`
// and `action` query parameters; distinct parameter values execute distinct
// server-side code. A crawler that ignores the query string would collapse
// all modules into one page and miss most of the application.
#pragma once

#include <string>
#include <vector>

#include "apps/feature.h"
#include "webapp/code_arena.h"

namespace mak::apps {

struct ModuleRouterParams {
  std::string script = "/index.php";
  std::size_t module_count = 12;
  std::size_t actions_per_module = 6;
  std::size_t lines_per_module = 60;   // module bootstrap code
  std::size_t lines_per_action = 22;   // per-action code
  std::size_t shared_lines = 400;      // plugin framework shared by modules
  bool link_from_home = true;
};

class ModuleRouter final : public Feature {
 public:
  explicit ModuleRouter(ModuleRouterParams params) : params_(std::move(params)) {}

  void install(webapp::WebApp& app) override;
  std::size_t calibrated_lines() const override;

  // Deterministic module/action names ("CoreAdminHome"-style).
  std::string module_name(std::size_t m) const;
  std::string action_name(std::size_t a) const;

 private:
  ModuleRouterParams params_;
  webapp::CodeRegion common_region_;
  webapp::CodeRegion dispatch_region_;
  std::vector<webapp::CodeRegion> module_regions_;
  std::vector<std::vector<webapp::CodeRegion>> action_regions_;
};

}  // namespace mak::apps
