#include "apps/features/paginated_forum.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::FormSpec;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

void PaginatedForum::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file(params_.slug + "/forum.php");
  common_region_ = arena.region(params_.shared_lines);
  index_region_ = arena.region(32);
  board_handler_region_ = arena.region(40);
  topic_handler_region_ = arena.region(35);
  reply_region_ = arena.region(22);
  arena.file(params_.slug + "/boards.php");
  for (std::size_t b = 0; b < params_.board_count; ++b) {
    board_regions_.push_back(arena.region(params_.lines_per_board));
  }
  arena.file(params_.slug + "/topics.php");
  const std::size_t total_topics =
      params_.board_count * params_.topics_per_board;
  topics_.allocate(arena, total_topics, params_.topic_variants,
                   params_.lines_per_topic_variant, params_.lines_per_topic);

  const std::string base = "/" + params_.slug;

  app.router().get(base, [this, &app, base](RequestContext&) {
    app.cover(common_region_);
    app.cover(index_region_);
    PageBuilder page("Forum index");
    page.heading("Boards");
    page.list_begin();
    for (std::size_t b = 0; b < params_.board_count; ++b) {
      page.nav_link(base + "/board/" + std::to_string(b),
                    "Board " + std::to_string(b));
    }
    page.list_end();
    return Response::html(page.build());
  });

  app.router().get(base + "/board/:id", [this, &app, base](
                                            RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(board_handler_region_);
    std::size_t b = 0;
    try {
      b = std::stoul(ctx.param("id"));
    } catch (...) {
      return Response::not_found("bad board");
    }
    if (b >= params_.board_count) return Response::not_found("board");
    app.cover(board_regions_[b]);
    const std::string raw_page = ctx.req().param("page", "0");
    if (params_.sqli_page_param && raw_page.find('\'') != std::string::npos) {
      // BUG (intentional): unsanitized parameter reaches the SQL layer.
      httpsim::Response error;
      error.status = 500;
      error.body =
          "<html><head><title>Error</title></head><body><h1>Database "
          "error</h1><p>You have an error in your SQL syntax near '" ;
      error.body += raw_page;
      error.body += "'</p></body></html>";
      return error;
    }
    std::size_t pg = 0;
    try {
      pg = std::stoul(raw_page);
    } catch (...) {
      pg = 0;
    }
    const std::size_t pages =
        (params_.topics_per_board + params_.topics_per_page - 1) /
        params_.topics_per_page;
    if (pg >= pages) pg = 0;

    PageBuilder page("Board " + std::to_string(b));
    page.heading("Board " + std::to_string(b) + " — page " +
                 std::to_string(pg));
    page.list_begin();
    const std::size_t begin = pg * params_.topics_per_page;
    const std::size_t end =
        std::min(begin + params_.topics_per_page, params_.topics_per_board);
    for (std::size_t i = begin; i < end; ++i) {
      page.nav_link(base + "/topic/" + std::to_string(topic_id(b, i)),
                    "Topic " + std::to_string(topic_id(b, i)));
    }
    page.list_end();
    if (pg + 1 < pages) {
      page.link(base + "/board/" + std::to_string(b) +
                    "?page=" + std::to_string(pg + 1),
                "Next page");
    }
    if (pg > 0) {
      page.link(base + "/board/" + std::to_string(b) +
                    "?page=" + std::to_string(pg - 1),
                "Previous page");
    }
    page.link(base, "Forum index");
    return Response::html(page.build());
  });

  app.router().get(base + "/topic/:id", [this, &app, base](
                                            RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(topic_handler_region_);
    std::size_t t = 0;
    try {
      t = std::stoul(ctx.param("id"));
    } catch (...) {
      return Response::not_found("bad topic");
    }
    if (t >= topics_.entity_count()) return Response::not_found("topic");
    app.cover(topics_.variant_region(t));
    app.cover(topics_.entity_region(t));
    const std::size_t board = t / params_.topics_per_board;

    PageBuilder page("Topic " + std::to_string(t));
    page.heading("Topic " + std::to_string(t));
    for (std::size_t p = 0; p < params_.posts_per_topic; ++p) {
      page.paragraph("Post " + std::to_string(p) + " in topic " +
                     std::to_string(t) + ".");
    }
    // Session-posted replies show up too.
    for (const auto& reply :
         ctx.sess().get_list(params_.slug + ".replies." + std::to_string(t))) {
      if (params_.stored_xss_replies) {
        // BUG (intentional): stored reply rendered without escaping.
        page.raw("<div class=\"reply\">" + reply + "</div>");
      } else {
        page.paragraph("Reply: " + reply);
      }
    }
    if (params_.enable_reply_form) {
      FormSpec form;
      form.action = base + "/topic/" + std::to_string(t) + "/reply";
      form.method = "post";
      form.textarea("message");
      form.submit_label = "Post reply";
      page.form(form);
    }
    page.link(base + "/board/" + std::to_string(board), "Back to the board");
    return Response::html(page.build());
  });

  if (params_.enable_reply_form) {
    app.router().post(base + "/topic/:id/reply",
                      [this, &app, base](RequestContext& ctx) {
                        app.cover(common_region_);
                        app.cover(reply_region_);
                        const std::string t = ctx.param("id");
                        const std::string message =
                            ctx.req().form_value("message");
                        if (!message.empty()) {
                          ctx.sess().push_list(
                              params_.slug + ".replies." + t, message);
                        }
                        return Response::redirect(base + "/topic/" + t);
                      });
  }

  if (params_.link_from_home) {
    app.add_home_link(base, "Forum");
  }
}


std::size_t PaginatedForum::calibrated_lines() const {
  return params_.shared_lines + 32 + 40 + 35 + 22 +
         params_.board_count * params_.lines_per_board +
         params_.topic_variants * params_.lines_per_topic_variant +
         params_.board_count * params_.topics_per_board *
             params_.lines_per_topic;
}

}  // namespace mak::apps
