#include "apps/features/module_router.h"

#include "webapp/page_builder.h"

namespace mak::apps {

using httpsim::Response;
using webapp::PageBuilder;
using webapp::RequestContext;
using webapp::WebApp;

namespace {
const char* const kModuleNames[] = {
    "CoreHome",     "Dashboard",    "MultiSites",  "CoreAdminHome",
    "UserSettings", "Goals",        "Referrers",   "VisitsSummary",
    "Actions",      "SegmentEditor", "Annotations", "Feedback",
    "Ecommerce",    "DevicesDetection", "Events",  "Contents",
};
const char* const kActionNames[] = {
    "index",   "manage", "view",   "settings",
    "details", "export", "compare", "history",
};
}  // namespace

std::string ModuleRouter::module_name(std::size_t m) const {
  const std::size_t known = sizeof(kModuleNames) / sizeof(kModuleNames[0]);
  if (m < known) return kModuleNames[m];
  return "Plugin" + std::to_string(m);
}

std::string ModuleRouter::action_name(std::size_t a) const {
  const std::size_t known = sizeof(kActionNames) / sizeof(kActionNames[0]);
  if (a < known) return kActionNames[a];
  return "action" + std::to_string(a);
}

void ModuleRouter::install(WebApp& app) {
  auto& arena = app.arena();
  arena.file("core/dispatcher.php");
  common_region_ = arena.region(params_.shared_lines);
  dispatch_region_ = arena.region(45);
  module_regions_.reserve(params_.module_count);
  action_regions_.resize(params_.module_count);
  for (std::size_t m = 0; m < params_.module_count; ++m) {
    arena.file("plugins/" + module_name(m) + "/controller.php");
    module_regions_.push_back(arena.region(params_.lines_per_module));
    action_regions_[m].reserve(params_.actions_per_module);
    for (std::size_t a = 0; a < params_.actions_per_module; ++a) {
      action_regions_[m].push_back(arena.region(params_.lines_per_action));
    }
  }

  const std::string script = params_.script;
  // Route pattern without the leading slash split: script is a single path.
  app.router().get(script, [this, &app, script](RequestContext& ctx) {
    app.cover(common_region_);
    app.cover(dispatch_region_);
    const std::string module = ctx.req().param("module", "CoreHome");
    const std::string action = ctx.req().param("action", "index");

    // Resolve module/action indices.
    std::size_t m = params_.module_count;
    for (std::size_t i = 0; i < params_.module_count; ++i) {
      if (module_name(i) == module) {
        m = i;
        break;
      }
    }
    if (m == params_.module_count) {
      return Response::not_found("unknown module " + module);
    }
    std::size_t a = params_.actions_per_module;
    for (std::size_t i = 0; i < params_.actions_per_module; ++i) {
      if (action_name(i) == action) {
        a = i;
        break;
      }
    }
    app.cover(module_regions_[m]);
    if (a == params_.actions_per_module) {
      return Response::not_found("unknown action " + action);
    }
    app.cover(action_regions_[m][a]);

    PageBuilder page(module + " — " + action);
    page.heading(module + " / " + action);
    page.paragraph("Module " + module + " rendering action " + action + ".");
    page.list_begin();
    // Sibling actions of this module.
    for (std::size_t i = 0; i < params_.actions_per_module; ++i) {
      if (i == a) continue;
      page.nav_link(script + "?module=" + module + "&action=" + action_name(i),
                    module + " " + action_name(i));
    }
    // A few other modules (the Matomo left-hand menu).
    for (std::size_t k = 1; k <= 3; ++k) {
      const std::size_t other = (m + k) % params_.module_count;
      page.nav_link(script + "?module=" + module_name(other) +
                        "&action=index",
                    module_name(other));
    }
    page.list_end();
    return Response::html(page.build());
  });

  if (params_.link_from_home) {
    app.add_home_link(script + "?module=CoreHome&action=index", "Dashboard");
    app.add_home_link(script + "?module=" + module_name(1 % params_.module_count) +
                          "&action=index",
                      module_name(1 % params_.module_count));
  }
}


std::size_t ModuleRouter::calibrated_lines() const {
  return params_.shared_lines + 45 +
         params_.module_count *
             (params_.lines_per_module +
              params_.actions_per_module * params_.lines_per_action);
}

}  // namespace mak::apps
