// The testbed catalog: models of the 11 applications evaluated in the paper
// (Section V-A.3), built from the structural features in apps/features.
//
// Scales are calibrated to the paper's magnitudes (Drupal tens of thousands
// of server-side lines, AddressBook a couple of thousand) and to a 30-minute
// virtual crawl budget of roughly 850-950 interactions. See DESIGN.md for
// the substitution rationale.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/synthetic_app.h"

namespace mak::apps {

struct AppInfo {
  std::string name;       // paper name, e.g. "Drupal"
  std::string version;    // version evaluated in the paper
  Platform platform;
  std::function<std::unique_ptr<SyntheticApp>()> factory;
};

// All 11 testbed apps in the paper's order: 8 PHP, then 3 Node.js.
const std::vector<AppInfo>& app_catalog();

// The 8 PHP apps (Figure 2 uses only these).
std::vector<const AppInfo*> php_apps();

// Build one app by name. Accepts both catalog names ("Drupal") and
// generated-app names ("gen-v1-..."; see apps/generator/app_spec.h).
// Throws std::invalid_argument listing the valid catalog names otherwise.
std::unique_ptr<SyntheticApp> make_app(std::string_view name);

// Resolve any app name — catalog or generated — to an AppInfo whose factory
// rebuilds the app. Generated names carry their full spec, so worker
// processes that re-exec and look apps up by name reconstruct the identical
// app. Returns nullopt for unknown names.
std::optional<AppInfo> resolve_app(std::string_view name);

// Individual factories (used by tests and examples).
std::unique_ptr<SyntheticApp> make_addressbook();
std::unique_ptr<SyntheticApp> make_drupal();
std::unique_ptr<SyntheticApp> make_hotcrp();
std::unique_ptr<SyntheticApp> make_matomo();
std::unique_ptr<SyntheticApp> make_oscommerce();
std::unique_ptr<SyntheticApp> make_phpbb();
std::unique_ptr<SyntheticApp> make_vanilla();
std::unique_ptr<SyntheticApp> make_wordpress();
std::unique_ptr<SyntheticApp> make_actual();
std::unique_ptr<SyntheticApp> make_docmost();
std::unique_ptr<SyntheticApp> make_retroboard();

}  // namespace mak::apps
