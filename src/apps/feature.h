// Structural features of the synthetic testbed applications.
//
// Crawler performance differences in the paper stem from *structural*
// properties of the evaluated applications: URL aliasing (HotCRP),
// query-parameter routing (Matomo), self-modifying pages (Drupal
// shortcuts), read-only search (WordPress), deep flows, pagination,
// login walls and crawler traps. Each Feature class reproduces one such
// pattern — with its own server-side code regions and routes — and the
// named testbed apps in catalog.cc are compositions of features at
// app-specific scales.
#pragma once

#include <memory>
#include <string>

#include "webapp/app_base.h"

namespace mak::apps {

class Feature {
 public:
  virtual ~Feature() = default;

  // Allocate code regions in app.arena(), register routes on app.router(),
  // and add entry links via app.add_home_link(). Handlers may capture both
  // `this` and `&app`; the app owns the feature, so lifetimes match.
  virtual void install(webapp::WebApp& app) = 0;
};

}  // namespace mak::apps
