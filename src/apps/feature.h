// Structural features of the synthetic testbed applications.
//
// Crawler performance differences in the paper stem from *structural*
// properties of the evaluated applications: URL aliasing (HotCRP),
// query-parameter routing (Matomo), self-modifying pages (Drupal
// shortcuts), read-only search (WordPress), deep flows, pagination,
// login walls and crawler traps. Each Feature class reproduces one such
// pattern — with its own server-side code regions and routes — and the
// named testbed apps in catalog.cc are compositions of features at
// app-specific scales.
#pragma once

#include <memory>
#include <string>

#include "webapp/app_base.h"

namespace mak::apps {

class Feature {
 public:
  virtual ~Feature() = default;

  // Allocate code regions in app.arena(), register routes on app.router(),
  // and add entry links via app.add_home_link(). Handlers may capture both
  // `this` and `&app`; the app owns the feature, so lifetimes match.
  virtual void install(webapp::WebApp& app) = 0;

  // Closed-form count of the arena lines install() allocates, as a function
  // of the feature's parameters alone. This is the calibration contract the
  // procedural generator (src/apps/generator) sizes app populations against:
  // an app's total line count is the base framework lines plus the overhead
  // region plus the sum of its features' calibrated_lines() plus dead code,
  // and tests/generator_test.cc holds every feature to it.
  virtual std::size_t calibrated_lines() const = 0;
};

}  // namespace mak::apps
