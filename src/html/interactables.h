// Interactable-element extraction and the state-abstraction digests used by
// the Q-learning baselines.
//
// Following the paper's unified-framework assumptions (Section V-A.2),
// interactable elements are the *visible* links, buttons and forms of a page.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "html/dom.h"

namespace mak::html {

enum class InteractableKind { kLink, kButton, kForm };

std::string_view to_string(InteractableKind kind) noexcept;

// One field of a form (input/select/textarea).
struct FormField {
  std::string name;
  std::string type;   // "text", "password", "hidden", "select", ...
  std::string value;  // default/current value
  std::vector<std::string> options;  // select options (values)

  bool operator==(const FormField&) const = default;
};

// A single interactable element lifted out of a DOM.
struct Interactable {
  InteractableKind kind = InteractableKind::kLink;
  std::string target;  // link href / form action / button formaction (raw)
  std::string method;  // "GET" or "POST" (forms/buttons)
  std::string id;      // element id attribute (may be empty)
  std::string name;    // element name attribute (may be empty)
  std::string text;    // rendered text (anchor/button label)
  std::vector<FormField> fields;  // form fields (kForm only)

  bool operator==(const Interactable&) const = default;

  // Human-readable one-liner for logs.
  std::string describe() const;

  // Stable digest of the element's attribute values; the QExplore state
  // abstraction is the hash of the concatenation of these digests over the
  // page's interactables (Section III-A of the paper).
  std::string attribute_digest() const;
};

// Extract all visible interactables from a document, in document order.
//
// Rules (mirroring the paper's framework assumptions):
//  * <a href=...> with a non-empty href that is not a pure fragment and not
//    a javascript: URL is a link.
//  * <form> is a form; its action defaults to "" (self), method to GET;
//    fields are its input/select/textarea descendants. Buttons inside a form
//    are submit controls of that form, not separate interactables.
//  * <button> outside any form with a formaction/data-href attribute is a
//    button (navigates to its target, default method POST).
//  * Elements with a `hidden` attribute or display:none style, and anything
//    inside such an element, are invisible and skipped.
std::vector<Interactable> extract_interactables(const Document& doc);

// WebExplor state ingredient: the sequence of HTML tag names in pre-order.
std::vector<std::string> tag_sequence(const Document& doc);

// QExplore state digest: hash of the attribute-value sequence of the page's
// interactable elements.
std::uint64_t qexplore_state_hash(const Document& doc);

// Normalized longest-common-subsequence similarity of two string sequences
// in [0, 1]: 2*LCS / (|a|+|b|), inputs truncated to `cap` items. Used by
// WebExplor's pattern matching and the DOM-novelty reward ablation.
double sequence_similarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           std::size_t cap = 256);

}  // namespace mak::html
