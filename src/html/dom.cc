#include "html/dom.h"

#include "html/entities.h"

namespace mak::html {

namespace {
// Void elements never have children and serialize without an end tag.
bool is_void_element(std::string_view tag) noexcept {
  return tag == "area" || tag == "base" || tag == "br" || tag == "col" ||
         tag == "embed" || tag == "hr" || tag == "img" || tag == "input" ||
         tag == "link" || tag == "meta" || tag == "source" ||
         tag == "track" || tag == "wbr";
}
}  // namespace

bool Node::has_attribute(std::string_view name) const noexcept {
  for (const auto& [k, v] : attributes_) {
    if (k == name) return true;
  }
  return false;
}

std::optional<std::string> Node::attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes_) {
    if (k == name) return v;
  }
  return std::nullopt;
}

std::string Node::attribute_or(std::string_view name,
                               std::string_view fallback) const {
  if (auto v = attribute(name)) return *v;
  return std::string(fallback);
}

Node* Node::append_child(NodePtr child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

std::string Node::text_content() const {
  std::string out;
  walk([&out](const Node& n) {
    if (n.is_text()) out += n.text();
  });
  return out;
}

void Node::walk(const std::function<void(const Node&)>& visit) const {
  visit(*this);
  for (const auto& child : children_) child->walk(visit);
}

std::vector<const Node*> Node::find_all(std::string_view tag) const {
  std::vector<const Node*> out;
  walk([&](const Node& n) {
    if (n.is_element() && n.tag() == tag && &n != this) out.push_back(&n);
  });
  // Include self if it matches? No: find_all searches descendants only when
  // called on the node itself... but crawlers call it on the document root,
  // which is never an element, so include matching self for generality.
  if (is_element() && this->tag() == tag) out.insert(out.begin(), this);
  return out;
}

const Node* Node::find_first(std::string_view tag) const {
  const Node* found = nullptr;
  // walk() has no early exit; fine for page-sized trees.
  walk([&](const Node& n) {
    if (found == nullptr && n.is_element() && n.tag() == tag) found = &n;
  });
  return found;
}

std::vector<const Node*> Node::all_elements() const {
  std::vector<const Node*> out;
  walk([&](const Node& n) {
    if (n.is_element()) out.push_back(&n);
  });
  return out;
}

const Node* Node::closest_ancestor(std::string_view tag) const {
  for (const Node* p = parent_; p != nullptr; p = p->parent()) {
    if (p->is_element() && p->tag() == tag) return p;
  }
  return nullptr;
}

std::string Document::title() const {
  const Node* t = root_->find_first("title");
  return t != nullptr ? t->text_content() : std::string();
}

namespace {
void serialize_into(const Node& node, std::string& out) {
  switch (node.type()) {
    case NodeType::kText:
      out += escape(node.text());
      return;
    case NodeType::kComment:
      out += "<!--";
      out += node.text();
      out += "-->";
      return;
    case NodeType::kDocument:
      for (const auto& child : node.children()) serialize_into(*child, out);
      return;
    case NodeType::kElement:
      break;
  }
  out += '<';
  out += node.tag();
  for (const auto& [k, v] : node.attributes()) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape(v);
    out += '"';
  }
  out += '>';
  if (is_void_element(node.tag())) return;
  if (node.tag() == "script" || node.tag() == "style") {
    // Raw-text elements: the tokenizer reads their content verbatim, so the
    // serializer must not entity-escape it (round-trip symmetry).
    for (const auto& child : node.children()) {
      if (child->is_text()) out += child->text();
    }
  } else {
    for (const auto& child : node.children()) serialize_into(*child, out);
  }
  out += "</";
  out += node.tag();
  out += '>';
}
}  // namespace

std::string serialize(const Node& node) {
  std::string out;
  serialize_into(node, out);
  return out;
}

}  // namespace mak::html
