#include "html/entities.h"

#include <cctype>

namespace mak::html {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&#39;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

// Try to decode the entity starting at text[pos] (which is '&'). On success
// appends the decoded character(s) to out and returns the index one past the
// ';'. On failure returns pos (caller copies the '&' verbatim).
std::size_t decode_entity(std::string_view text, std::size_t pos,
                          std::string& out) {
  const std::size_t semi = text.find(';', pos + 1);
  if (semi == std::string_view::npos || semi - pos > 12) return pos;
  const std::string_view body = text.substr(pos + 1, semi - pos - 1);
  if (body == "amp") {
    out += '&';
  } else if (body == "lt") {
    out += '<';
  } else if (body == "gt") {
    out += '>';
  } else if (body == "quot") {
    out += '"';
  } else if (body == "apos") {
    out += '\'';
  } else if (body == "nbsp") {
    out += ' ';
  } else if (!body.empty() && body[0] == '#') {
    std::string_view digits = body.substr(1);
    int base = 10;
    if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
      base = 16;
      digits = digits.substr(1);
    }
    if (digits.empty()) return pos;
    unsigned long value = 0;
    for (char c : digits) {
      int v;
      if (c >= '0' && c <= '9') {
        v = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        v = c - 'a' + 10;
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        v = c - 'A' + 10;
      } else {
        return pos;
      }
      value = value * static_cast<unsigned long>(base) +
              static_cast<unsigned long>(v);
      if (value > 0x10ffff) return pos;
    }
    if (value == 0 || value > 0x7f) {
      // Keep it simple: only ASCII numeric references decode; others pass
      // through untouched (our synthetic apps emit ASCII only).
      return pos;
    }
    out += static_cast<char>(value);
  } else {
    return pos;
  }
  return semi + 1;
}

}  // namespace

std::string unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] == '&') {
      const std::size_t next = decode_entity(text, i, out);
      if (next != i) {
        i = next;
        continue;
      }
    }
    out += text[i];
    ++i;
  }
  return out;
}

}  // namespace mak::html
