// HTML tokenizer: turns markup into a flat token stream.
//
// Covers the HTML subset real server-side templates produce: tags with
// quoted/unquoted/valueless attributes, text, comments, doctype, and raw-text
// elements (script/style whose content is opaque). Lenient on errors the way
// browsers are: stray '<' becomes text, unterminated constructs are closed at
// end of input.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mak::html {

enum class TokenType { kStartTag, kEndTag, kText, kComment, kDoctype };

struct Token {
  TokenType type = TokenType::kText;
  // kStartTag/kEndTag: lowercase tag name. kText/kComment/kDoctype: unused.
  std::string name;
  // kText: decoded text. kComment/kDoctype: raw content.
  std::string text;
  // kStartTag only: attributes in document order, names lowercase, values
  // entity-decoded. A valueless attribute has an empty value.
  std::vector<std::pair<std::string, std::string>> attributes;
  // kStartTag only: "<br/>" style self-closing marker.
  bool self_closing = false;
};

// Tokenize an entire document. Never throws on malformed markup.
std::vector<Token> tokenize(std::string_view markup);

}  // namespace mak::html
