#include "html/parser.h"

#include <vector>

#include "html/tokenizer.h"

namespace mak::html {

namespace {

bool is_void_element(std::string_view tag) noexcept {
  return tag == "area" || tag == "base" || tag == "br" || tag == "col" ||
         tag == "embed" || tag == "hr" || tag == "img" || tag == "input" ||
         tag == "link" || tag == "meta" || tag == "source" ||
         tag == "track" || tag == "wbr";
}

// Tags that implicitly close an open element of the same tag (simplified
// HTML5 "implied end tag" rules; enough for template-generated markup).
bool closes_same_tag(std::string_view tag) noexcept {
  return tag == "p" || tag == "li" || tag == "tr" || tag == "td" ||
         tag == "th" || tag == "option" || tag == "dt" || tag == "dd";
}

}  // namespace

Document parse(std::string_view markup) {
  Document doc;
  std::vector<Node*> stack;
  stack.push_back(&doc.root());

  auto open_tags_contain = [&stack](std::string_view tag) {
    for (const Node* n : stack) {
      if (n->is_element() && n->tag() == tag) return true;
    }
    return false;
  };

  for (auto& token : tokenize(markup)) {
    switch (token.type) {
      case TokenType::kDoctype:
        break;  // not represented in the tree
      case TokenType::kComment: {
        auto node = std::make_unique<Node>(NodeType::kComment);
        node->set_text(std::move(token.text));
        stack.back()->append_child(std::move(node));
        break;
      }
      case TokenType::kText: {
        auto node = std::make_unique<Node>(NodeType::kText);
        node->set_text(std::move(token.text));
        stack.back()->append_child(std::move(node));
        break;
      }
      case TokenType::kStartTag: {
        if (closes_same_tag(token.name) && stack.back()->is_element() &&
            stack.back()->tag() == token.name) {
          stack.pop_back();
        }
        auto node = std::make_unique<Node>(NodeType::kElement);
        node->set_tag(token.name);
        node->set_attributes(std::move(token.attributes));
        Node* raw = stack.back()->append_child(std::move(node));
        if (!token.self_closing && !is_void_element(token.name)) {
          stack.push_back(raw);
        }
        break;
      }
      case TokenType::kEndTag: {
        if (!open_tags_contain(token.name)) break;  // unmatched: drop
        // Pop (and thereby implicitly close) up to and including the match.
        while (stack.size() > 1) {
          Node* top = stack.back();
          stack.pop_back();
          if (top->is_element() && top->tag() == token.name) break;
        }
        break;
      }
    }
  }
  return doc;
}

}  // namespace mak::html
