#include "html/interactables.h"

#include <algorithm>

#include "support/strings.h"

namespace mak::html {

using support::contains;
using support::starts_with;
using support::to_lower;
using support::to_upper;

std::string_view to_string(InteractableKind kind) noexcept {
  switch (kind) {
    case InteractableKind::kLink:
      return "link";
    case InteractableKind::kButton:
      return "button";
    case InteractableKind::kForm:
      return "form";
  }
  return "?";
}

std::string Interactable::describe() const {
  std::string out(to_string(kind));
  out += " target=";
  out += target;
  if (!method.empty()) {
    out += " method=";
    out += method;
  }
  if (!text.empty()) {
    out += " text=\"";
    out += text;
    out += '"';
  }
  if (kind == InteractableKind::kForm) {
    out += " fields=" + std::to_string(fields.size());
  }
  return out;
}

std::string Interactable::attribute_digest() const {
  // Concatenate the attribute values that identify the element, as QExplore
  // abstracts pages by "the sequence of attribute values of the unique
  // interactable elements of the page".
  std::string out(to_string(kind));
  out += '|';
  out += target;
  out += '|';
  out += method;
  out += '|';
  out += id;
  out += '|';
  out += name;
  out += '|';
  out += text;
  for (const auto& field : fields) {
    out += '|';
    out += field.name;
    out += ':';
    out += field.type;
  }
  return out;
}

namespace {

bool is_invisible(const Node& element) {
  if (element.has_attribute("hidden")) return true;
  const std::string style = to_lower(element.attribute_or("style"));
  return contains(style, "display:none") || contains(style, "display: none");
}

bool any_invisible_ancestor_or_self(const Node& element) {
  if (is_invisible(element)) return true;
  for (const Node* p = element.parent(); p != nullptr; p = p->parent()) {
    if (p->is_element() && is_invisible(*p)) return true;
  }
  return false;
}

bool usable_href(std::string_view href) noexcept {
  if (href.empty()) return false;
  if (href[0] == '#') return false;
  const std::string lower = to_lower(href);
  return !starts_with(lower, "javascript:") && !starts_with(lower, "mailto:") &&
         !starts_with(lower, "tel:") && !starts_with(lower, "data:");
}

FormField field_from(const Node& element) {
  FormField field;
  field.name = element.attribute_or("name");
  if (element.tag() == "input") {
    field.type = to_lower(element.attribute_or("type", "text"));
    field.value = element.attribute_or("value");
  } else if (element.tag() == "textarea") {
    field.type = "textarea";
    field.value = element.text_content();
  } else if (element.tag() == "select") {
    field.type = "select";
    for (const Node* option : element.find_all("option")) {
      std::string value = option->attribute_or("value");
      if (value.empty()) value = option->text_content();
      field.options.push_back(std::move(value));
      if (option->has_attribute("selected") && field.value.empty()) {
        field.value = field.options.back();
      }
    }
    if (field.value.empty() && !field.options.empty()) {
      field.value = field.options.front();
    }
  }
  return field;
}

Interactable form_from(const Node& form) {
  Interactable item;
  item.kind = InteractableKind::kForm;
  item.target = form.attribute_or("action");
  item.method = to_upper(form.attribute_or("method", "GET"));
  if (item.method != "POST") item.method = "GET";
  item.id = form.attribute_or("id");
  item.name = form.attribute_or("name");
  form.walk([&item, &form](const Node& n) {
    if (!n.is_element() || &n == &form) return;
    if (n.tag() == "input" || n.tag() == "select" || n.tag() == "textarea") {
      if (any_invisible_ancestor_or_self(n) &&
          to_lower(n.attribute_or("type")) != "hidden") {
        return;  // invisible, non-hidden controls don't get filled
      }
      item.fields.push_back(field_from(n));
    } else if (n.tag() == "button") {
      // A submit button contributes its label (and name=value on submission).
      if (item.text.empty()) item.text = n.text_content();
      if (!n.attribute_or("name").empty()) {
        FormField button;
        button.name = n.attribute_or("name");
        button.type = "submit";
        button.value = n.attribute_or("value");
        item.fields.push_back(std::move(button));
      }
    }
  });
  return item;
}

}  // namespace

std::vector<Interactable> extract_interactables(const Document& doc) {
  std::vector<Interactable> out;
  doc.root().walk([&out](const Node& n) {
    if (!n.is_element()) return;
    if (n.tag() == "a") {
      const std::string href = n.attribute_or("href");
      if (!usable_href(href) || any_invisible_ancestor_or_self(n)) return;
      Interactable item;
      item.kind = InteractableKind::kLink;
      item.target = href;
      item.method = "GET";
      item.id = n.attribute_or("id");
      item.name = n.attribute_or("name");
      item.text = std::string(support::trim(n.text_content()));
      out.push_back(std::move(item));
    } else if (n.tag() == "form") {
      if (any_invisible_ancestor_or_self(n)) return;
      out.push_back(form_from(n));
    } else if (n.tag() == "button") {
      if (n.closest_ancestor("form") != nullptr) return;  // submit control
      if (any_invisible_ancestor_or_self(n)) return;
      std::string target = n.attribute_or("formaction");
      if (target.empty()) target = n.attribute_or("data-href");
      if (target.empty()) return;  // inert standalone button
      Interactable item;
      item.kind = InteractableKind::kButton;
      item.target = std::move(target);
      item.method = to_upper(n.attribute_or("formmethod", "POST"));
      if (item.method != "GET") item.method = "POST";
      item.id = n.attribute_or("id");
      item.name = n.attribute_or("name");
      item.text = std::string(support::trim(n.text_content()));
      out.push_back(std::move(item));
    }
  });
  return out;
}

std::vector<std::string> tag_sequence(const Document& doc) {
  std::vector<std::string> out;
  doc.root().walk([&out](const Node& n) {
    if (n.is_element()) out.push_back(n.tag());
  });
  return out;
}

double sequence_similarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           std::size_t cap) {
  const std::size_t n = std::min(a.size(), cap);
  const std::size_t m = std::min(b.size(), cap);
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  std::vector<std::size_t> prev(m + 1, 0);
  std::vector<std::size_t> curr(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return 2.0 * static_cast<double>(prev[m]) / static_cast<double>(n + m);
}

std::uint64_t qexplore_state_hash(const Document& doc) {
  std::string combined;
  for (const auto& item : extract_interactables(doc)) {
    combined += item.attribute_digest();
    combined += '\n';
  }
  return support::fnv1a(combined);
}

}  // namespace mak::html
