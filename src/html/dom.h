// DOM tree built by the parser.
//
// Nodes are owned through std::unique_ptr along parent->child edges; parents
// are back-referenced with raw non-owning pointers. The tree is immutable
// after parsing in all crawler code paths.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mak::html {

enum class NodeType { kElement, kText, kComment, kDocument };

class Node;
using NodePtr = std::unique_ptr<Node>;

class Node {
 public:
  explicit Node(NodeType type) : type_(type) {}

  NodeType type() const noexcept { return type_; }
  bool is_element() const noexcept { return type_ == NodeType::kElement; }
  bool is_text() const noexcept { return type_ == NodeType::kText; }

  // --- element-only accessors (return empty defaults otherwise) ---
  const std::string& tag() const noexcept { return tag_; }
  void set_tag(std::string tag) { tag_ = std::move(tag); }

  const std::vector<std::pair<std::string, std::string>>& attributes()
      const noexcept {
    return attributes_;
  }
  void set_attributes(std::vector<std::pair<std::string, std::string>> attrs) {
    attributes_ = std::move(attrs);
  }
  bool has_attribute(std::string_view name) const noexcept;
  std::optional<std::string> attribute(std::string_view name) const;
  // Attribute value or empty string.
  std::string attribute_or(std::string_view name,
                           std::string_view fallback = "") const;

  // --- text/comment-only ---
  const std::string& text() const noexcept { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- tree structure ---
  Node* parent() const noexcept { return parent_; }
  const std::vector<NodePtr>& children() const noexcept { return children_; }
  Node* append_child(NodePtr child);

  // Concatenated text of all descendant text nodes.
  std::string text_content() const;

  // Depth-first pre-order walk over this node and all descendants.
  void walk(const std::function<void(const Node&)>& visit) const;

  // All descendant elements (pre-order) with the given lowercase tag name.
  std::vector<const Node*> find_all(std::string_view tag) const;
  // First such element or nullptr.
  const Node* find_first(std::string_view tag) const;
  // All descendant elements in pre-order.
  std::vector<const Node*> all_elements() const;

  // Nearest ancestor (excluding self) with the given tag, or nullptr.
  const Node* closest_ancestor(std::string_view tag) const;

 private:
  NodeType type_;
  std::string tag_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::string text_;
  Node* parent_ = nullptr;
  std::vector<NodePtr> children_;
};

// A parsed document: a kDocument root owning the tree.
class Document {
 public:
  Document() : root_(std::make_unique<Node>(NodeType::kDocument)) {}

  Node& root() noexcept { return *root_; }
  const Node& root() const noexcept { return *root_; }

  // Convenience passthroughs.
  std::vector<const Node*> find_all(std::string_view tag) const {
    return root_->find_all(tag);
  }
  const Node* find_first(std::string_view tag) const {
    return root_->find_first(tag);
  }
  std::string title() const;

 private:
  NodePtr root_;
};

// Serialize a subtree back to HTML (for debugging and round-trip tests).
std::string serialize(const Node& node);

}  // namespace mak::html
