#include "html/tokenizer.h"

#include <cctype>

#include "html/entities.h"
#include "support/strings.h"

namespace mak::html {

namespace {

bool is_name_start(unsigned char c) noexcept { return std::isalpha(c); }
bool is_name_char(unsigned char c) noexcept {
  return std::isalnum(c) || c == '-' || c == '_' || c == ':';
}
bool is_space(unsigned char c) noexcept { return std::isspace(c); }

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  std::vector<Token> run() {
    while (pos_ < input_.size()) {
      const std::size_t lt = input_.find('<', pos_);
      if (lt == std::string_view::npos) {
        emit_text(input_.substr(pos_));
        break;
      }
      if (lt > pos_) emit_text(input_.substr(pos_, lt - pos_));
      pos_ = lt;
      if (!consume_markup()) {
        // Stray '<': treat as text and move on.
        emit_text("<");
        ++pos_;
      }
    }
    return std::move(tokens_);
  }

 private:
  void emit_text(std::string_view raw) {
    if (raw.empty()) return;
    Token t;
    t.type = TokenType::kText;
    t.text = unescape(raw);
    tokens_.push_back(std::move(t));
  }

  // pos_ points at '<'. Returns false if this is not valid markup.
  bool consume_markup() {
    if (pos_ + 1 >= input_.size()) return false;
    const char next = input_[pos_ + 1];
    if (next == '!') return consume_comment_or_doctype();
    if (next == '/') return consume_end_tag();
    if (is_name_start(static_cast<unsigned char>(next))) {
      return consume_start_tag();
    }
    return false;
  }

  bool consume_comment_or_doctype() {
    if (input_.compare(pos_, 4, "<!--") == 0) {
      const std::size_t end = input_.find("-->", pos_ + 4);
      Token t;
      t.type = TokenType::kComment;
      if (end == std::string_view::npos) {
        t.text = std::string(input_.substr(pos_ + 4));
        pos_ = input_.size();
      } else {
        t.text = std::string(input_.substr(pos_ + 4, end - pos_ - 4));
        pos_ = end + 3;
      }
      tokens_.push_back(std::move(t));
      return true;
    }
    // <!DOCTYPE ...> or any other <!...> construct.
    const std::size_t end = input_.find('>', pos_);
    Token t;
    t.type = TokenType::kDoctype;
    if (end == std::string_view::npos) {
      t.text = std::string(input_.substr(pos_ + 2));
      pos_ = input_.size();
    } else {
      t.text = std::string(input_.substr(pos_ + 2, end - pos_ - 2));
      pos_ = end + 1;
    }
    tokens_.push_back(std::move(t));
    return true;
  }

  bool consume_end_tag() {
    std::size_t i = pos_ + 2;
    if (i >= input_.size() ||
        !is_name_start(static_cast<unsigned char>(input_[i]))) {
      return false;
    }
    const std::size_t name_start = i;
    while (i < input_.size() &&
           is_name_char(static_cast<unsigned char>(input_[i]))) {
      ++i;
    }
    const std::string name =
        support::to_lower(input_.substr(name_start, i - name_start));
    // Skip anything up to '>' (attributes on end tags are ignored).
    const std::size_t end = input_.find('>', i);
    pos_ = end == std::string_view::npos ? input_.size() : end + 1;
    Token t;
    t.type = TokenType::kEndTag;
    t.name = name;
    tokens_.push_back(std::move(t));
    return true;
  }

  bool consume_start_tag() {
    std::size_t i = pos_ + 1;
    const std::size_t name_start = i;
    while (i < input_.size() &&
           is_name_char(static_cast<unsigned char>(input_[i]))) {
      ++i;
    }
    Token t;
    t.type = TokenType::kStartTag;
    t.name = support::to_lower(input_.substr(name_start, i - name_start));

    // Attributes.
    while (i < input_.size()) {
      while (i < input_.size() &&
             is_space(static_cast<unsigned char>(input_[i]))) {
        ++i;
      }
      if (i >= input_.size()) break;
      if (input_[i] == '>') {
        ++i;
        break;
      }
      if (input_[i] == '/') {
        // Possibly self-closing.
        std::size_t j = i + 1;
        while (j < input_.size() &&
               is_space(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        if (j < input_.size() && input_[j] == '>') {
          t.self_closing = true;
          i = j + 1;
          break;
        }
        ++i;  // stray '/': skip
        continue;
      }
      // Attribute name.
      const std::size_t attr_start = i;
      while (i < input_.size() && !is_space(static_cast<unsigned char>(
                                      input_[i])) &&
             input_[i] != '=' && input_[i] != '>' && input_[i] != '/') {
        ++i;
      }
      if (i == attr_start) {
        ++i;  // defensive: avoid infinite loop on weird bytes
        continue;
      }
      std::string attr_name =
          support::to_lower(input_.substr(attr_start, i - attr_start));
      std::string attr_value;
      // Optional "=value".
      std::size_t j = i;
      while (j < input_.size() &&
             is_space(static_cast<unsigned char>(input_[j]))) {
        ++j;
      }
      if (j < input_.size() && input_[j] == '=') {
        ++j;
        while (j < input_.size() &&
               is_space(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        if (j < input_.size() && (input_[j] == '"' || input_[j] == '\'')) {
          const char quote = input_[j];
          const std::size_t vstart = ++j;
          const std::size_t vend = input_.find(quote, vstart);
          if (vend == std::string_view::npos) {
            attr_value = unescape(input_.substr(vstart));
            j = input_.size();
          } else {
            attr_value = unescape(input_.substr(vstart, vend - vstart));
            j = vend + 1;
          }
        } else {
          const std::size_t vstart = j;
          while (j < input_.size() &&
                 !is_space(static_cast<unsigned char>(input_[j])) &&
                 input_[j] != '>') {
            ++j;
          }
          attr_value = unescape(input_.substr(vstart, j - vstart));
        }
        i = j;
      }
      t.attributes.emplace_back(std::move(attr_name), std::move(attr_value));
    }
    pos_ = i;

    // Raw-text elements: script/style content is opaque until the matching
    // close tag.
    if (!t.self_closing && (t.name == "script" || t.name == "style")) {
      const std::string close = "</" + t.name;
      const std::string tag_name = t.name;
      tokens_.push_back(std::move(t));
      std::size_t end = pos_;
      for (;;) {
        end = input_.find(close, end);
        if (end == std::string_view::npos) {
          end = input_.size();
          break;
        }
        const std::size_t after = end + close.size();
        if (after >= input_.size() || input_[after] == '>' ||
            is_space(static_cast<unsigned char>(input_[after]))) {
          break;
        }
        ++end;
      }
      if (end > pos_) {
        Token text;
        text.type = TokenType::kText;
        text.text = std::string(input_.substr(pos_, end - pos_));
        tokens_.push_back(std::move(text));
      }
      if (end < input_.size()) {
        const std::size_t gt = input_.find('>', end);
        pos_ = gt == std::string_view::npos ? input_.size() : gt + 1;
        Token close_tok;
        close_tok.type = TokenType::kEndTag;
        close_tok.name = tag_name;
        tokens_.push_back(std::move(close_tok));
      } else {
        pos_ = input_.size();
      }
      return true;
    }

    tokens_.push_back(std::move(t));
    return true;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view markup) {
  return Tokenizer(markup).run();
}

}  // namespace mak::html
