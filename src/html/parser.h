// Tree construction: token stream -> DOM.
#pragma once

#include <string_view>

#include "html/dom.h"

namespace mak::html {

// Parse a document. Browser-lenient: void elements never nest, unmatched end
// tags are dropped, unclosed elements are closed at end of input, and <p>/
// <li>/<tr>/<td>/<option> auto-close their previous sibling of the same kind.
Document parse(std::string_view markup);

}  // namespace mak::html
