// HTML entity encoding/decoding (the subset real templates emit).
#pragma once

#include <string>
#include <string_view>

namespace mak::html {

// Escape &, <, >, ", ' for safe embedding in HTML text or attributes.
std::string escape(std::string_view text);

// Decode named entities (&amp; &lt; &gt; &quot; &apos; &nbsp;) and numeric
// references (&#NN; &#xNN;, ASCII range). Unknown entities pass through.
std::string unescape(std::string_view text);

}  // namespace mak::html
