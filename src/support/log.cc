#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mak::support {

namespace {

LogLevel parse_level(const char* text) noexcept {
  if (text == nullptr) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{
      static_cast<int>(parse_level(std::getenv("MAK_LOG")))};
  return level;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace mak::support
