#include "support/interner.h"

#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::support {

namespace {

constexpr std::size_t kInitialSlots = 64;  // power of two

// Grow when the table is 7/10 full; open addressing degrades past that.
bool over_load_factor(std::size_t size, std::size_t slots) noexcept {
  return (size + 1) * 10 > slots * 7;
}

}  // namespace

// ---------------------------------------------------------------- FlatMap64

FlatMap64::FlatMap64() : slots_(kInitialSlots) {}

const std::uint32_t* FlatMap64::find(std::uint64_t key) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = probe_start(key);; i = (i + 1) & mask) {
    const Slot& slot = slots_[i];
    if (slot.value == kNoValue) return nullptr;
    if (slot.key == key) return &slot.value;
  }
}

bool FlatMap64::insert(std::uint64_t key, std::uint32_t value) {
  if (over_load_factor(size_, slots_.size())) grow();
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = probe_start(key);; i = (i + 1) & mask) {
    Slot& slot = slots_[i];
    if (slot.value == kNoValue) {
      slot.key = key;
      slot.value = value;
      ++size_;
      return true;
    }
    if (slot.key == key) return false;
  }
}

void FlatMap64::clear() {
  slots_.assign(kInitialSlots, Slot{});
  size_ = 0;
}

void FlatMap64::reserve(std::size_t n) {
  std::size_t want = kInitialSlots;
  while (over_load_factor(n, want)) want *= 2;
  if (want <= slots_.size()) return;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(want, Slot{});
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.value != kNoValue) insert(slot.key, slot.value);
  }
}

void FlatMap64::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.value != kNoValue) insert(slot.key, slot.value);
  }
}

// -------------------------------------------------------------- UrlInterner

UrlInterner::UrlInterner() : slots_(kInitialSlots, kInvalidId) {}

std::uint32_t UrlInterner::intern(std::string_view text) {
  return intern_hashed(text, fnv1a(text));
}

std::uint32_t UrlInterner::intern_hashed(std::string_view text,
                                         std::uint64_t hash) {
  if (over_load_factor(strings_.size(), slots_.size())) grow();
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = probe_start(hash);; i = (i + 1) & mask) {
    const std::uint32_t id = slots_[i];
    if (id == kInvalidId) {
      const auto fresh = static_cast<std::uint32_t>(strings_.size());
      strings_.emplace_back(text);
      hashes_.push_back(hash);
      slots_[i] = fresh;
      return fresh;
    }
    if (hashes_[id] == hash && strings_[id] == text) return id;
  }
}

std::uint32_t UrlInterner::find(std::string_view text) const noexcept {
  return find_hashed(text, fnv1a(text));
}

std::uint32_t UrlInterner::find_hashed(std::string_view text,
                                       std::uint64_t hash) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = probe_start(hash);; i = (i + 1) & mask) {
    const std::uint32_t id = slots_[i];
    if (id == kInvalidId) return kInvalidId;
    if (hashes_[id] == hash && strings_[id] == text) return id;
  }
}

void UrlInterner::clear() {
  slots_.assign(kInitialSlots, kInvalidId);
  strings_.clear();
  hashes_.clear();
}

void UrlInterner::reserve(std::size_t n) {
  strings_.reserve(n);
  hashes_.reserve(n);
  std::size_t want = kInitialSlots;
  while (over_load_factor(n, want)) want *= 2;
  if (want <= slots_.size()) return;
  slots_.assign(want, kInvalidId);
  for (std::uint32_t id = 0; id < strings_.size(); ++id) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = probe_start(hashes_[id]);; i = (i + 1) & mask) {
      if (slots_[i] == kInvalidId) {
        slots_[i] = id;
        break;
      }
    }
  }
}

void UrlInterner::grow() {
  slots_.assign(slots_.size() * 2, kInvalidId);
  const std::size_t mask = slots_.size() - 1;
  for (std::uint32_t id = 0; id < strings_.size(); ++id) {
    for (std::size_t i = probe_start(hashes_[id]);; i = (i + 1) & mask) {
      if (slots_[i] == kInvalidId) {
        slots_[i] = id;
        break;
      }
    }
  }
}

json::Value UrlInterner::save_state() const {
  auto state = snapshot::make_state("support.url_interner", 1);
  json::Array strings;
  strings.reserve(strings_.size());
  for (const auto& text : strings_) strings.emplace_back(text);
  state.emplace("strings", json::Value(std::move(strings)));
  return json::Value(std::move(state));
}

void UrlInterner::load_state(const json::Value& state) {
  snapshot::check_header(state, "support.url_interner", 1);
  clear();
  const auto& strings = snapshot::require_array(state, "strings");
  reserve(strings.size());
  for (const auto& text : strings) {
    if (!text.is_string()) {
      throw SnapshotError("UrlInterner: strings must be strings");
    }
    const std::uint32_t before = static_cast<std::uint32_t>(size());
    if (intern(text.as_string()) != before) {
      throw SnapshotError("UrlInterner: duplicate interned string");
    }
  }
}

}  // namespace mak::support
