// Dense-id interning for the crawl hot path (docs/architecture.md,
// "Id interning & caching").
//
// The frontier and the link ledger used to identify elements by re-hashing
// 64-bit composite keys and URL strings through node-based hash tables on
// every push/take/requeue/dedup — millions of times per run. These two
// open-addressing structures map such identities to dense uint32 ids once,
// at discovery time; every later touch is an array index.
//
//   FlatMap64    64-bit key -> uint32 value, linear probing, no deletion.
//                The frontier's action-key -> slot map.
//   UrlInterner  string -> dense uint32 id with the id-order string store.
//                The ledger's URL set (ids double as insertion ranks).
//
// Both are per-crawl structures: single-threaded, grow-only, and cheap to
// rebuild from a checkpoint (their owners keep the on-disk byte format they
// always had and re-intern on load).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.h"

namespace mak::support {

// Open-addressing map from arbitrary 64-bit keys to uint32 values.
// Insertion-only (the crawl never forgets an action); value 0xFFFFFFFF is
// reserved as the empty-slot marker and must not be stored.
class FlatMap64 {
 public:
  static constexpr std::uint32_t kNoValue = 0xFFFFFFFFu;

  FlatMap64();

  // Pointer to the value for `key`, or nullptr when absent. Stable only
  // until the next insert.
  const std::uint32_t* find(std::uint64_t key) const noexcept;

  // Insert key -> value. Returns false (and stores nothing) if the key is
  // already present. `value` must not be kNoValue.
  bool insert(std::uint64_t key, std::uint32_t value);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  void clear();
  void reserve(std::size_t n);

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = kNoValue;  // kNoValue = slot empty
  };

  std::size_t probe_start(std::uint64_t key) const noexcept {
    // Multiplicative mix so clustered keys (sorted checkpoint reloads)
    // still spread; table size is a power of two.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 33) &
           (slots_.size() - 1);
  }
  void grow();

  std::vector<Slot> slots_;  // size always a power of two
  std::size_t size_ = 0;
};

// Interns strings (normalized URLs in the crawl) to dense uint32 ids in
// first-seen order. Lookup is hash-probed with full string comparison on
// candidate hits, so colliding hashes stay correct.
class UrlInterner {
 public:
  static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

  UrlInterner();

  // Id of `text`, interning it if new.
  std::uint32_t intern(std::string_view text);
  // Same, with the fnv1a hash already in hand (hot callers memoize it).
  std::uint32_t intern_hashed(std::string_view text, std::uint64_t hash);

  // Id of `text`, or kInvalidId when never interned.
  std::uint32_t find(std::string_view text) const noexcept;
  std::uint32_t find_hashed(std::string_view text,
                            std::uint64_t hash) const noexcept;

  const std::string& at(std::uint32_t id) const { return strings_[id]; }
  // All interned strings in id order.
  const std::vector<std::string>& strings() const noexcept { return strings_; }

  std::size_t size() const noexcept { return strings_.size(); }
  bool empty() const noexcept { return strings_.empty(); }
  void clear();
  void reserve(std::size_t n);

  // Checkpointing: the strings in id order. Loading re-interns them, so a
  // restored interner assigns identical ids for identical inputs.
  json::Value save_state() const;
  void load_state(const json::Value& state);

 private:
  std::size_t probe_start(std::uint64_t hash) const noexcept {
    return static_cast<std::size_t>((hash * 0x9e3779b97f4a7c15ULL) >> 33) &
           (slots_.size() - 1);
  }
  void grow();

  std::vector<std::uint32_t> slots_;   // id or kInvalidId; power-of-two size
  std::vector<std::string> strings_;   // by id
  std::vector<std::uint64_t> hashes_;  // fnv1a(strings_[id]), by id
};

}  // namespace mak::support
