#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mak::support::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  const auto& object = as_object();
  const auto it = object.find(std::string(key));
  return it != object.end() ? &it->second : nullptr;
}

std::optional<double> Value::number_at(std::string_view key) const noexcept {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::optional<std::string> Value::string_at(
    std::string_view key) const noexcept {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

std::optional<bool> Value::bool_at(std::string_view key) const noexcept {
  const Value* v = find(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->as_bool();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skip_whitespace();
    auto value = parse_value();
    if (!value.has_value()) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value() {
    if (depth_ >= kMaxDepth) return std::nullopt;
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.has_value()) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        return consume_literal("true") ? std::optional<Value>(Value(true))
                                       : std::nullopt;
      case 'f':
        return consume_literal("false") ? std::optional<Value>(Value(false))
                                        : std::nullopt;
      case 'n':
        return consume_literal("null") ? std::optional<Value>(Value(nullptr))
                                       : std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_object() {
    ++depth_;
    if (!consume('{')) return std::nullopt;
    Object object;
    skip_whitespace();
    if (consume('}')) {
      --depth_;
      return Value(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      auto key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) return std::nullopt;
      skip_whitespace();
      auto value = parse_value();
      if (!value.has_value()) return std::nullopt;
      object.insert_or_assign(std::move(*key), std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return Value(std::move(object));
      }
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array() {
    ++depth_;
    if (!consume('[')) return std::nullopt;
    Array array;
    skip_whitespace();
    if (consume(']')) {
      --depth_;
      return Value(std::move(array));
    }
    for (;;) {
      skip_whitespace();
      auto value = parse_value();
      if (!value.has_value()) return std::nullopt;
      array.push_back(std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return Value(std::move(array));
      }
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char escape_char = text_[pos_++];
        switch (escape_char) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Encode the code point as UTF-8 (surrogate pairs untreated:
            // our writers only emit \u00XX escapes below U+0080).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      out += c;
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_start) return std::nullopt;
    // RFC 8259: no leading zeros ("01" is invalid, "0.1" is fine).
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t fraction_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == fraction_start) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exponent_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exponent_start) return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Value(parsed);
  }

  static constexpr int kMaxDepth = kMaxParseDepth;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

namespace {

void dump_to(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    out += format_double(v.as_number());
  } else if (v.is_string()) {
    out += '"';
    out += escape(v.as_string());
    out += '"';
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& item : v.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_to(item, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += escape(key);
      out += "\":";
      dump_to(value, out);
    }
    out += '}';
  }
}

}  // namespace

std::string dump(const Value& v) {
  std::string out;
  dump_to(v, out);
  return out;
}

std::string format_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";  // schema-local inf
  // Integral values (the common case: counts, milliseconds) print exactly.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", v);
    return buffer;
  }
  // Shortest representation that round-trips.
  char buffer[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v) break;
  }
  return buffer;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mak::support::json
