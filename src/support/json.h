// Minimal JSON: a parsed value tree and a strict recursive-descent parser.
//
// The repo emits JSON in several places (harness/json_report, bench
// artifacts) but until now never read it back; tools/metrics_diff needs to.
// This is deliberately small: UTF-8 pass-through, no comments, no trailing
// commas, doubles for all numbers (adequate for the bench schema, where
// counts fit in 2^53).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mak::support::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  // Checked accessors: throw std::bad_variant_access on kind mismatch.
  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }

  // Object member lookup; nullptr when not an object or key absent.
  const Value* find(std::string_view key) const noexcept;
  // Convenience typed lookups for the flat schemas we consume.
  std::optional<double> number_at(std::string_view key) const noexcept;
  std::optional<std::string> string_at(std::string_view key) const noexcept;
  std::optional<bool> bool_at(std::string_view key) const noexcept;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

// Maximum container nesting depth parse() accepts. Checkpoints and bench
// artifacts nest a handful of levels; anything deeper is hostile input and
// is rejected before it can exhaust the parser's recursion stack.
inline constexpr int kMaxParseDepth = 64;

// Parse a complete JSON document (surrounding whitespace allowed). Returns
// nullopt on any syntax error, trailing garbage, nesting beyond
// kMaxParseDepth, or a document truncated mid-token (strings, escapes and
// numbers cut at EOF all fail cleanly).
std::optional<Value> parse(std::string_view text);

// Serialize a value tree to a compact document (no whitespace, object keys
// in std::map order). parse(dump(v)) reproduces v exactly: numbers go
// through format_double, which picks the shortest round-tripping form.
std::string dump(const Value& v);

// Serialize a double the way all JSON writers in this repo do: shortest
// form via %.17g that still round-trips, with integral values printed
// without an exponent or trailing ".0" noise where possible.
std::string format_double(double v);

// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string escape(std::string_view s);

}  // namespace mak::support::json
