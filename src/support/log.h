// Minimal leveled logger.
//
// The harness binaries print their tables to stdout; diagnostics go through
// this logger to stderr so output stays machine-parsable. Level is set
// programmatically or via the MAK_LOG environment variable
// (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace mak::support {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

// Global log level. Reads MAK_LOG once on first use; defaults to kWarn.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

bool log_enabled(LogLevel level) noexcept;

// Internal sink; prefer the MAK_LOG_* macros.
void log_write(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mak::support

#define MAK_LOG(level)                            \
  if (!::mak::support::log_enabled(level)) {      \
  } else                                          \
    ::mak::support::detail::LogLine(level)

#define MAK_LOG_ERROR MAK_LOG(::mak::support::LogLevel::kError)
#define MAK_LOG_WARN MAK_LOG(::mak::support::LogLevel::kWarn)
#define MAK_LOG_INFO MAK_LOG(::mak::support::LogLevel::kInfo)
#define MAK_LOG_DEBUG MAK_LOG(::mak::support::LogLevel::kDebug)
#define MAK_LOG_TRACE MAK_LOG(::mak::support::LogLevel::kTrace)
