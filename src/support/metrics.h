// Process-wide metrics: counters, gauges, fixed-bucket histograms and RAII
// timing spans.
//
// The paper's claims are quantitative (coverage over time, regret, per-arm
// dynamics), so the framework exposes its internals through one registry
// instead of ad-hoc prints. Design constraints, in order:
//
//   1. Observation must never perturb an experiment. Instrumentation only
//      reads the virtual clock and bumps atomics — it never consumes RNG,
//      never advances time, never writes to stdout. A run with metrics
//      enabled is bit-identical to a run with metrics disabled.
//   2. Thread-safe recording. `harness::run_repeated` executes repetitions
//      on a thread pool; counter/histogram recording uses relaxed atomics,
//      so cross-run sums are exact regardless of interleaving. Gauges are
//      last-writer-wins (documented per-gauge in docs/observability.md).
//   3. Cheap when off. MAK_METRICS=0 turns every record operation into a
//      single relaxed atomic load and branch.
//
// Metric objects are created on first use and live for the process lifetime;
// references returned by the registry never dangle, so hot paths cache them
// in function-local statics. reset_values() zeroes values but keeps the
// objects (and any cached references) valid.
//
// All metric names come from support/metric_names.h; docs/observability.md
// is the authoritative catalog (enforced by tools/check_docs.sh).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/clock.h"

namespace mak::support {

// Global kill switch (initialized from MAK_METRICS; "0"/"off"/"false"
// disable). Checked by every record operation.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value; concurrent writers race benignly (last writer wins).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with percentile estimation.
//
// Buckets are defined by a sorted list of inclusive upper bounds; a value v
// lands in the first bucket with v <= bound, or in the implicit overflow
// bucket. Percentiles interpolate linearly inside the target bucket, clamped
// to the observed [min, max], so they are estimates whose error is bounded
// by the bucket width — pick bounds to match the quantity's scale.
class Histogram {
 public:
  // `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept;  // 0 when empty
  double max() const noexcept;  // 0 when empty
  // p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  // Count in bucket `i` (0..bounds().size(); the last index is overflow).
  std::uint64_t bucket_count(std::size_t i) const noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    // Pairs of (inclusive upper bound, count); the final entry is the
    // overflow bucket and carries an infinite bound.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  Snapshot snapshot() const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +inf when empty
  std::atomic<double> max_;  // -inf when empty
};

// Commonly used bucket layouts.
std::vector<double> latency_bounds_ms();   // 1 ms .. 100 s, roughly 1-2-5
std::vector<double> duration_bounds_us();  // 1 us .. 10 s, roughly 1-2-5
std::vector<double> unit_interval_bounds();  // [0, 1] in 0.05 steps
std::vector<double> small_count_bounds();    // 0..8 (hops, retries)
std::vector<double> level_bounds();  // 0..512 (frontier levels reach 100s)

// Everything the registry holds, copied at one point in time. Maps are
// ordered by name so serialization is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

// Name -> metric map. Creation takes a mutex; the returned references are
// stable for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `upper_bounds` applies on first registration only; later calls with the
  // same name return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);
  Histogram& histogram(std::string_view name);  // latency_bounds_ms()

  // Zero every value, keeping the registered objects (and cached references)
  // alive. Benches call this between configurations.
  void reset_values();

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// RAII timing span charging two histograms on destruction: elapsed wall
// clock (microseconds) into `wall_us`, and — when a SimClock is attached —
// elapsed virtual time (milliseconds) into `virtual_ms`. Wall and virtual
// cost are separately attributable: a fetch that charges 5000 virtual ms of
// simulated latency may cost 40 real microseconds. Spans nest freely; each
// records its own window.
class MetricSpan {
 public:
  MetricSpan(Histogram& wall_us, Histogram* virtual_ms,
             const SimClock* clock) noexcept;
  ~MetricSpan();

  MetricSpan(const MetricSpan&) = delete;
  MetricSpan& operator=(const MetricSpan&) = delete;

 private:
  Histogram* wall_us_;
  Histogram* virtual_ms_;
  const SimClock* clock_;
  std::chrono::steady_clock::time_point wall_start_;
  VirtualMillis virtual_start_ = 0;
  bool active_ = false;
};

}  // namespace mak::support
