// Virtual time for crawl experiments.
//
// The paper runs each crawler for 30 wall-clock minutes against a live web
// application. We replace wall-clock time with a deterministic virtual clock:
// every simulated network fetch, parse and interaction charges the clock a
// cost in virtual milliseconds. Experiments then run in milliseconds of real
// time while preserving the paper's "fixed time budget" semantics.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace mak::support {

// A duration/instant in virtual milliseconds.
using VirtualMillis = std::int64_t;

constexpr VirtualMillis kMillisPerSecond = 1000;
constexpr VirtualMillis kMillisPerMinute = 60 * kMillisPerSecond;

// Monotonic virtual clock.
//
// Ownership rule: NOT thread-safe — every run owns exactly one SimClock and
// never shares it across threads. `harness::run_once` constructs the clock,
// network, app instance and crawler together on its calling thread; the
// MAK_THREADS>1 pool in `harness::run_repeated` parallelizes across whole
// runs, so each worker only ever touches clocks it created itself
// (tests/harness_test.cc:RunRepeatedTest.ParallelMatchesSerial locks this
// in by asserting bit-identical results at any thread count). Observers may
// hold `const SimClock&` (Deadline, FaultInjector, support::MetricSpan) but
// must live on the owning run's thread too.
class SimClock {
 public:
  SimClock() = default;

  // Current virtual time since the start of the experiment.
  VirtualMillis now() const noexcept { return now_; }

  // Charge a non-negative cost to the clock.
  void advance(VirtualMillis cost) {
    if (cost < 0) throw std::invalid_argument("SimClock::advance: negative");
    now_ += cost;
  }

  void reset() noexcept { now_ = 0; }

  // Checkpoint restore: jump to an absolute (non-negative) virtual instant.
  void restore(VirtualMillis now) {
    if (now < 0) throw std::invalid_argument("SimClock::restore: negative");
    now_ = now;
  }

 private:
  VirtualMillis now_ = 0;
};

// A deadline wrapper: "run until the 30-minute budget is exhausted".
class Deadline {
 public:
  Deadline(const SimClock& clock, VirtualMillis budget)
      : clock_(&clock), budget_(budget) {
    if (budget < 0) throw std::invalid_argument("Deadline: negative budget");
  }

  bool expired() const noexcept { return clock_->now() >= budget_; }
  VirtualMillis remaining() const noexcept {
    const VirtualMillis left = budget_ - clock_->now();
    return left > 0 ? left : 0;
  }
  VirtualMillis budget() const noexcept { return budget_; }

 private:
  const SimClock* clock_;
  VirtualMillis budget_;
};

}  // namespace mak::support
