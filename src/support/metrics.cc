#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace mak::support {

namespace {

bool enabled_from_env() {
  const char* value = std::getenv("MAK_METRICS");
  if (value == nullptr || *value == '\0') return true;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
           std::strcmp(value, "false") == 0);
}

std::atomic<bool> g_enabled{enabled_from_env()};

void atomic_add(std::atomic<double>& target, double v) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: empty bounds");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must strictly increase");
  }
}

void Histogram::record(double v) noexcept {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow when end()
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const noexcept {
  return i < buckets_.size() ? buckets_[i].load(std::memory_order_relaxed)
                             : 0;
}

double Histogram::percentile(double p) const noexcept {
  p = std::clamp(p, 0.0, 100.0);
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  if (total == 0) return 0.0;

  const double observed_min = min();
  const double observed_max = max();
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Interpolate inside bucket i, clamped to the observed range so a
      // sparse histogram never reports a value outside [min, max].
      double lo = i == 0 ? observed_min : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : observed_max;
      lo = std::max(lo, observed_min);
      hi = std::min(hi, observed_max);
      if (hi < lo) hi = lo;
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + std::clamp(fraction, 0.0, 1.0) * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return observed_max;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = percentile(50.0);
  s.p90 = percentile(90.0);
  s.p99 = percentile(99.0);
  s.buckets.reserve(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double bound = i < bounds_.size()
                             ? bounds_[i]
                             : std::numeric_limits<double>::infinity();
    s.buckets.emplace_back(bound,
                           buckets_[i].load(std::memory_order_relaxed));
  }
  return s;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ------------------------------------------------------------ bucket layouts

std::vector<double> latency_bounds_ms() {
  return {1,    2,    5,    10,   20,    50,    100,   200,
          500,  1000, 2000, 5000, 10000, 20000, 50000, 100000};
}

std::vector<double> duration_bounds_us() {
  return {1,     2,     5,     10,    20,     50,     100,    200,    500,
          1000,  2000,  5000,  10000, 20000,  50000,  100000, 200000, 500000,
          1000000, 2000000, 5000000, 10000000};
}

std::vector<double> unit_interval_bounds() {
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.05 * i);
  return bounds;
}

std::vector<double> small_count_bounds() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8};
}

std::vector<double> level_bounds() {
  return {0,  1,  2,  3,  4,  5,  6,   7,   8,   12,  16, 24,
          32, 48, 64, 96, 128, 192, 256, 384, 512};
}

// ------------------------------------------------------------------ Registry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(upper_bounds)))
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, latency_bounds_ms());
}

void MetricsRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, counter] : counters_) {
    s.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    s.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    s.histograms.emplace(name, histogram->snapshot());
  }
  return s;
}

// ---------------------------------------------------------------- MetricSpan

MetricSpan::MetricSpan(Histogram& wall_us, Histogram* virtual_ms,
                       const SimClock* clock) noexcept
    : wall_us_(&wall_us), virtual_ms_(virtual_ms), clock_(clock) {
  if (!metrics_enabled()) return;
  active_ = true;
  wall_start_ = std::chrono::steady_clock::now();
  if (clock_ != nullptr) virtual_start_ = clock_->now();
}

MetricSpan::~MetricSpan() {
  if (!active_) return;
  const auto wall_end = std::chrono::steady_clock::now();
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(wall_end - wall_start_)
          .count();
  wall_us_->record(elapsed_us);
  if (virtual_ms_ != nullptr && clock_ != nullptr) {
    virtual_ms_->record(
        static_cast<double>(clock_->now() - virtual_start_));
  }
}

}  // namespace mak::support
