// Injectable filesystem: the seam between durable-artifact writers and the
// disk, plus a deterministic disk-fault injector (docs/robustness.md).
//
// The checkpoint writer's atomicity story (tmp + rename, CRC-32 envelope)
// is only as good as its handling of an actually faulty filesystem: short
// writes, ENOSPC, failed renames, and fsyncs that report success for data
// that never reaches the platter. All durable writes in the harness
// (checkpoints, bench artifacts, worker result files, failure bundles) go
// through the `Fs` interface so tests and the CI chaos job can swap in
// `FaultFs` — a fault-injecting wrapper seeded exactly like
// `httpsim::FaultInjector` — and prove that restore-newest-valid survives
// every injected disk fault.
//
// Thread-ownership rule: `RealFs` is stateless and safe everywhere;
// `FaultFs` owns an RNG stream and counters and must not be shared across
// threads (the harness only writes checkpoints on the serial path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace mak::support::fs {

// Minimal durable-file operations. Every call reports failure by return
// value — never by exception — so callers decide whether a failed write is
// fatal (a worker result) or ignorable (a periodic checkpoint).
class Fs {
 public:
  virtual ~Fs() = default;

  // Replace `path`'s contents (created if absent). When `durable` is true
  // the data is flushed and fsync'ed before returning. False on any error;
  // the file may then hold a prefix of `contents` (short write).
  virtual bool write_file(const std::string& path, std::string_view contents,
                          bool durable) = 0;
  // Whole-file read; nullopt when missing or unreadable.
  virtual std::optional<std::string> read_file(const std::string& path) = 0;
  virtual bool rename(const std::string& from, const std::string& to) = 0;
  virtual bool remove(const std::string& path) = 0;
  virtual bool create_directories(const std::string& path) = 0;
  // Names (not paths) of regular files directly inside `dir`; empty when
  // the directory is missing.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;
  virtual bool exists(const std::string& path) = 0;
};

// Pass-through to the real filesystem (std::filesystem + POSIX fsync).
class RealFs : public Fs {
 public:
  bool write_file(const std::string& path, std::string_view contents,
                  bool durable) override;
  std::optional<std::string> read_file(const std::string& path) override;
  bool rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) override;
  bool create_directories(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  bool exists(const std::string& path) override;
};

// Declarative disk-fault profile. Rates are per-operation probabilities,
// drawn from the FaultFs RNG stream in call order, so a given (seed,
// profile) pair injects a reproducible fault sequence.
struct FsFaultProfile {
  double write_error_rate = 0.0;   // write fails cleanly (ENOSPC-style);
                                   // a prefix may have been written
  double torn_write_rate = 0.0;    // write stores only a prefix but REPORTS
                                   // SUCCESS (the dangerous lie)
  double rename_error_rate = 0.0;  // rename fails, source left in place
  double remove_error_rate = 0.0;  // remove fails, file survives
  double sync_lie_rate = 0.0;      // durable write skips the fsync but
                                   // reports success; the file is then torn
                                   // by simulate_power_loss()
  std::uint64_t seed = 0x5eedf5;

  bool enabled() const noexcept {
    return write_error_rate > 0.0 || torn_write_rate > 0.0 ||
           rename_error_rate > 0.0 || remove_error_rate > 0.0 ||
           sync_lie_rate > 0.0;
  }

  // Spec grammar, mirroring httpsim::FaultProfile::parse:
  //   "seed=7,write_fail=0.1,torn=0.05,rename_fail=0.1,remove_fail=0.05,
  //    sync_fail=0.1"
  // Returns nullopt on a malformed spec.
  static std::optional<FsFaultProfile> parse(std::string_view spec);
  // Profile from the MAK_FAULTFS environment variable; nullopt when unset,
  // empty, or unparsable.
  static std::optional<FsFaultProfile> from_env();
  // Canonical spec string (round-trips through parse()).
  std::string describe() const;
};

// Fault-injecting wrapper over another Fs. Reads and metadata pass through
// untouched; writes, renames and removes may fail or lie per the profile.
class FaultFs : public Fs {
 public:
  FaultFs(Fs& base, FsFaultProfile profile);

  bool write_file(const std::string& path, std::string_view contents,
                  bool durable) override;
  std::optional<std::string> read_file(const std::string& path) override;
  bool rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) override;
  bool create_directories(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  bool exists(const std::string& path) override;

  // Tear every file whose last durable write got a lying fsync (truncate to
  // half the written length), as a power loss would. Clears the tracked set;
  // renames follow the data, so the torn file is the renamed target.
  void simulate_power_loss();

  struct Counters {
    std::size_t writes = 0;
    std::size_t injected_write_errors = 0;
    std::size_t torn_writes = 0;
    std::size_t injected_rename_errors = 0;
    std::size_t injected_remove_errors = 0;
    std::size_t sync_lies = 0;
    std::size_t total() const noexcept {
      return injected_write_errors + torn_writes + injected_rename_errors +
             injected_remove_errors + sync_lies;
    }
  };
  const Counters& counters() const noexcept { return counters_; }
  const FsFaultProfile& profile() const noexcept { return profile_; }

 private:
  Fs& base_;
  FsFaultProfile profile_;
  Rng rng_;
  Counters counters_;
  // path -> written length for durable writes whose fsync lied.
  std::vector<std::pair<std::string, std::size_t>> unsynced_;
};

// Process-wide default used by writers that don't take an explicit Fs&
// (CheckpointManager, bench artifacts, the orchestrator). Resolution order:
// the instance installed by set_default_fs, else a process-lifetime FaultFs
// configured from MAK_FAULTFS, else a RealFs singleton.
Fs& default_fs();
// Test hook: override (nullptr restores the environment-driven default).
void set_default_fs(Fs* fs);

// Atomic whole-file replace through `fs`: write `path + ".tmp"`, read it
// back to defeat torn-writes-that-report-success, then rename over `path`;
// each stage retried up to `attempts` times. The workhorse behind artifacts
// that must never land torn (worker results, bench JSON, bundle manifests).
bool write_file_atomic_verified(Fs& fs, const std::string& path,
                                std::string_view contents, int attempts = 8);

}  // namespace mak::support::fs
