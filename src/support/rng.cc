#include "support/rng.h"

#include <cmath>
#include <numbers>

namespace mak::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() noexcept { return Rng(next()); }

void Rng::restore(const State& state) {
  if (state == State{}) {
    throw std::invalid_argument("Rng::restore: all-zero state");
  }
  for (std::size_t i = 0; i < state.size(); ++i) state_[i] = state[i];
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::gaussian() noexcept {
  // Box-Muller; avoid log(0).
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("Rng::weighted_index: bad weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: zero total weight");
  }
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

}  // namespace mak::support
