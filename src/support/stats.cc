#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace mak::support {

void RunningStats::add(double x) noexcept {
  ++count_;
  total_ += x;
  if (count_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double logistic(double x) noexcept {
  // Branch on sign for numerical stability at large |x|.
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median_of(std::vector<double> xs) noexcept {
  return percentile_of(std::move(xs), 50.0);
}

double percentile_of(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace mak::support
