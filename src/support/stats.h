// Streaming and batch statistics used by reward shaping and the harness.
#pragma once

#include <cstddef>
#include <vector>

namespace mak::support {

// Numerically stable streaming mean/variance (Welford's algorithm).
//
// MAK standardizes link-coverage increments against the full history of
// observed increments; this class is that history.
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  // Population variance/stddev (the paper standardizes against "all the
  // observed increments up to t", i.e. the population, not a sample).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double total() const noexcept { return total_; }

  // Checkpointing: the raw Welford accumulator, and exact restoration of a
  // previously observed (count, mean, m2, min, max, total) tuple.
  double m2() const noexcept { return m2_; }
  void restore(std::size_t count, double mean, double m2, double min,
               double max, double total) noexcept {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
    min_ = min;
    max_ = max;
    total_ = total;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

// Logistic squash 1 / (1 + e^-x): maps the standardized reward from
// (-inf, inf) into [0, 1] as required by Exp3.1 (Section IV-D of the paper).
double logistic(double x) noexcept;

// Batch helpers for the harness.
double mean_of(const std::vector<double>& xs) noexcept;
double stddev_of(const std::vector<double>& xs) noexcept;  // population
double median_of(std::vector<double> xs) noexcept;
double percentile_of(std::vector<double> xs, double p) noexcept;  // p in [0,100]

}  // namespace mak::support
