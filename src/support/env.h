// Validated environment-variable parsing for long-lived services.
//
// The batch CLIs historically treated a malformed env knob as "use the
// default", which is survivable for a one-shot experiment but poisonous for
// a daemon: a typo like MAK_ORCH_BACKOFF_MS=-5 silently runs with the
// default and the operator only finds out under load. Configuration
// surfaces that keep a process alive (orchestrator, session server) parse
// through these helpers instead: an unparsable or out-of-range value fails
// fast at startup with a message naming the variable, the offending value
// and the accepted range.
#pragma once

#include <cstdint>
#include <string>

namespace mak::support::env {

// Parse `name` as a decimal integer in [min, max]. Unset or empty returns
// `fallback` (which need not lie inside the range — 0 frequently means
// "disabled"). A set-but-unparsable value, trailing garbage ("5x"), or a
// value outside [min, max] prints one diagnostic line to stderr naming the
// valid range and exits the process with status 2 — misconfiguration must
// never be silently corrected.
long long require_int(const char* name, long long fallback, long long min,
                      long long max);

// Same contract for a required-positive count (convenience for the common
// [1, max] case).
std::size_t require_count(const char* name, std::size_t fallback,
                          std::size_t max);

// Test seam: when non-null, require_int reports the diagnostic by assigning
// *message and throwing std::invalid_argument instead of exiting, so death
// semantics stay unit-testable without forking. Returns the previous sink.
std::string* set_failure_sink(std::string* sink) noexcept;

}  // namespace mak::support::env
