#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace mak::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(text, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) noexcept {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  return fnv1a_accum(kFnv1aSeed, text);
}

std::uint64_t fnv1a_accum(std::uint64_t hash, std::string_view text) noexcept {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t hash_bytes(std::string_view text) noexcept {
  constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ULL;
  // Seed with the length so "a" and "a\0...padding" styles cannot alias.
  std::uint64_t hash = kFnv1aSeed ^ (text.size() * kMul);
  const char* cursor = text.data();
  std::size_t remaining = text.size();
  while (remaining >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, cursor, 8);
    hash = (hash ^ chunk) * kMul;
    hash ^= hash >> 29;
    cursor += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, cursor, remaining);
    hash = (hash ^ tail) * kMul;
    hash ^= hash >> 29;
  }
  hash *= kMul;
  hash ^= hash >> 32;
  return hash;
}

std::string format_thousands(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out += ',';
    out += *it;
    ++counter;
  }
  if (negative) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace mak::support
