// Canonical catalog of every metric name registered by the framework.
//
// All instrumentation sites pull their names from this header — never from
// inline string literals — so the set of registered metrics is greppable in
// one place. tools/check_docs.sh enforces that every name listed here is
// cataloged in docs/observability.md (and vice versa); add the documentation
// row in the same change that adds a constant.
//
// Naming convention: `<subsystem>.<noun>[.<qualifier>]`, lower-case, dots as
// separators. Timing-span histograms come in pairs: `<base>.wall_us` (real
// CPU cost, microseconds) and `<base>.virtual_ms` (simulated cost charged to
// the run's support::SimClock, milliseconds).
#pragma once

#include <string_view>

namespace mak::support::metric {

// --- httpsim: the virtual network ---------------------------------------
inline constexpr std::string_view kHttpsimFetches = "httpsim.fetches";
inline constexpr std::string_view kHttpsimRequests = "httpsim.requests";
inline constexpr std::string_view kHttpsimRedirects = "httpsim.redirects";
inline constexpr std::string_view kHttpsimNetworkErrors =
    "httpsim.network_errors";
inline constexpr std::string_view kHttpsimFetchVirtualMs =
    "httpsim.fetch.virtual_ms";
inline constexpr std::string_view kHttpsimFaultInjectedErrors =
    "httpsim.fault.injected_errors";
inline constexpr std::string_view kHttpsimFaultInjectedDrops =
    "httpsim.fault.injected_drops";
inline constexpr std::string_view kHttpsimFaultLatencySpikes =
    "httpsim.fault.latency_spikes";
inline constexpr std::string_view kHttpsimFaultWindowRequests =
    "httpsim.fault.window_requests";
inline constexpr std::string_view kHttpsimResponseCacheHits =
    "httpsim.response_cache.hits";

// --- core: browser, crawl loop, frontier --------------------------------
inline constexpr std::string_view kBrowserInteractions = "browser.interactions";
inline constexpr std::string_view kBrowserNavigations = "browser.navigations";
inline constexpr std::string_view kBrowserRetries = "browser.retries";
inline constexpr std::string_view kBrowserTransportFailures =
    "browser.transport_failures";
inline constexpr std::string_view kBrowserParseCacheHits =
    "browser.parse_cache.hits";
inline constexpr std::string_view kBrowserParseCacheMisses =
    "browser.parse_cache.misses";
inline constexpr std::string_view kBrowserParseCacheEntries =
    "browser.parse_cache.entries";

inline constexpr std::string_view kCrawlerSteps = "crawler.steps";
inline constexpr std::string_view kCrawlerRecoveries = "crawler.recoveries";
inline constexpr std::string_view kCrawlerReward = "crawler.reward";
inline constexpr std::string_view kCrawlerStepWallUs = "crawler.step.wall_us";
inline constexpr std::string_view kCrawlerStepVirtualMs =
    "crawler.step.virtual_ms";

inline constexpr std::string_view kFrontierPushes = "frontier.pushes";
inline constexpr std::string_view kFrontierDuplicates = "frontier.duplicates";
inline constexpr std::string_view kFrontierTakes = "frontier.takes";
inline constexpr std::string_view kFrontierRequeues = "frontier.requeues";
inline constexpr std::string_view kFrontierSize = "frontier.size";
inline constexpr std::string_view kFrontierLowestLevel =
    "frontier.lowest_level";
inline constexpr std::string_view kFrontierTakeLevel = "frontier.take.level";
inline constexpr std::string_view kFrontierDepthL0 = "frontier.depth.l0";
inline constexpr std::string_view kFrontierDepthL1 = "frontier.depth.l1";
inline constexpr std::string_view kFrontierDepthL2 = "frontier.depth.l2";
inline constexpr std::string_view kFrontierDepthL3 = "frontier.depth.l3";
inline constexpr std::string_view kFrontierDepthRest = "frontier.depth.rest";
inline constexpr std::string_view kFrontierInternActions =
    "frontier.intern.actions";

inline constexpr std::string_view kMakArmHead = "mak.arm.head";
inline constexpr std::string_view kMakArmTail = "mak.arm.tail";
inline constexpr std::string_view kMakArmRandom = "mak.arm.random";
inline constexpr std::string_view kMakFailedInteractions =
    "mak.failed_interactions";

// --- rl: bandit policies and reward shaping -----------------------------
inline constexpr std::string_view kExp31Updates = "rl.exp31.updates";
inline constexpr std::string_view kExp31WeightResets = "rl.exp31.weight_resets";
inline constexpr std::string_view kExp31Epoch = "rl.exp31.epoch";
inline constexpr std::string_view kExp31Gamma = "rl.exp31.gamma";
inline constexpr std::string_view kExp31ProbArm0 = "rl.exp31.prob.arm0";
inline constexpr std::string_view kExp31ProbArm1 = "rl.exp31.prob.arm1";
inline constexpr std::string_view kExp31ProbArm2 = "rl.exp31.prob.arm2";
inline constexpr std::string_view kExp3Updates = "rl.exp3.updates";

inline constexpr std::string_view kRewardObservations = "rl.reward.observations";
inline constexpr std::string_view kRewardMean = "rl.reward.mean";
inline constexpr std::string_view kRewardStddev = "rl.reward.stddev";
inline constexpr std::string_view kRewardShaped = "rl.reward.shaped";

// --- rl: cumulative-regret accounting (docs/policies.md) ----------------
inline constexpr std::string_view kRegretUpdates = "regret.updates";
inline constexpr std::string_view kRegretRealizedGain = "regret.realized_gain";
inline constexpr std::string_view kRegretBestArmGain = "regret.best_arm_gain";
inline constexpr std::string_view kRegretWeak = "regret.weak";
inline constexpr std::string_view kRegretCumulative = "regret.cumulative";

// --- webapp: nonstationary drift layer (docs/fault_injection.md) --------
inline constexpr std::string_view kDriftRequests = "drift.requests";
inline constexpr std::string_view kDriftGoneRequests = "drift.gone_requests";
inline constexpr std::string_view kDriftRewrittenLinks =
    "drift.rewritten_links";
inline constexpr std::string_view kDriftChurnedLinks = "drift.churned_links";
inline constexpr std::string_view kDriftExpiredSessions =
    "drift.expired_sessions";
inline constexpr std::string_view kDriftStormRequests = "drift.storm_requests";
inline constexpr std::string_view kDriftDeployGeneration =
    "drift.deploy_generation";

// --- harness: experiment protocol ---------------------------------------
inline constexpr std::string_view kHarnessRuns = "harness.runs";
inline constexpr std::string_view kHarnessRunWallUs = "harness.run.wall_us";
inline constexpr std::string_view kHarnessRunVirtualMs =
    "harness.run.virtual_ms";

// --- harness: checkpoint/recovery and the run supervisor ----------------
inline constexpr std::string_view kCheckpointWrites = "checkpoint.writes";
inline constexpr std::string_view kCheckpointRestores = "checkpoint.restores";
inline constexpr std::string_view kCheckpointInvalidFiles =
    "checkpoint.invalid_files";
inline constexpr std::string_view kCheckpointWriteWallUs =
    "checkpoint.write.wall_us";
inline constexpr std::string_view kCheckpointWriteFailures =
    "checkpoint.write_failures";
inline constexpr std::string_view kSupervisorStalls = "supervisor.stalls";
inline constexpr std::string_view kSupervisorAborts = "supervisor.aborts";

// --- support: injectable filesystem / disk-fault layer ------------------
inline constexpr std::string_view kFsWrites = "fs.writes";
inline constexpr std::string_view kFsInjectedFaults = "fs.injected_faults";

// --- harness: process pool and run orchestrator -------------------------
inline constexpr std::string_view kProcpoolSpawns = "procpool.spawns";
inline constexpr std::string_view kProcpoolFailures = "procpool.failures";
inline constexpr std::string_view kProcpoolRetries = "procpool.retries";
inline constexpr std::string_view kOrchestratorFailedRepetitions =
    "orchestrator.failed_repetitions";
inline constexpr std::string_view kOrchestratorFailureBundles =
    "orchestrator.failure_bundles";

// --- serve: multi-tenant session server (docs/robustness.md) ------------
inline constexpr std::string_view kServeSessionsOpened =
    "serve.sessions.opened";
inline constexpr std::string_view kServeSessionsClosed =
    "serve.sessions.closed";
inline constexpr std::string_view kServeSessionsFinished =
    "serve.sessions.finished";
inline constexpr std::string_view kServeSessionsResident =
    "serve.sessions.resident";
inline constexpr std::string_view kServeSessionsSuspended =
    "serve.sessions.suspended";
inline constexpr std::string_view kServeSessionsResumed =
    "serve.sessions.resumed";
inline constexpr std::string_view kServeSessionsEvicted =
    "serve.sessions.evicted";
inline constexpr std::string_view kServeAdmissionRejections =
    "serve.admission.rejections";
inline constexpr std::string_view kServeAdmissionQueueDepth =
    "serve.admission.queue_depth";
inline constexpr std::string_view kServeSteps = "serve.steps";
inline constexpr std::string_view kServeTicks = "serve.ticks";
inline constexpr std::string_view kServeStallRecoveries =
    "serve.stall_recoveries";
inline constexpr std::string_view kServeWorkerDispatches =
    "serve.worker.dispatches";
inline constexpr std::string_view kServeWorkerFailures =
    "serve.worker.failures";
inline constexpr std::string_view kServeWorkerRetries = "serve.worker.retries";
inline constexpr std::string_view kServeWorkerCancelled =
    "serve.worker.cancelled";

// --- serve: per-tenant resource quotas ----------------------------------
inline constexpr std::string_view kQuotaDeprioritized = "quota.deprioritized";
inline constexpr std::string_view kQuotaSuspensions = "quota.suspensions";
inline constexpr std::string_view kQuotaRejections = "quota.rejections";
inline constexpr std::string_view kQuotaCheckpointBytes =
    "quota.checkpoint_bytes";

}  // namespace mak::support::metric
