#include "support/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/strings.h"

namespace mak::support::fs {

namespace stdfs = std::filesystem;

// ------------------------------------------------------------------ RealFs

bool RealFs::write_file(const std::string& path, std::string_view contents,
                        bool durable) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return false;
  }
  if (durable) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return false;
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    return synced;
  }
  return true;
}

std::optional<std::string> RealFs::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

bool RealFs::rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  return !ec;
}

bool RealFs::remove(const std::string& path) {
  std::error_code ec;
  return stdfs::remove(path, ec) && !ec;
}

bool RealFs::create_directories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  return !ec && stdfs::is_directory(path, ec);
}

std::vector<std::string> RealFs::list_dir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : stdfs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  return names;
}

bool RealFs::exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

// ----------------------------------------------------------- FsFaultProfile

namespace {

bool parse_rate(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  out = value;
  return true;
}

}  // namespace

std::optional<FsFaultProfile> FsFaultProfile::parse(std::string_view spec) {
  FsFaultProfile profile;
  for (std::string_view token : support::split(spec, ',')) {
    const std::string item(support::trim(token));
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') return std::nullopt;
      profile.seed = parsed;
    } else if (key == "write_fail") {
      if (!parse_rate(value, profile.write_error_rate)) return std::nullopt;
    } else if (key == "torn") {
      if (!parse_rate(value, profile.torn_write_rate)) return std::nullopt;
    } else if (key == "rename_fail") {
      if (!parse_rate(value, profile.rename_error_rate)) return std::nullopt;
    } else if (key == "remove_fail") {
      if (!parse_rate(value, profile.remove_error_rate)) return std::nullopt;
    } else if (key == "sync_fail") {
      if (!parse_rate(value, profile.sync_lie_rate)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return profile;
}

std::optional<FsFaultProfile> FsFaultProfile::from_env() {
  const char* spec = std::getenv("MAK_FAULTFS");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

std::string FsFaultProfile::describe() const {
  std::ostringstream out;
  out << "seed=0x" << std::hex << seed << std::dec;
  const auto rate = [&out](const char* key, double value) {
    if (value > 0.0) out << ',' << key << '=' << value;
  };
  rate("write_fail", write_error_rate);
  rate("torn", torn_write_rate);
  rate("rename_fail", rename_error_rate);
  rate("remove_fail", remove_error_rate);
  rate("sync_fail", sync_lie_rate);
  return out.str();
}

// ----------------------------------------------------------------- FaultFs

FaultFs::FaultFs(Fs& base, FsFaultProfile profile)
    : base_(base), profile_(profile), rng_(profile.seed) {}

namespace {

Counter& injected_faults_counter() {
  static Counter& counter =
      MetricsRegistry::global().counter(metric::kFsInjectedFaults);
  return counter;
}

}  // namespace

bool FaultFs::write_file(const std::string& path, std::string_view contents,
                         bool durable) {
  ++counters_.writes;
  // Fixed draw order (error, torn, sync) keeps the fault sequence a pure
  // function of (seed, call sequence) regardless of which rates are zero.
  const bool inject_error = rng_.chance(profile_.write_error_rate);
  const bool inject_torn = rng_.chance(profile_.torn_write_rate);
  const bool inject_sync_lie =
      durable && rng_.chance(profile_.sync_lie_rate);
  if (inject_error) {
    ++counters_.injected_write_errors;
    injected_faults_counter().add();
    // ENOSPC-style: a prefix may land before the failure is reported.
    const std::size_t prefix = contents.size() / 3;
    base_.write_file(path, contents.substr(0, prefix), false);
    return false;
  }
  if (inject_torn) {
    ++counters_.torn_writes;
    injected_faults_counter().add();
    // The lie: only a prefix is stored, yet the call reports success.
    const std::size_t prefix =
        contents.empty() ? 0 : contents.size() / 2 + 1;
    base_.write_file(path, contents.substr(0, prefix), durable);
    return true;
  }
  if (inject_sync_lie) {
    ++counters_.sync_lies;
    injected_faults_counter().add();
    if (!base_.write_file(path, contents, false)) return false;
    unsynced_.emplace_back(path, contents.size());
    return true;  // fsync "succeeded"; simulate_power_loss tears it later
  }
  return base_.write_file(path, contents, durable);
}

std::optional<std::string> FaultFs::read_file(const std::string& path) {
  return base_.read_file(path);
}

bool FaultFs::rename(const std::string& from, const std::string& to) {
  if (rng_.chance(profile_.rename_error_rate)) {
    ++counters_.injected_rename_errors;
    injected_faults_counter().add();
    return false;
  }
  if (!base_.rename(from, to)) return false;
  for (auto& [path, length] : unsynced_) {
    if (path == from) path = to;
  }
  return true;
}

bool FaultFs::remove(const std::string& path) {
  if (rng_.chance(profile_.remove_error_rate)) {
    ++counters_.injected_remove_errors;
    injected_faults_counter().add();
    return false;
  }
  return base_.remove(path);
}

bool FaultFs::create_directories(const std::string& path) {
  return base_.create_directories(path);
}

std::vector<std::string> FaultFs::list_dir(const std::string& dir) {
  return base_.list_dir(dir);
}

bool FaultFs::exists(const std::string& path) { return base_.exists(path); }

void FaultFs::simulate_power_loss() {
  for (const auto& [path, length] : unsynced_) {
    const auto contents = base_.read_file(path);
    if (!contents.has_value()) continue;
    base_.write_file(path, std::string_view(*contents).substr(0, length / 2),
                     false);
  }
  unsynced_.clear();
}

// ---------------------------------------------------------------- defaults

namespace {

Fs* g_override_fs = nullptr;

Fs& env_default_fs() {
  static RealFs real;
  // MAK_FAULTFS installs a process-lifetime fault layer (the CI chaos job's
  // entry point); parse failures warn once and fall back to the real disk.
  static Fs* chosen = [] {
    if (const auto profile = FsFaultProfile::from_env();
        profile.has_value() && profile->enabled()) {
      static FaultFs faulty(real, *profile);
      MAK_LOG_WARN << "fs: disk-fault injection enabled ("
                   << profile->describe() << ")";
      return static_cast<Fs*>(&faulty);
    }
    if (const char* spec = std::getenv("MAK_FAULTFS");
        spec != nullptr && *spec != '\0' &&
        !FsFaultProfile::parse(spec).has_value()) {
      MAK_LOG_WARN << "fs: ignoring unparsable MAK_FAULTFS: " << spec;
    }
    return static_cast<Fs*>(&real);
  }();
  return *chosen;
}

}  // namespace

Fs& default_fs() {
  return g_override_fs != nullptr ? *g_override_fs : env_default_fs();
}

void set_default_fs(Fs* fs) { g_override_fs = fs; }

// -------------------------------------------------- verified atomic write

bool write_file_atomic_verified(Fs& fs, const std::string& path,
                                std::string_view contents, int attempts) {
  static Counter& writes = MetricsRegistry::global().counter(metric::kFsWrites);
  const std::string tmp = path + ".tmp";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (!fs.write_file(tmp, contents, /*durable=*/true)) continue;
    // Read-back defeats torn writes that reported success.
    const auto stored = fs.read_file(tmp);
    if (!stored.has_value() || *stored != contents) continue;
    if (!fs.rename(tmp, path)) continue;
    writes.add();
    return true;
  }
  fs.remove(tmp);  // best effort
  MAK_LOG_WARN << "fs: atomic write of " << path << " failed after "
               << attempts << " attempts";
  return false;
}

}  // namespace mak::support::fs
