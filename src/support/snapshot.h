// Checkpointable state: the interface and codec helpers behind crash
// recovery (docs/robustness.md).
//
// Every component that owns mutable crawl state — RNG streams, bandit
// weights, the frontier, cookies, sessions, coverage bits — can serialize
// itself to a support::json::Value and restore from one. The contract is
// exact: saving a component and loading the result into a freshly
// constructed instance of the same configuration must reproduce the
// original behaviour bit-for-bit (doubles round-trip through
// json::format_double, 64-bit integers travel as hex strings because JSON
// numbers are doubles).
//
// Malformed or mismatched state always raises SnapshotError — never UB —
// so a corrupted checkpoint degrades into a clean "this file is invalid"
// signal for harness::CheckpointManager to act on.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.h"
#include "support/rng.h"
#include "support/stats.h"

namespace mak::support {

// Raised on any malformed, truncated or incompatible snapshot payload.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A component whose full mutable state can be captured and restored.
class Snapshotable {
 public:
  virtual ~Snapshotable() = default;

  // Stable component identifier, embedded in the state ("id" key).
  virtual std::string_view snapshot_id() const noexcept = 0;
  // Per-component schema version ("v" key). Bump on layout changes.
  virtual int snapshot_version() const noexcept = 0;

  // Serialize all mutable state. The result always carries "id" and "v".
  virtual json::Value save_state() const = 0;
  // Restore from a value produced by save_state() on a component of the
  // same id, version and configuration. Throws SnapshotError otherwise.
  virtual void load_state(const json::Value& state) = 0;
};

namespace snapshot {

// --- typed field access (all throw SnapshotError on mismatch) -----------

const json::Value& require(const json::Value& object, std::string_view key);
double require_number(const json::Value& object, std::string_view key);
bool require_bool(const json::Value& object, std::string_view key);
const std::string& require_string(const json::Value& object,
                                  std::string_view key);
const json::Array& require_array(const json::Value& object,
                                 std::string_view key);

// Non-negative integer that fits a double exactly (< 2^53).
std::uint64_t require_index(const json::Value& object, std::string_view key);
std::int64_t require_int(const json::Value& object, std::string_view key);

// Verify the standard {"id": ..., "v": ...} header written by make_state.
void check_header(const json::Value& state, std::string_view id, int version);
// Fresh object pre-populated with the standard header.
json::Object make_state(std::string_view id, int version);

// --- 64-bit integers (JSON numbers are doubles; use hex strings) --------

std::string u64_to_hex(std::uint64_t value);
std::uint64_t hex_to_u64(std::string_view hex);  // throws SnapshotError
std::uint64_t require_u64_hex(const json::Value& object, std::string_view key);

// --- homogeneous array codecs -------------------------------------------

// Finite doubles; `what` names the field in SnapshotError messages.
json::Value doubles_to_json(const std::vector<double>& values);
std::vector<double> doubles_from_json(const json::Value& array,
                                      std::string_view what);

// Non-negative integers < 2^53.
json::Value indices_to_json(const std::vector<std::size_t>& values);
std::vector<std::size_t> indices_from_json(const json::Value& array,
                                           std::string_view what);

// --- common component codecs --------------------------------------------

// xoshiro256** stream: the 4x u64 words as hex strings.
json::Value rng_to_json(const Rng& rng);
void rng_from_json(Rng& rng, const json::Value& state);

// Welford accumulator (count, mean, m2, min, max, total).
json::Value stats_to_json(const RunningStats& stats);
void stats_from_json(RunningStats& stats, const json::Value& state);

// --- integrity -----------------------------------------------------------

// CRC-32 (IEEE 802.3, reflected) of a byte string. Guards checkpoint
// payloads against bit rot and partial writes.
std::uint32_t crc32(std::string_view data) noexcept;

}  // namespace snapshot

}  // namespace mak::support
