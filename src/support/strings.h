// Small string utilities shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mak::support {

// Split on a single character. Keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

// Split on a character, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view text, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view trim(std::string_view text) noexcept;
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

bool iequals(std::string_view a, std::string_view b) noexcept;
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;
bool contains(std::string_view text, std::string_view needle) noexcept;

// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

// FNV-1a 64-bit hash; stable across platforms (used for state digests).
std::uint64_t fnv1a(std::string_view text) noexcept;

// Streaming FNV-1a: feed `text` into a running hash. Folding substrings in
// sequence yields exactly fnv1a of their concatenation, so hot paths can
// hash composite keys without materializing the joined string.
inline constexpr std::uint64_t kFnv1aSeed = 0xcbf29ce484222325ULL;
std::uint64_t fnv1a_accum(std::uint64_t hash, std::string_view text) noexcept;

// Fast non-cryptographic 64-bit hash: eight bytes per round instead of
// fnv1a's one. For in-memory keying only (e.g. the browser's parse cache,
// which verifies candidates by full comparison) — the value is never
// serialized, so it carries no cross-platform or cross-version stability
// promise. Checkpoint-visible identities must keep fnv1a.
std::uint64_t hash_bytes(std::string_view text) noexcept;

// Format helpers for harness output.
std::string format_thousands(std::int64_t value);  // 50445 -> "50,445"
std::string format_fixed(double value, int decimals);

}  // namespace mak::support
