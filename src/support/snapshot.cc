#include "support/snapshot.h"

#include <cmath>
#include <cstdio>

namespace mak::support::snapshot {

namespace {

[[noreturn]] void bad(std::string_view key, std::string_view what) {
  throw SnapshotError("snapshot: field '" + std::string(key) + "' " +
                      std::string(what));
}

}  // namespace

const json::Value& require(const json::Value& object, std::string_view key) {
  const json::Value* value = object.find(key);
  if (value == nullptr) bad(key, "missing");
  return *value;
}

double require_number(const json::Value& object, std::string_view key) {
  const json::Value& value = require(object, key);
  if (!value.is_number()) bad(key, "is not a number");
  const double number = value.as_number();
  if (!std::isfinite(number)) bad(key, "is not finite");
  return number;
}

bool require_bool(const json::Value& object, std::string_view key) {
  const json::Value& value = require(object, key);
  if (!value.is_bool()) bad(key, "is not a bool");
  return value.as_bool();
}

const std::string& require_string(const json::Value& object,
                                  std::string_view key) {
  const json::Value& value = require(object, key);
  if (!value.is_string()) bad(key, "is not a string");
  return value.as_string();
}

const json::Array& require_array(const json::Value& object,
                                 std::string_view key) {
  const json::Value& value = require(object, key);
  if (!value.is_array()) bad(key, "is not an array");
  return value.as_array();
}

std::uint64_t require_index(const json::Value& object, std::string_view key) {
  const double number = require_number(object, key);
  if (number < 0.0 || number != std::floor(number) || number >= 0x1p53) {
    bad(key, "is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

std::int64_t require_int(const json::Value& object, std::string_view key) {
  const double number = require_number(object, key);
  if (number != std::floor(number) || std::fabs(number) >= 0x1p53) {
    bad(key, "is not an integer");
  }
  return static_cast<std::int64_t>(number);
}

void check_header(const json::Value& state, std::string_view id,
                  int version) {
  if (!state.is_object()) {
    throw SnapshotError("snapshot: state for '" + std::string(id) +
                        "' is not an object");
  }
  const std::string& got_id = require_string(state, "id");
  if (got_id != id) {
    throw SnapshotError("snapshot: component mismatch (expected '" +
                        std::string(id) + "', found '" + got_id + "')");
  }
  const std::int64_t got_version = require_int(state, "v");
  if (got_version != version) {
    throw SnapshotError("snapshot: '" + std::string(id) +
                        "' schema_version mismatch (expected " +
                        std::to_string(version) + ", found " +
                        std::to_string(got_version) + ")");
  }
}

json::Object make_state(std::string_view id, int version) {
  json::Object object;
  object.emplace("id", json::Value(std::string(id)));
  object.emplace("v", json::Value(static_cast<double>(version)));
  return object;
}

std::string u64_to_hex(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t hex_to_u64(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) {
    throw SnapshotError("snapshot: bad u64 hex literal");
  }
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw SnapshotError("snapshot: bad u64 hex literal");
    }
  }
  return value;
}

std::uint64_t require_u64_hex(const json::Value& object,
                              std::string_view key) {
  return hex_to_u64(require_string(object, key));
}

json::Value doubles_to_json(const std::vector<double>& values) {
  json::Array array;
  array.reserve(values.size());
  for (const double v : values) array.emplace_back(v);
  return json::Value(std::move(array));
}

std::vector<double> doubles_from_json(const json::Value& array,
                                      std::string_view what) {
  if (!array.is_array()) bad(what, "is not an array");
  std::vector<double> values;
  values.reserve(array.as_array().size());
  for (const json::Value& item : array.as_array()) {
    if (!item.is_number() || !std::isfinite(item.as_number())) {
      bad(what, "has a non-finite element");
    }
    values.push_back(item.as_number());
  }
  return values;
}

json::Value indices_to_json(const std::vector<std::size_t>& values) {
  json::Array array;
  array.reserve(values.size());
  for (const std::size_t v : values) {
    array.emplace_back(static_cast<double>(v));
  }
  return json::Value(std::move(array));
}

std::vector<std::size_t> indices_from_json(const json::Value& array,
                                           std::string_view what) {
  if (!array.is_array()) bad(what, "is not an array");
  std::vector<std::size_t> values;
  values.reserve(array.as_array().size());
  for (const json::Value& item : array.as_array()) {
    if (!item.is_number()) bad(what, "has a non-integer element");
    const double number = item.as_number();
    if (!(number >= 0.0) || number != std::floor(number) || number >= 0x1p53) {
      bad(what, "has a non-integer element");
    }
    values.push_back(static_cast<std::size_t>(number));
  }
  return values;
}

json::Value rng_to_json(const Rng& rng) {
  json::Array words;
  for (const std::uint64_t word : rng.state()) {
    words.emplace_back(u64_to_hex(word));
  }
  return json::Value(std::move(words));
}

void rng_from_json(Rng& rng, const json::Value& state) {
  if (!state.is_array() || state.as_array().size() != 4) {
    throw SnapshotError("snapshot: rng state must be 4 hex words");
  }
  Rng::State words{};
  for (std::size_t i = 0; i < words.size(); ++i) {
    const json::Value& word = state.as_array()[i];
    if (!word.is_string()) {
      throw SnapshotError("snapshot: rng state must be 4 hex words");
    }
    words[i] = hex_to_u64(word.as_string());
  }
  if (words == Rng::State{}) {
    throw SnapshotError("snapshot: rng state is all-zero");
  }
  rng.restore(words);
}

json::Value stats_to_json(const RunningStats& stats) {
  json::Object object;
  object.emplace("count", static_cast<double>(stats.count()));
  object.emplace("mean", stats.mean());
  object.emplace("m2", stats.m2());
  object.emplace("min", stats.min());
  object.emplace("max", stats.max());
  object.emplace("total", stats.total());
  return json::Value(std::move(object));
}

void stats_from_json(RunningStats& stats, const json::Value& state) {
  stats.restore(static_cast<std::size_t>(require_index(state, "count")),
                require_number(state, "mean"), require_number(state, "m2"),
                require_number(state, "min"), require_number(state, "max"),
                require_number(state, "total"));
}

namespace {

// Reflected CRC-32 table (polynomial 0xEDB88320), built once.
struct Crc32Table {
  std::array<std::uint32_t, 256> entries{};
  Crc32Table() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const Crc32Table table;
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : data) {
    crc = (crc >> 8) ^
          table.entries[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace mak::support::snapshot
