// Deterministic random number generation for the whole project.
//
// Every stochastic decision in the simulator and the crawlers flows through
// support::Rng so that a run is a pure function of its seed. The generator is
// xoshiro256** seeded via splitmix64, which gives high-quality streams from
// arbitrary 64-bit seeds and supports cheap forking of independent
// sub-streams (one per repetition, one per app instance, ...).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mak::support {

// splitmix64 step; used for seeding and for hashing small integers.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// Stateless mixing of a 64-bit value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t value) noexcept;

// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Fork an independent generator; deterministic given this generator's
  // current state. Advances this generator.
  Rng fork() noexcept;

  // Checkpointing: expose and restore the raw 4x u64 xoshiro256** state so
  // a stream can be resumed exactly where a crashed run left it.
  using State = std::array<std::uint64_t, 4>;
  State state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  // Throws std::invalid_argument on the all-zero state (a xoshiro fixed
  // point that would emit zeros forever).
  void restore(const State& state);

  // Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Bernoulli trial with probability p of returning true (p clamped to
  // [0, 1]).
  bool chance(double p) noexcept;

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double gaussian() noexcept;
  double gaussian(double mean, double stddev) noexcept;

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Sample an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  // Pick a uniformly random element of a non-empty container.
  template <typename Container>
  const typename Container::value_type& choice(const Container& items) {
    if (items.empty()) throw std::invalid_argument("Rng::choice: empty");
    return items[next_below(items.size())];
  }

  // In-place Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[next_below(i + 1)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace mak::support
