#include "support/env.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mak::support::env {

namespace {

std::string* failure_sink = nullptr;

[[noreturn]] void fail(const std::string& message) {
  if (failure_sink != nullptr) {
    *failure_sink = message;
    throw std::invalid_argument(message);
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::exit(2);
}

}  // namespace

std::string* set_failure_sink(std::string* sink) noexcept {
  std::string* previous = failure_sink;
  failure_sink = sink;
  return previous;
}

long long require_int(const char* name, long long fallback, long long min,
                      long long max) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  const std::string range = "[" + std::to_string(min) + ", " +
                            std::to_string(max) + "]";
  if (end == value || *end != '\0') {
    fail(std::string(name) + "=" + value +
         ": not an integer; expected a value in " + range);
  }
  if (parsed < min || parsed > max) {
    fail(std::string(name) + "=" + value + ": out of range; expected " +
         range);
  }
  return parsed;
}

std::size_t require_count(const char* name, std::size_t fallback,
                          std::size_t max) {
  return static_cast<std::size_t>(
      require_int(name, static_cast<long long>(fallback), 1,
                  static_cast<long long>(max)));
}

}  // namespace mak::support::env
