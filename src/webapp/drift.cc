#include "webapp/drift.h"

#include <cstdlib>

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::webapp {

namespace {

// Distinct salts per mechanism: the same (seed, epoch, module) must answer
// independently for deploys, flips and churn.
constexpr std::uint64_t kRngSalt = 0xd81f7a9eULL;
constexpr std::uint64_t kDeploySalt = 0xd81f7001ULL;
constexpr std::uint64_t kFlipSalt = 0xd81f7002ULL;
constexpr std::uint64_t kChurnSalt = 0xd81f7003ULL;

// Uniform [0, 1) from a mixed hash — same construction as Rng::uniform().
double hash_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t chain(std::uint64_t a, std::uint64_t b) noexcept {
  return support::mix64(a ^ support::mix64(b));
}

// First path segment ("/admin/users" -> "admin"); empty for the root.
std::string_view module_of(std::string_view path) noexcept {
  if (path.empty() || path[0] != '/') return {};
  path.remove_prefix(1);
  const auto slash = path.find('/');
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

bool parse_rate(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  out = value;
  return true;
}

bool parse_millis(const std::string& text, support::VirtualMillis& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) return false;
  out = static_cast<support::VirtualMillis>(value);
  return true;
}

struct DriftMetrics {
  support::Counter& requests;
  support::Counter& gone_requests;
  support::Counter& rewritten_links;
  support::Counter& churned_links;
  support::Counter& expired_sessions;
  support::Counter& storm_requests;
  support::Gauge& deploy_generation;

  static DriftMetrics& instance() {
    namespace metric = support::metric;
    auto& registry = support::MetricsRegistry::global();
    static DriftMetrics metrics{
        registry.counter(metric::kDriftRequests),
        registry.counter(metric::kDriftGoneRequests),
        registry.counter(metric::kDriftRewrittenLinks),
        registry.counter(metric::kDriftChurnedLinks),
        registry.counter(metric::kDriftExpiredSessions),
        registry.counter(metric::kDriftStormRequests),
        registry.gauge(metric::kDriftDeployGeneration),
    };
    return metrics;
  }
};

}  // namespace

// ----------------------------------------------------------- DriftProfile

bool DriftProfile::enabled() const noexcept {
  return has_deploys() || has_flips() || has_churn() || has_storms();
}

DriftProfile drift_profile_light() {
  DriftProfile p;
  p.churn_period_ms = 5 * support::kMillisPerMinute;
  p.churn_fraction = 0.15;
  return p;
}

DriftProfile drift_profile_moderate() {
  DriftProfile p;
  p.deploy_period_ms = 10 * support::kMillisPerMinute;
  p.deploy_offset_ms = 4 * support::kMillisPerMinute;
  p.reroute_fraction = 0.25;
  p.flip_period_ms = 5 * support::kMillisPerMinute;
  p.flip_fraction = 0.2;
  p.churn_period_ms = 4 * support::kMillisPerMinute;
  p.churn_fraction = 0.25;
  p.storm_period_ms = 8 * support::kMillisPerMinute;
  p.storm_duration_ms = 30 * support::kMillisPerSecond;
  p.storm_offset_ms = 3 * support::kMillisPerMinute;
  p.storm_expire_rate = 0.5;
  return p;
}

DriftProfile drift_profile_heavy() {
  DriftProfile p;
  p.deploy_period_ms = 5 * support::kMillisPerMinute;
  p.deploy_offset_ms = 2 * support::kMillisPerMinute;
  p.reroute_fraction = 0.4;
  p.flip_period_ms = 3 * support::kMillisPerMinute;
  p.flip_fraction = 0.5;
  p.churn_period_ms = 2 * support::kMillisPerMinute;
  p.churn_fraction = 0.5;
  p.storm_period_ms = 4 * support::kMillisPerMinute;
  p.storm_duration_ms = 60 * support::kMillisPerSecond;
  p.storm_offset_ms = 1 * support::kMillisPerMinute;
  p.storm_expire_rate = 0.9;
  return p;
}

std::optional<DriftProfile> DriftProfile::parse(std::string_view spec) {
  DriftProfile profile;
  bool first = true;
  for (std::string_view token : support::split(spec, ',')) {
    const std::string item(support::trim(token));
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      // Bare token: a preset name, only meaningful as the first token so
      // overrides always win.
      if (!first) return std::nullopt;
      if (item == "off" || item == "none") {
        profile = DriftProfile{};
      } else if (item == "light") {
        profile = drift_profile_light();
      } else if (item == "moderate") {
        profile = drift_profile_moderate();
      } else if (item == "heavy") {
        profile = drift_profile_heavy();
      } else {
        return std::nullopt;
      }
      first = false;
      continue;
    }
    first = false;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    bool ok = true;
    if (key == "deploy_period_ms") {
      ok = parse_millis(value, profile.deploy_period_ms);
    } else if (key == "deploy_offset_ms") {
      ok = parse_millis(value, profile.deploy_offset_ms);
    } else if (key == "reroute") {
      ok = parse_rate(value, profile.reroute_fraction);
    } else if (key == "flip_period_ms") {
      ok = parse_millis(value, profile.flip_period_ms);
    } else if (key == "flip") {
      ok = parse_rate(value, profile.flip_fraction);
    } else if (key == "churn_period_ms") {
      ok = parse_millis(value, profile.churn_period_ms);
    } else if (key == "churn") {
      ok = parse_rate(value, profile.churn_fraction);
    } else if (key == "storm_period_ms") {
      ok = parse_millis(value, profile.storm_period_ms);
    } else if (key == "storm_duration_ms") {
      ok = parse_millis(value, profile.storm_duration_ms);
    } else if (key == "storm_offset_ms") {
      ok = parse_millis(value, profile.storm_offset_ms);
    } else if (key == "storm_expire") {
      ok = parse_rate(value, profile.storm_expire_rate);
    } else {
      ok = false;
    }
    if (!ok) return std::nullopt;
  }
  return profile;
}

std::optional<DriftProfile> DriftProfile::from_env() {
  const char* spec = std::getenv("MAK_DRIFT");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

std::string DriftProfile::describe() const {
  std::string out;
  const auto add = [&out](const std::string& item) {
    if (!out.empty()) out += ',';
    out += item;
  };
  const auto rate = [](double r) { return support::format_fixed(r, 3); };
  if (has_deploys()) {
    add("deploy_period_ms=" + std::to_string(deploy_period_ms));
    if (deploy_offset_ms > 0) {
      add("deploy_offset_ms=" + std::to_string(deploy_offset_ms));
    }
    add("reroute=" + rate(reroute_fraction));
  }
  if (has_flips()) {
    add("flip_period_ms=" + std::to_string(flip_period_ms));
    add("flip=" + rate(flip_fraction));
  }
  if (has_churn()) {
    add("churn_period_ms=" + std::to_string(churn_period_ms));
    add("churn=" + rate(churn_fraction));
  }
  if (has_storms()) {
    add("storm_period_ms=" + std::to_string(storm_period_ms));
    add("storm_duration_ms=" + std::to_string(storm_duration_ms));
    if (storm_offset_ms > 0) {
      add("storm_offset_ms=" + std::to_string(storm_offset_ms));
    }
    add("storm_expire=" + rate(storm_expire_rate));
  }
  return out.empty() ? "off" : out;
}

// ------------------------------------------------------------ DriftEngine

DriftEngine::DriftEngine(DriftProfile profile, std::uint64_t seed,
                         const support::SimClock& clock)
    : profile_(profile),
      seed_(support::mix64(seed ^ kRngSalt)),
      rng_(seed_),
      clock_(&clock) {}

std::uint64_t DriftEngine::deploy_generation() const noexcept {
  if (!profile_.has_deploys()) return 0;
  const support::VirtualMillis now = clock_->now();
  if (now < profile_.deploy_offset_ms) return 0;
  return static_cast<std::uint64_t>(
             (now - profile_.deploy_offset_ms) / profile_.deploy_period_ms) +
         1;
}

std::uint64_t DriftEngine::flip_epoch() const noexcept {
  if (!profile_.has_flips()) return 0;
  return static_cast<std::uint64_t>(clock_->now() / profile_.flip_period_ms);
}

std::uint64_t DriftEngine::churn_epoch() const noexcept {
  if (!profile_.has_churn()) return 0;
  return static_cast<std::uint64_t>(clock_->now() / profile_.churn_period_ms);
}

bool DriftEngine::in_storm() const noexcept {
  if (!profile_.has_storms()) return false;
  const support::VirtualMillis now = clock_->now();
  if (now < profile_.storm_offset_ms) return false;
  const support::VirtualMillis phase =
      (now - profile_.storm_offset_ms) % profile_.storm_period_ms;
  return phase < profile_.storm_duration_ms;
}

bool DriftEngine::module_moved(std::string_view module,
                               std::uint64_t generation) const noexcept {
  if (!profile_.has_deploys() || generation == 0 || module.empty()) {
    return false;
  }
  const std::uint64_t h =
      chain(chain(seed_ ^ kDeploySalt, generation), support::hash_bytes(module));
  return hash_unit(h) < profile_.reroute_fraction;
}

bool DriftEngine::module_flagged(std::string_view module,
                                 std::uint64_t epoch) const noexcept {
  if (!profile_.has_flips() || module.empty()) return false;
  const std::uint64_t h =
      chain(chain(seed_ ^ kFlipSalt, epoch), support::hash_bytes(module));
  return hash_unit(h) < profile_.flip_fraction;
}

bool DriftEngine::link_churned(std::string_view href,
                               std::uint64_t epoch) const noexcept {
  if (!profile_.has_churn()) return false;
  const std::uint64_t h =
      chain(chain(seed_ ^ kChurnSalt, epoch), support::hash_bytes(href));
  return hash_unit(h) < profile_.churn_fraction;
}

DriftDecision DriftEngine::route(const std::string& path) {
  DriftMetrics& metrics = DriftMetrics::instance();
  ++counters_.requests_seen;
  metrics.requests.add();
  if (in_storm()) {
    ++counters_.storm_requests;
    metrics.storm_requests.add();
  }
  const std::uint64_t generation = deploy_generation();
  metrics.deploy_generation.set(static_cast<double>(generation));

  DriftDecision decision;
  const auto gone = [&]() {
    decision.kind = DriftDecision::Kind::kGone;
    ++counters_.gone_requests;
    metrics.gone_requests.add();
    return decision;
  };

  if (support::starts_with(path, "/_r")) {
    // Generation-stamped deploy prefix: /_r<g>/module/... — valid only
    // while <g> is the current generation; every deploy invalidates the
    // previous generation's URLs wholesale.
    std::size_t digits = 3;
    std::uint64_t stamped = 0;
    while (digits < path.size() && path[digits] >= '0' && path[digits] <= '9') {
      stamped = stamped * 10 + static_cast<std::uint64_t>(path[digits] - '0');
      ++digits;
    }
    if (digits == 3 || digits >= path.size() || path[digits] != '/') {
      return decision;  // not a link we minted; let the router 404 it
    }
    if (stamped == 0 || stamped != generation) return gone();
    decision.kind = DriftDecision::Kind::kRewrite;
    decision.path = path.substr(digits);
    return decision;
  }
  if (support::starts_with(path, "/_b/")) {
    // A/B experiment prefix: alive only while the module is in the current
    // cohort; a flag flip kills the URL (and mints others elsewhere).
    const std::string stripped = path.substr(3);
    if (module_flagged(module_of(stripped), flip_epoch())) {
      decision.kind = DriftDecision::Kind::kRewrite;
      decision.path = stripped;
      return decision;
    }
    return gone();
  }
  // Bare URL of a module that has moved: the deploy left a 404 behind.
  if (module_moved(module_of(path), generation)) return gone();
  return decision;
}

bool DriftEngine::expire_session() {
  if (!profile_.has_storms()) return false;
  if (!in_storm()) return false;
  if (!rng_.chance(profile_.storm_expire_rate)) return false;
  ++counters_.expired_sessions;
  DriftMetrics::instance().expired_sessions.add();
  return true;
}

std::optional<std::string> DriftEngine::rewrite_link(std::string_view href) {
  // Split off query/fragment; prefixes apply to the path, churn to the
  // whole link.
  const std::size_t cut = href.find_first_of("?#");
  std::string path(cut == std::string_view::npos ? href : href.substr(0, cut));
  std::string rest(cut == std::string_view::npos ? std::string_view{}
                                                 : href.substr(cut));
  bool changed = false;
  DriftMetrics& metrics = DriftMetrics::instance();
  const std::string_view module = module_of(path);
  const bool prefixed = support::starts_with(path, "/_r") ||
                        support::starts_with(path, "/_b/");
  if (!module.empty() && !prefixed) {
    const std::uint64_t generation = deploy_generation();
    if (module_moved(module, generation)) {
      path = "/_r" + std::to_string(generation) + path;
      changed = true;
      ++counters_.rewritten_links;
      metrics.rewritten_links.add();
    } else if (module_flagged(module, flip_epoch())) {
      path = "/_b" + path;
      changed = true;
      ++counters_.rewritten_links;
      metrics.rewritten_links.add();
    }
  }
  if (link_churned(href, churn_epoch())) {
    const std::string stamp = std::to_string(churn_epoch());
    if (rest.empty()) {
      rest = "?cb=" + stamp;
    } else if (rest[0] == '?') {
      // Queries are HTML-escaped in rendered bodies, so extend with &amp;.
      rest += "&amp;cb=" + stamp;
    } else {
      rest.insert(0, "?cb=" + stamp);
    }
    changed = true;
    ++counters_.churned_links;
    metrics.churned_links.add();
  }
  if (!changed) return std::nullopt;
  return path + rest;
}

void DriftEngine::transform_body(std::string& body) {
  if (!profile_.has_deploys() && !profile_.has_flips() &&
      !profile_.has_churn()) {
    return;
  }
  static constexpr std::string_view kHref = "href=\"";
  static constexpr std::string_view kAction = "action=\"";
  std::string out;
  out.reserve(body.size() + 64);
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t h = body.find(kHref, pos);
    const std::size_t a = body.find(kAction, pos);
    std::size_t at = std::string::npos;
    std::size_t attr_len = 0;
    if (h != std::string::npos && (a == std::string::npos || h < a)) {
      at = h;
      attr_len = kHref.size();
    } else if (a != std::string::npos) {
      at = a;
      attr_len = kAction.size();
    }
    if (at == std::string::npos) break;
    const std::size_t start = at + attr_len;
    const std::size_t end = body.find('"', start);
    if (end == std::string::npos) break;
    out.append(body, pos, start - pos);
    const std::string_view link(body.data() + start, end - start);
    if (!link.empty() && link[0] == '/') {
      if (auto rewritten = rewrite_link(link)) {
        out += *rewritten;
      } else {
        out.append(link);
      }
    } else {
      out.append(link);
    }
    pos = end;  // the closing quote is copied by the next append
  }
  out.append(body, pos, body.size() - pos);
  body = std::move(out);
}

support::json::Value DriftEngine::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("webapp.drift", 1);
  state.emplace("profile", profile_.describe());
  state.emplace("rng", snapshot::rng_to_json(rng_));
  support::json::Object counters;
  counters.emplace("requests_seen",
                   static_cast<double>(counters_.requests_seen));
  counters.emplace("gone_requests",
                   static_cast<double>(counters_.gone_requests));
  counters.emplace("rewritten_links",
                   static_cast<double>(counters_.rewritten_links));
  counters.emplace("churned_links",
                   static_cast<double>(counters_.churned_links));
  counters.emplace("expired_sessions",
                   static_cast<double>(counters_.expired_sessions));
  counters.emplace("storm_requests",
                   static_cast<double>(counters_.storm_requests));
  state.emplace("counters", support::json::Value(std::move(counters)));
  return support::json::Value(std::move(state));
}

void DriftEngine::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "webapp.drift", 1);
  if (snapshot::require_string(state, "profile") != profile_.describe()) {
    throw support::SnapshotError(
        "DriftEngine: drift profile mismatch with checkpoint");
  }
  const auto& counters = snapshot::require(state, "counters");
  Counters restored;
  restored.requests_seen = static_cast<std::size_t>(
      snapshot::require_index(counters, "requests_seen"));
  restored.gone_requests = static_cast<std::size_t>(
      snapshot::require_index(counters, "gone_requests"));
  restored.rewritten_links = static_cast<std::size_t>(
      snapshot::require_index(counters, "rewritten_links"));
  restored.churned_links = static_cast<std::size_t>(
      snapshot::require_index(counters, "churned_links"));
  restored.expired_sessions = static_cast<std::size_t>(
      snapshot::require_index(counters, "expired_sessions"));
  restored.storm_requests = static_cast<std::size_t>(
      snapshot::require_index(counters, "storm_requests"));
  snapshot::rng_from_json(rng_, snapshot::require(state, "rng"));
  counters_ = restored;
}

}  // namespace mak::webapp
