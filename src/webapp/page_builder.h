// Fluent HTML page assembly for the synthetic applications.
//
// Produces genuine HTML that the crawler-side parser consumes; everything
// user-visible is entity-escaped.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mak::webapp {

// A form under construction; finished by PageBuilder::form().
struct FormSpec {
  std::string action;
  std::string method = "get";          // "get" or "post"
  std::string id;
  std::string submit_label = "Submit";
  // name, type, default value
  struct Field {
    std::string name;
    std::string type = "text";
    std::string value;
    std::vector<std::string> options;  // for type == "select"
  };
  std::vector<Field> fields;

  FormSpec& text_field(std::string name, std::string value = "");
  FormSpec& password_field(std::string name, std::string value = "");
  FormSpec& hidden_field(std::string name, std::string value);
  FormSpec& select_field(std::string name, std::vector<std::string> options);
  FormSpec& textarea(std::string name, std::string value = "");
};

class PageBuilder {
 public:
  explicit PageBuilder(std::string title);

  PageBuilder& heading(std::string_view text, int level = 1);
  PageBuilder& paragraph(std::string_view text);
  PageBuilder& link(std::string_view href, std::string_view text);
  // Link wrapped in a list item inside the current nav list.
  PageBuilder& nav_link(std::string_view href, std::string_view text);
  PageBuilder& button(std::string_view target, std::string_view label,
                      std::string_view method = "post");
  PageBuilder& form(const FormSpec& spec);
  PageBuilder& list_begin();
  PageBuilder& list_item(std::string_view text);
  PageBuilder& list_end();
  PageBuilder& table_row(const std::vector<std::string>& cells,
                         bool header = false);
  PageBuilder& table_begin();
  PageBuilder& table_end();
  PageBuilder& raw(std::string_view html);
  PageBuilder& hidden_block(std::string_view html);  // display:none wrapper

  std::string build() const;

 private:
  std::string title_;
  std::string body_;
};

}  // namespace mak::webapp
