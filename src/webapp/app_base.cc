#include "webapp/app_base.h"

#include <stdexcept>

#include "html/entities.h"
#include "support/snapshot.h"
#include "webapp/drift.h"
#include "webapp/page_builder.h"

namespace mak::webapp {

WebApp::WebApp(std::string name, std::string host)
    : name_(std::move(name)), host_(std::move(host)) {
  // Framework skeleton: a front controller file whose regions execute on
  // every request, mirroring the fixed cost of a PHP app's bootstrap.
  arena_.file("framework/bootstrap.php");
  boot_region_ = arena_.region(60);
  session_region_ = arena_.region(35);
  notfound_region_ = arena_.region(18);
  home_region_ = arena_.region(25);
}

url::Url WebApp::seed_url() const {
  url::Url u;
  u.scheme = "http";
  u.host = host_;
  u.path = "/";
  return u;
}

void WebApp::add_home_link(std::string href, std::string label) {
  home_links_.emplace_back(std::move(href), std::move(label));
}

void WebApp::set_framework_overhead(std::size_t lines) {
  if (tracker_ != nullptr) {
    throw std::logic_error("WebApp::set_framework_overhead after finalize()");
  }
  if (overhead_region_.valid()) {
    throw std::logic_error("WebApp::set_framework_overhead called twice");
  }
  const coverage::FileId vendor = arena_.file("framework/vendor.php");
  overhead_region_ = arena_.region(vendor, lines);
}

void WebApp::cover(const CodeRegion& region) {
  if (tracker_ == nullptr) {
    throw std::logic_error("WebApp::cover before finalize()");
  }
  if (region.valid()) {
    tracker_->hit(region.file, region.first_line, region.last_line);
  }
}

void WebApp::cover_prefix(const CodeRegion& region, std::size_t lines) {
  if (!region.valid() || lines == 0) return;
  CodeRegion prefix = region;
  prefix.last_line =
      std::min(region.last_line, region.first_line + lines - 1);
  cover(prefix);
}

void WebApp::finalize() {
  if (tracker_ != nullptr) {
    throw std::logic_error("WebApp::finalize called twice");
  }
  model_ = arena_.build();
  tracker_ = std::make_unique<coverage::CoverageTracker>(*model_);

  // Site-wide navigation chrome, injected into every HTML response: real
  // applications render the same header/menu on every page (including error
  // pages), which is what lets page-local crawlers move around the site.
  nav_html_ = "<div id=\"navbar\"><a href=\"/\">Home</a>";
  std::size_t shown = 0;
  for (const auto& [href, label] : home_links_) {
    if (++shown > 6) break;
    nav_html_ += " <a href=\"" + mak::html::escape(href) + "\">" +
                 mak::html::escape(label) + "</a>";
  }
  nav_html_ += "</div>";
}

const coverage::CodeModel& WebApp::code_model() const {
  if (!model_.has_value()) {
    throw std::logic_error("WebApp::code_model before finalize()");
  }
  return *model_;
}

coverage::CoverageTracker& WebApp::tracker() {
  if (tracker_ == nullptr) {
    throw std::logic_error("WebApp::tracker before finalize()");
  }
  return *tracker_;
}

const coverage::CoverageTracker& WebApp::tracker() const {
  if (tracker_ == nullptr) {
    throw std::logic_error("WebApp::tracker before finalize()");
  }
  return *tracker_;
}

httpsim::Response WebApp::handle(const httpsim::Request& request) {
  if (tracker_ == nullptr) {
    throw std::logic_error("WebApp::handle before finalize()");
  }
  cover(boot_region_);
  cover(overhead_region_);

  // Drifted routing (webapp/drift.h): deploys and flag flips can kill a URL
  // outright or redirect a prefixed URL back to its canonical handler.
  std::string path = request.decoded_path();
  bool drift_gone = false;
  if (drift_ != nullptr) {
    DriftDecision decision = drift_->route(path);
    if (decision.kind == DriftDecision::Kind::kGone) {
      drift_gone = true;
    } else if (decision.kind == DriftDecision::Kind::kRewrite) {
      path = std::move(decision.path);
    }
  }

  // Session resolution (every request runs the session middleware). During
  // a drift storm the carried session can expire server-side: the cookie is
  // ignored and a fresh (empty) session is minted below.
  cover(session_region_);
  httpsim::Session* session = nullptr;
  bool fresh_session = false;
  const auto cookie = request.cookies.find(sessions_.cookie_name());
  if (cookie != request.cookies.end() &&
      (drift_ == nullptr || !drift_->expire_session())) {
    session = sessions_.find(cookie->second);
  }
  if (session == nullptr) {
    session = &sessions_.create();
    fresh_session = true;
  }

  RequestContext ctx;
  ctx.request = &request;
  ctx.session = session;

  httpsim::Response response;
  if (drift_gone) {
    cover(notfound_region_);
    response = httpsim::Response::not_found(path);
  } else if (path.empty() || path == "/") {
    cover(home_region_);
    response = home_page(ctx);
  } else if (const Handler* handler =
                 router_.match(request.method, path, ctx)) {
    response = (*handler)(ctx);
  } else {
    cover(notfound_region_);
    response = httpsim::Response::not_found(path);
  }

  if (fresh_session) {
    response.set_cookies.push_back(
        httpsim::SetCookie{sessions_.cookie_name(), session->id(), "/"});
  }
  // Inject the navigation chrome into every HTML page.
  if (!response.body.empty()) {
    const std::size_t body_tag = response.body.find("<body>");
    if (body_tag != std::string::npos) {
      response.body.insert(body_tag + 6, nav_html_);
    }
  }
  // Rewrite rendered links to the drifted world (after nav injection, so
  // even 404 pages carry links into the current generation).
  if (drift_ != nullptr && !response.body.empty()) {
    drift_->transform_body(response.body);
  }
  if (response.cost_ms == 0) {
    response.cost_ms = latency_.cost(response.body.size());
  }
  return response;
}

httpsim::Response WebApp::home_page(RequestContext&) {
  PageBuilder page(name_ + " — Home");
  page.heading(name_);
  page.paragraph("Welcome to " + name_ + ".");
  page.list_begin();
  for (const auto& [href, label] : home_links_) {
    page.nav_link(href, label);
  }
  page.list_end();
  return httpsim::Response::html(page.build());
}

support::json::Value WebApp::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("webapp.app", 1);
  state.emplace("app", name_);
  state.emplace("tracker", tracker().save_state());
  state.emplace("sessions", sessions_.save_state());
  return support::json::Value(std::move(state));
}

void WebApp::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "webapp.app", 1);
  if (snapshot::require_string(state, "app") != name_) {
    throw support::SnapshotError("WebApp: app name mismatch with checkpoint");
  }
  tracker().load_state(snapshot::require(state, "tracker"));
  sessions_.load_state(snapshot::require(state, "sessions"));
}

}  // namespace mak::webapp
