// Line accounting for synthetic server-side code.
//
// A synthetic application describes its "server-side code base" by carving
// line regions out of named files. Handlers then mark regions executed on a
// CoverageTracker, exactly like an instrumented PHP file reports the line
// ranges it ran. CodeArena is the builder; it hands out CodeRegions during
// app construction and produces the immutable CodeModel at the end.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coverage/coverage.h"

namespace mak::webapp {

// A contiguous, 1-based inclusive span of lines in one file.
struct CodeRegion {
  coverage::FileId file = 0;
  std::size_t first_line = 0;
  std::size_t last_line = 0;

  std::size_t lines() const noexcept {
    return first_line == 0 ? 0 : last_line - first_line + 1;
  }
  bool valid() const noexcept { return first_line != 0; }

  bool operator==(const CodeRegion&) const = default;
};

class CodeArena {
 public:
  // Start a new file; subsequent regions are carved from it sequentially.
  coverage::FileId file(std::string name);

  // Allocate `lines` lines (> 0) in file `id`.
  CodeRegion region(coverage::FileId id, std::size_t lines);

  // Allocate in the most recently created file.
  CodeRegion region(std::size_t lines);

  // Allocate lines that no handler will ever execute (dead code: admin
  // scripts, cron jobs, vendored code paths the app never links to).
  void dead_code(coverage::FileId id, std::size_t lines);
  void dead_code(std::size_t lines);

  std::size_t file_count() const noexcept { return files_.size(); }
  std::size_t total_lines() const noexcept;
  // Lines allocated through dead_code(); total_lines() includes them.
  std::size_t dead_lines() const noexcept { return dead_lines_; }

  // Finalize: produces the CodeModel with exactly the allocated line counts.
  // The arena must not be used afterwards.
  coverage::CodeModel build() const;

 private:
  struct PendingFile {
    std::string name;
    std::size_t lines = 0;
  };
  coverage::FileId require_current_file() const;

  std::vector<PendingFile> files_;
  std::size_t dead_lines_ = 0;
};

}  // namespace mak::webapp
