#include "webapp/page_builder.h"

#include "html/entities.h"

namespace mak::webapp {

using html::escape;

FormSpec& FormSpec::text_field(std::string name, std::string value) {
  fields.push_back(Field{std::move(name), "text", std::move(value), {}});
  return *this;
}

FormSpec& FormSpec::password_field(std::string name, std::string value) {
  fields.push_back(Field{std::move(name), "password", std::move(value), {}});
  return *this;
}

FormSpec& FormSpec::hidden_field(std::string name, std::string value) {
  fields.push_back(Field{std::move(name), "hidden", std::move(value), {}});
  return *this;
}

FormSpec& FormSpec::select_field(std::string name,
                                 std::vector<std::string> options) {
  fields.push_back(Field{std::move(name), "select", "", std::move(options)});
  return *this;
}

FormSpec& FormSpec::textarea(std::string name, std::string value) {
  fields.push_back(Field{std::move(name), "textarea", std::move(value), {}});
  return *this;
}

PageBuilder::PageBuilder(std::string title) : title_(std::move(title)) {}

PageBuilder& PageBuilder::heading(std::string_view text, int level) {
  if (level < 1) level = 1;
  if (level > 6) level = 6;
  const std::string tag = "h" + std::to_string(level);
  body_ += "<" + tag + ">" + escape(text) + "</" + tag + ">\n";
  return *this;
}

PageBuilder& PageBuilder::paragraph(std::string_view text) {
  body_ += "<p>" + escape(text) + "</p>\n";
  return *this;
}

PageBuilder& PageBuilder::link(std::string_view href, std::string_view text) {
  body_ += "<a href=\"" + escape(href) + "\">" + escape(text) + "</a>\n";
  return *this;
}

PageBuilder& PageBuilder::nav_link(std::string_view href,
                                   std::string_view text) {
  body_ += "<li><a href=\"" + escape(href) + "\">" + escape(text) +
           "</a></li>\n";
  return *this;
}

PageBuilder& PageBuilder::button(std::string_view target,
                                 std::string_view label,
                                 std::string_view method) {
  body_ += "<button formaction=\"" + escape(target) + "\" formmethod=\"" +
           escape(method) + "\">" + escape(label) + "</button>\n";
  return *this;
}

PageBuilder& PageBuilder::form(const FormSpec& spec) {
  body_ += "<form action=\"" + escape(spec.action) + "\" method=\"" +
           escape(spec.method) + "\"";
  if (!spec.id.empty()) body_ += " id=\"" + escape(spec.id) + "\"";
  body_ += ">\n";
  for (const auto& field : spec.fields) {
    if (field.type == "select") {
      body_ += "  <select name=\"" + escape(field.name) + "\">\n";
      for (const auto& option : field.options) {
        body_ += "    <option value=\"" + escape(option) + "\">" +
                 escape(option) + "</option>\n";
      }
      body_ += "  </select>\n";
    } else if (field.type == "textarea") {
      body_ += "  <textarea name=\"" + escape(field.name) + "\">" +
               escape(field.value) + "</textarea>\n";
    } else {
      body_ += "  <input type=\"" + escape(field.type) + "\" name=\"" +
               escape(field.name) + "\" value=\"" + escape(field.value) +
               "\">\n";
    }
  }
  body_ += "  <input type=\"submit\" value=\"" + escape(spec.submit_label) +
           "\">\n</form>\n";
  return *this;
}

PageBuilder& PageBuilder::list_begin() {
  body_ += "<ul>\n";
  return *this;
}

PageBuilder& PageBuilder::list_item(std::string_view text) {
  body_ += "<li>" + escape(text) + "</li>\n";
  return *this;
}

PageBuilder& PageBuilder::list_end() {
  body_ += "</ul>\n";
  return *this;
}

PageBuilder& PageBuilder::table_begin() {
  body_ += "<table>\n";
  return *this;
}

PageBuilder& PageBuilder::table_row(const std::vector<std::string>& cells,
                                    bool header) {
  const char* cell_tag = header ? "th" : "td";
  body_ += "<tr>";
  for (const auto& cell : cells) {
    body_ += "<";
    body_ += cell_tag;
    body_ += ">";
    body_ += escape(cell);
    body_ += "</";
    body_ += cell_tag;
    body_ += ">";
  }
  body_ += "</tr>\n";
  return *this;
}

PageBuilder& PageBuilder::table_end() {
  body_ += "</table>\n";
  return *this;
}

PageBuilder& PageBuilder::raw(std::string_view html) {
  body_ += html;
  body_ += '\n';
  return *this;
}

PageBuilder& PageBuilder::hidden_block(std::string_view html) {
  body_ += "<div style=\"display:none\">";
  body_ += html;
  body_ += "</div>\n";
  return *this;
}

std::string PageBuilder::build() const {
  std::string out;
  out.reserve(body_.size() + 256);
  out += "<!DOCTYPE html>\n<html>\n<head><title>";
  out += escape(title_);
  out += "</title></head>\n<body>\n";
  out += body_;
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace mak::webapp
