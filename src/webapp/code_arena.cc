#include "webapp/code_arena.h"

#include <stdexcept>

namespace mak::webapp {

coverage::FileId CodeArena::file(std::string name) {
  files_.push_back(PendingFile{std::move(name), 0});
  return static_cast<coverage::FileId>(files_.size() - 1);
}

CodeRegion CodeArena::region(coverage::FileId id, std::size_t lines) {
  if (id >= files_.size()) {
    throw std::out_of_range("CodeArena::region: bad file id");
  }
  if (lines == 0) {
    throw std::invalid_argument("CodeArena::region: zero lines");
  }
  PendingFile& f = files_[id];
  CodeRegion r;
  r.file = id;
  r.first_line = f.lines + 1;
  r.last_line = f.lines + lines;
  f.lines += lines;
  return r;
}

CodeRegion CodeArena::region(std::size_t lines) {
  return region(require_current_file(), lines);
}

void CodeArena::dead_code(coverage::FileId id, std::size_t lines) {
  if (id >= files_.size()) {
    throw std::out_of_range("CodeArena::dead_code: bad file id");
  }
  files_[id].lines += lines;
  dead_lines_ += lines;
}

void CodeArena::dead_code(std::size_t lines) {
  dead_code(require_current_file(), lines);
}

std::size_t CodeArena::total_lines() const noexcept {
  std::size_t total = 0;
  for (const auto& f : files_) total += f.lines;
  return total;
}

coverage::FileId CodeArena::require_current_file() const {
  if (files_.empty()) {
    throw std::logic_error("CodeArena: no file started");
  }
  return static_cast<coverage::FileId>(files_.size() - 1);
}

coverage::CodeModel CodeArena::build() const {
  coverage::CodeModel model;
  for (const auto& f : files_) {
    model.add_file(f.name, f.lines == 0 ? 1 : f.lines);
  }
  return model;
}

}  // namespace mak::webapp
