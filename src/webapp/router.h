// Path routing for synthetic applications.
//
// Patterns are '/'-separated; a segment ":name" captures one path segment,
// and a trailing "*rest" captures the remainder (possibly empty). Routes are
// matched in registration order; method must match too.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "httpsim/message.h"
#include "httpsim/session.h"

namespace mak::webapp {

// Everything a handler needs.
struct RequestContext {
  const httpsim::Request* request = nullptr;
  httpsim::Session* session = nullptr;  // always non-null inside handlers
  std::map<std::string, std::string> params;  // pattern captures

  const httpsim::Request& req() const { return *request; }
  httpsim::Session& sess() const { return *session; }
  std::string param(std::string_view name,
                    std::string_view fallback = "") const {
    const auto it = params.find(std::string(name));
    return it != params.end() ? it->second : std::string(fallback);
  }
};

using Handler = std::function<httpsim::Response(RequestContext&)>;

class Router {
 public:
  void get(std::string pattern, Handler handler) {
    add(httpsim::Method::kGet, std::move(pattern), std::move(handler));
  }
  void post(std::string pattern, Handler handler) {
    add(httpsim::Method::kPost, std::move(pattern), std::move(handler));
  }
  // Register for both methods (PHP-style scripts often accept either).
  void any(std::string pattern, Handler handler);

  void add(httpsim::Method method, std::string pattern, Handler handler);

  // Find the first matching route; fills ctx.params on success.
  const Handler* match(httpsim::Method method, std::string_view decoded_path,
                       RequestContext& ctx) const;

  std::size_t route_count() const noexcept { return routes_.size(); }

  // The registered routes as "METHOD pattern" strings, in registration
  // (i.e. matching-priority) order. Construction-time introspection: two
  // identically built apps produce identical route tables, which the
  // generator's determinism tests rely on.
  std::vector<std::string> route_table() const;

 private:
  struct Route {
    httpsim::Method method;
    std::string pattern;                // as registered (for route_table())
    std::vector<std::string> segments;  // pre-split pattern
    bool trailing_wildcard = false;     // last segment was "*name"
    std::string wildcard_name;
    Handler handler;
  };

  static bool match_route(const Route& route, std::string_view path,
                          std::map<std::string, std::string>& params);

  std::vector<Route> routes_;
};

}  // namespace mak::webapp
