// Nonstationary drift for the simulated web applications.
//
// The paper's argument for an adversarial bandit is that real crawl targets
// change *under* the crawler: deploys move modules, A/B flags flip URLs on
// and off, content churns cache-busting query strings, and session storms
// log everybody out. The DriftEngine layers those behaviours over any
// webapp::WebApp the same way httpsim::FaultInjector layers network faults
// over the virtual network: seeded, deterministic, driven by the virtual
// clock, and snapshot-able so checkpoint/resume replays the exact same
// world.
//
// Mechanics (all scheduled by clock phase, never wall time):
//   * Module reroute deploys — every deploy period a seeded fraction of
//     top-level modules "moves": their links are minted under a
//     generation-stamped prefix (/_r<g>/module/...) and the old bare URLs
//     404. Stale generation links 404 too, so the frontier rots on every
//     deploy.
//   * A/B flag flips — a seeded per-epoch cohort of modules is served
//     under an experiment prefix (/_b/module/...); when the flag flips the
//     prefixed URLs die and a different cohort appears.
//   * Content churn — a seeded fraction of links gains a cache-busting
//     cb=<epoch> query parameter that changes every churn period, aliasing
//     known pages under fresh URLs.
//   * Session-expiry storms — inside storm windows each request carrying a
//     session cookie loses its session with the configured probability.
//
// Epoch membership is decided by hashing (seed, epoch, module), not by
// consuming RNG, so decisions are order-independent; only storm expiry
// draws from the engine's dedicated RNG stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/clock.h"
#include "support/json.h"
#include "support/rng.h"

namespace mak::webapp {

// Declarative description of a drifting world. Fractions are in [0, 1];
// periods are virtual milliseconds (0 disables the mechanism).
struct DriftProfile {
  // Module reroute deploys.
  support::VirtualMillis deploy_period_ms = 0;  // 0 = no deploys
  support::VirtualMillis deploy_offset_ms = 0;  // first deploy lands here
  double reroute_fraction = 0.0;  // fraction of modules moved per deploy

  // A/B flag flips.
  support::VirtualMillis flip_period_ms = 0;  // 0 = no experiments
  double flip_fraction = 0.0;  // fraction of modules in the B cohort

  // Content churn (cache-busting link aliases).
  support::VirtualMillis churn_period_ms = 0;  // 0 = no churn
  double churn_fraction = 0.0;  // fraction of links churned per epoch

  // Session-expiry storms.
  support::VirtualMillis storm_period_ms = 0;  // 0 = no storms
  support::VirtualMillis storm_duration_ms = 0;
  support::VirtualMillis storm_offset_ms = 0;
  double storm_expire_rate = 0.0;  // per-request expiry chance in a storm

  // True if any drift mechanism can ever fire.
  bool enabled() const noexcept;
  bool has_deploys() const noexcept {
    return deploy_period_ms > 0 && reroute_fraction > 0.0;
  }
  bool has_flips() const noexcept {
    return flip_period_ms > 0 && flip_fraction > 0.0;
  }
  bool has_churn() const noexcept {
    return churn_period_ms > 0 && churn_fraction > 0.0;
  }
  bool has_storms() const noexcept {
    return storm_period_ms > 0 && storm_duration_ms > 0 &&
           storm_expire_rate > 0.0;
  }

  // Parse a profile spec: either a preset name ("off", "light", "moderate",
  // "heavy") or/and comma-separated key=value overrides, e.g.
  //   "heavy,storm_expire=0.5"
  //   "deploy_period_ms=300000,reroute=0.4,churn_period_ms=120000,churn=0.5"
  // Returns nullopt on a malformed spec.
  static std::optional<DriftProfile> parse(std::string_view spec);

  // Profile from the MAK_DRIFT environment variable; nullopt when unset,
  // empty, or unparsable.
  static std::optional<DriftProfile> from_env();

  // Canonical spec string (round-trips through parse(); "off" if disabled).
  std::string describe() const;
};

// Preset profiles used by bench/drift_robustness.
DriftProfile drift_profile_light();
DriftProfile drift_profile_moderate();
DriftProfile drift_profile_heavy();

// What the engine decided for one incoming request path.
struct DriftDecision {
  enum class Kind {
    kPass,     // serve the path untouched
    kRewrite,  // serve `path` instead (prefix stripped)
    kGone      // the URL no longer exists: 404
  };
  Kind kind = Kind::kPass;
  std::string path;  // set when kind == kRewrite
};

// Drives drift for one app over one run. Owned by the harness alongside the
// FaultInjector and attached to the WebApp via set_drift_engine().
class DriftEngine {
 public:
  DriftEngine(DriftProfile profile, std::uint64_t seed,
              const support::SimClock& clock);

  // Route an incoming decoded path through the current world state
  // (counts the request; consumes no RNG).
  DriftDecision route(const std::string& path);

  // Whether the session carried by the current request expires (storms
  // only; consumes RNG only inside a storm window).
  bool expire_session();

  // Rewrite root-relative href/action links in a rendered page to the
  // current world: generation prefixes, A/B prefixes, churn parameters.
  void transform_body(std::string& body);

  // Clock-derived world state (0 = before the first boundary / disabled).
  std::uint64_t deploy_generation() const noexcept;
  std::uint64_t flip_epoch() const noexcept;
  std::uint64_t churn_epoch() const noexcept;
  bool in_storm() const noexcept;

  struct Counters {
    std::size_t requests_seen = 0;
    std::size_t gone_requests = 0;
    std::size_t rewritten_links = 0;
    std::size_t churned_links = 0;
    std::size_t expired_sessions = 0;
    std::size_t storm_requests = 0;  // requests routed inside a storm
  };
  const Counters& counters() const noexcept { return counters_; }
  const DriftProfile& profile() const noexcept { return profile_; }

  // Checkpointing: RNG stream and counters, bound to the profile spec so a
  // checkpoint from a different drift world is rejected.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  bool module_moved(std::string_view module,
                    std::uint64_t generation) const noexcept;
  bool module_flagged(std::string_view module,
                      std::uint64_t epoch) const noexcept;
  bool link_churned(std::string_view href,
                    std::uint64_t epoch) const noexcept;
  // Rewritten form of one root-relative link, or nullopt to leave it alone.
  std::optional<std::string> rewrite_link(std::string_view href);

  DriftProfile profile_;
  std::uint64_t seed_;
  support::Rng rng_;  // storm expiry draws only
  const support::SimClock* clock_;
  Counters counters_;
};

}  // namespace mak::webapp
