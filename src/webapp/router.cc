#include "webapp/router.h"

#include "support/strings.h"

namespace mak::webapp {

void Router::any(std::string pattern, Handler handler) {
  add(httpsim::Method::kGet, pattern, handler);
  add(httpsim::Method::kPost, std::move(pattern), std::move(handler));
}

void Router::add(httpsim::Method method, std::string pattern,
                 Handler handler) {
  Route route;
  route.method = method;
  route.handler = std::move(handler);
  route.pattern = pattern;
  auto segments = support::split_nonempty(pattern, '/');
  if (!segments.empty() && segments.back().starts_with('*')) {
    route.trailing_wildcard = true;
    route.wildcard_name = segments.back().substr(1);
    segments.pop_back();
  }
  route.segments = std::move(segments);
  routes_.push_back(std::move(route));
}

bool Router::match_route(const Route& route, std::string_view path,
                         std::map<std::string, std::string>& params) {
  const auto parts = support::split_nonempty(path, '/');
  if (route.trailing_wildcard) {
    if (parts.size() < route.segments.size()) return false;
  } else {
    if (parts.size() != route.segments.size()) return false;
  }
  std::map<std::string, std::string> captured;
  for (std::size_t i = 0; i < route.segments.size(); ++i) {
    const std::string& seg = route.segments[i];
    if (!seg.empty() && seg[0] == ':') {
      captured[seg.substr(1)] = parts[i];
    } else if (seg != parts[i]) {
      return false;
    }
  }
  if (route.trailing_wildcard) {
    std::vector<std::string> rest(parts.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          route.segments.size()),
                                  parts.end());
    captured[route.wildcard_name] = support::join(rest, "/");
  }
  params = std::move(captured);
  return true;
}

std::vector<std::string> Router::route_table() const {
  std::vector<std::string> table;
  table.reserve(routes_.size());
  for (const auto& route : routes_) {
    table.push_back(std::string(httpsim::to_string(route.method)) + " " +
                    route.pattern);
  }
  return table;
}

const Handler* Router::match(httpsim::Method method,
                             std::string_view decoded_path,
                             RequestContext& ctx) const {
  for (const auto& route : routes_) {
    if (route.method != method) continue;
    std::map<std::string, std::string> params;
    if (match_route(route, decoded_path, params)) {
      ctx.params = std::move(params);
      return &route.handler;
    }
  }
  return nullptr;
}

}  // namespace mak::webapp
