// Base class for synthetic web applications.
//
// A WebApp is a VirtualHost with routing, sessions, per-request framework
// code accounting and a latency profile. Concrete applications (src/apps)
// register code regions and routes in their constructors and call
// finalize() once construction is complete.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "coverage/coverage.h"
#include "httpsim/network.h"
#include "httpsim/session.h"
#include "url/url.h"
#include "webapp/code_arena.h"
#include "webapp/router.h"

namespace mak::webapp {

class DriftEngine;

// Per-response latency profile (big apps serve slower pages).
struct LatencyProfile {
  support::VirtualMillis base_ms = 120;
  support::VirtualMillis per_kilobyte_ms = 8;

  support::VirtualMillis cost(std::size_t body_bytes) const noexcept {
    return base_ms + per_kilobyte_ms *
                         static_cast<support::VirtualMillis>(body_bytes / 1024);
  }
};

class WebApp : public httpsim::VirtualHost {
 public:
  // Lines of the framework skeleton every WebApp allocates in its
  // constructor (boot + session + 404 + home regions). Part of the line
  // calibration contract: total lines = kFrameworkBaseLines +
  // framework_overhead_lines() + sum of feature calibrations + dead code.
  static constexpr std::size_t kFrameworkBaseLines = 60 + 35 + 18 + 25;

  WebApp(std::string name, std::string host);
  ~WebApp() override = default;

  const std::string& name() const noexcept { return name_; }
  const std::string& host() const noexcept { return host_; }
  url::Url seed_url() const;

  // --- construction-time API (before finalize) ---
  CodeArena& arena() noexcept { return arena_; }
  const CodeArena& arena() const noexcept { return arena_; }
  Router& router() noexcept { return router_; }
  const Router& router() const noexcept { return router_; }
  LatencyProfile& latency() noexcept { return latency_; }
  void add_home_link(std::string href, std::string label);

  // Framework/vendor code executed on every request (autoloader, DI
  // container, routing, templating). In real applications this dwarfs the
  // per-page code — a Drupal request runs tens of thousands of framework
  // lines — and it sets the coverage floor any crawler reaches after a
  // single request. Must be called before finalize().
  void set_framework_overhead(std::size_t lines);
  // Lines of the overhead region (0 before set_framework_overhead()).
  std::size_t framework_overhead_lines() const noexcept {
    return overhead_region_.lines();
  }

  // Mark a region executed; valid only while handling a request (handlers
  // capture the app and call this).
  void cover(const CodeRegion& region);
  // Cover the first `lines` lines of the region (partial execution).
  void cover_prefix(const CodeRegion& region, std::size_t lines);

  // Must be called exactly once after all regions/routes are registered.
  void finalize();
  bool finalized() const noexcept { return tracker_ != nullptr; }

  // --- run-time API ---
  const coverage::CodeModel& code_model() const;
  coverage::CoverageTracker& tracker();
  const coverage::CoverageTracker& tracker() const;
  httpsim::SessionStore& sessions() noexcept { return sessions_; }

  httpsim::Response handle(const httpsim::Request& request) final;

  // Attach a nonstationary drift engine (webapp/drift.h). Non-owning, may
  // be null; the harness wires it per run exactly like the FaultInjector on
  // the network. When set, incoming paths are routed through the drifted
  // world, session cookies can expire in storms, and rendered links are
  // rewritten to the current generation/cohort/churn epoch.
  void set_drift_engine(DriftEngine* engine) noexcept { drift_ = engine; }
  DriftEngine* drift_engine() const noexcept { return drift_; }

  // Checkpointing: all mutable app state — the coverage tracker and the
  // session store. Every other member is construction-time configuration;
  // feature state (carts, logins, wizard progress) lives inside sessions.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 protected:
  // Renders the home page ("/"); default shows the registered home links.
  virtual httpsim::Response home_page(RequestContext& ctx);

  const std::vector<std::pair<std::string, std::string>>& home_links()
      const noexcept {
    return home_links_;
  }

 private:
  std::string name_;
  std::string host_;
  CodeArena arena_;
  Router router_;
  LatencyProfile latency_;
  std::vector<std::pair<std::string, std::string>> home_links_;

  // Framework code regions (every request executes these).
  CodeRegion boot_region_;
  CodeRegion session_region_;
  CodeRegion notfound_region_;
  CodeRegion home_region_;
  CodeRegion overhead_region_;  // optional, see set_framework_overhead()

  std::optional<coverage::CodeModel> model_;
  std::unique_ptr<coverage::CoverageTracker> tracker_;
  httpsim::SessionStore sessions_;
  std::string nav_html_;  // site-wide chrome, built at finalize()
  DriftEngine* drift_ = nullptr;  // non-owning, see set_drift_engine()
};

}  // namespace mak::webapp
