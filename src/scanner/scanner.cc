#include "scanner/scanner.h"

#include "support/log.h"
#include "support/strings.h"

namespace mak::scanner {

std::string_view to_string(VulnerabilityKind kind) noexcept {
  switch (kind) {
    case VulnerabilityKind::kReflectedXss:
      return "reflected-xss";
    case VulnerabilityKind::kSqlError:
      return "sql-error";
  }
  return "?";
}

std::string InjectionPoint::key() const {
  std::string out = method;
  out += ' ';
  out += endpoint.scheme;
  out += "://";
  out += endpoint.host;
  out += endpoint.path;
  out += '#';
  out += parameter;
  out += kind == Kind::kQueryParam ? "?q" : "?f";
  return out;
}

void Scanner::harvest(const core::Page& page, AttackSurface& surface,
                      std::set<std::string>& seen_points) const {
  auto add_point = [&](InjectionPoint point) {
    if (seen_points.insert(point.key()).second) {
      surface.points.push_back(std::move(point));
    }
  };

  surface.endpoints.insert(page.url.path);
  for (const auto& action : page.actions) {
    surface.endpoints.insert(action.target.path);
    switch (action.element.kind) {
      case html::InteractableKind::kLink: {
        // Every query parameter of a discovered link is injectable.
        const url::QueryMap query = action.target.query_map();
        for (const auto& [key, value] : query.items()) {
          InjectionPoint point;
          point.kind = InjectionPoint::Kind::kQueryParam;
          point.endpoint = action.target;
          point.method = "GET";
          point.parameter = key;
          add_point(std::move(point));
        }
        break;
      }
      case html::InteractableKind::kForm: {
        for (const auto& field : action.element.fields) {
          if (field.name.empty() || field.type == "hidden" ||
              field.type == "submit" || field.type == "select") {
            continue;  // only text-like fields carry attacker strings
          }
          InjectionPoint point;
          point.kind = InjectionPoint::Kind::kFormField;
          point.endpoint = action.target;
          point.method = action.element.method;
          point.parameter = field.name;
          point.form = action.element;
          add_point(std::move(point));
        }
        break;
      }
      case html::InteractableKind::kButton:
        break;  // no parameters
    }
  }
}

bool Scanner::reflects_unescaped(const std::string& body,
                                 const std::string& payload) const {
  return body.find(payload) != std::string::npos;
}

void Scanner::probe(const InjectionPoint& point, core::Browser& browser,
                    ScanReport& report) const {
  struct Payload {
    VulnerabilityKind kind;
    std::string value;
  };
  const Payload payloads[] = {
      {VulnerabilityKind::kReflectedXss,
       config_.xss_marker + "\"><xss>" + config_.xss_marker},
      {VulnerabilityKind::kSqlError, "1' OR '1"},
  };

  for (const auto& payload : payloads) {
    core::ResolvedAction action;
    if (point.kind == InjectionPoint::Kind::kQueryParam) {
      action.element.kind = html::InteractableKind::kLink;
      action.element.method = "GET";
      action.target = point.endpoint;
      auto query = action.target.query_map();
      query.set(point.parameter, payload.value);
      action.target.query = query.to_string();
    } else {
      action.element = point.form;
      action.element.kind = html::InteractableKind::kForm;
      action.target = point.endpoint;
      // Prefill the probed field with the payload; the browser keeps
      // non-empty values verbatim.
      for (auto& field : action.element.fields) {
        if (field.name == point.parameter) field.value = payload.value;
      }
    }

    const auto result = browser.interact(action);
    ++report.probes_sent;
    const std::string& body_markup = html::serialize(browser.page().dom.root());

    switch (payload.kind) {
      case VulnerabilityKind::kReflectedXss: {
        // The raw payload (including "<xss>") surviving into the DOM means
        // the application echoed it without escaping. Serialization
        // re-escapes text nodes, so a match can only come from a real
        // element that the parser built out of the injected markup.
        if (browser.page().dom.find_first("xss") != nullptr) {
          Finding finding;
          finding.kind = payload.kind;
          finding.point = point;
          finding.evidence = "payload parsed as markup: <xss> element present";
          report.findings.push_back(std::move(finding));
        }
        break;
      }
      case VulnerabilityKind::kSqlError: {
        if (result.status >= 500 &&
            support::contains(body_markup, "SQL syntax")) {
          Finding finding;
          finding.kind = payload.kind;
          finding.point = point;
          finding.evidence = "database error page on quote payload";
          report.findings.push_back(std::move(finding));
        }
        break;
      }
    }
  }
}

ScanReport Scanner::scan(core::Crawler& crawler, core::Browser& browser,
                         support::SimClock& clock) {
  ScanReport report;
  std::set<std::string> seen_points;

  // Phase 1: crawl for coverage, harvesting the surface from every page.
  const support::Deadline deadline(clock, config_.crawl_budget);
  crawler.start(browser);
  harvest(browser.page(), report.surface, seen_points);
  while (!deadline.expired()) {
    crawler.step(browser);
    harvest(browser.page(), report.surface, seen_points);
  }
  report.crawl_interactions = browser.interactions();

  // Phase 2: probe every discovered injection point.
  for (const auto& point : report.surface.points) {
    probe(point, browser, report);
  }

  // Deduplicate findings per (point, kind).
  std::set<std::string> unique;
  std::vector<Finding> deduped;
  for (auto& finding : report.findings) {
    const std::string key =
        std::string(to_string(finding.kind)) + "|" + finding.point.key();
    if (unique.insert(key).second) deduped.push_back(std::move(finding));
  }
  report.findings = std::move(deduped);
  return report;
}

}  // namespace mak::scanner
