// Black-box web vulnerability scanner built on the crawler framework.
//
// The paper motivates crawling as the coverage engine of black-box security
// testing and names "integrating MAK within web scanners" as future work
// (Section VII). This module implements that integration: a scanner that
// uses ANY framework crawler to discover the attack surface (endpoints,
// forms, parameters) and then probes each injection point with lightweight
// payloads:
//   * reflected XSS — a marker payload that must not come back unescaped;
//   * SQL-error injection — a quote payload that must not surface a
//     database error page.
// Better crawler coverage directly translates into more injection points
// probed — the bench/scanner_comparison binary quantifies exactly that.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/browser.h"
#include "core/crawler.h"
#include "support/clock.h"

namespace mak::scanner {

// One place where attacker-controlled input enters the application.
struct InjectionPoint {
  enum class Kind { kQueryParam, kFormField };

  Kind kind = Kind::kQueryParam;
  url::Url endpoint;          // URL without the probed parameter's value
  std::string method;         // "GET" or "POST"
  std::string parameter;      // parameter / field name
  html::Interactable form;    // the form (kFormField only)

  // Stable identity for deduplication.
  std::string key() const;
};

enum class VulnerabilityKind { kReflectedXss, kSqlError };

std::string_view to_string(VulnerabilityKind kind) noexcept;

struct Finding {
  VulnerabilityKind kind = VulnerabilityKind::kReflectedXss;
  InjectionPoint point;
  std::string evidence;  // the matched response excerpt
};

// The discovered attack surface of one crawl.
struct AttackSurface {
  std::set<std::string> endpoints;        // distinct URL paths (no query)
  std::vector<InjectionPoint> points;     // deduplicated injection points

  std::size_t size() const noexcept { return points.size(); }
};

struct ScanReport {
  AttackSurface surface;
  std::vector<Finding> findings;
  std::size_t crawl_interactions = 0;
  std::size_t probes_sent = 0;
  std::size_t covered_lines = 0;  // server coverage achieved by the crawl
};

struct ScannerConfig {
  support::VirtualMillis crawl_budget = 30 * support::kMillisPerMinute;
  std::size_t max_probes_per_point = 2;  // one payload per vulnerability kind
  std::string xss_marker = "x55MARKERz";
};

// Drives `crawler` against the app behind `browser` for the crawl budget,
// harvesting injection points from every visited page, then probes them.
class Scanner {
 public:
  explicit Scanner(ScannerConfig config = {}) : config_(config) {}

  // `clock` must be the clock the browser's network charges.
  ScanReport scan(core::Crawler& crawler, core::Browser& browser,
                  support::SimClock& clock);

 private:
  void harvest(const core::Page& page, AttackSurface& surface,
               std::set<std::string>& seen_points) const;
  void probe(const InjectionPoint& point, core::Browser& browser,
             ScanReport& report) const;
  bool reflects_unescaped(const std::string& body,
                          const std::string& payload) const;

  ScannerConfig config_;
};

}  // namespace mak::scanner
