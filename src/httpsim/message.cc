#include "httpsim/message.h"

#include "html/entities.h"

namespace mak::httpsim {

std::string_view to_string(Method method) noexcept {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kPost:
      return "POST";
  }
  return "?";
}

std::string Request::param(std::string_view key,
                           std::string_view fallback) const {
  if (auto v = query.get(key)) return *v;
  return std::string(fallback);
}

std::string Request::form_value(std::string_view key,
                                std::string_view fallback) const {
  if (auto v = form.get(key)) return *v;
  return std::string(fallback);
}

Response Response::html(std::string body, int status) {
  Response r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

Response Response::redirect(std::string location, int status) {
  Response r;
  r.status = status;
  r.location = std::move(location);
  return r;
}

Response Response::not_found(std::string_view what) {
  Response r;
  r.status = 404;
  r.body = "<html><head><title>404 Not Found</title></head><body>"
           "<h1>Not Found</h1><p>" +
           html::escape(what) + "</p></body></html>";
  return r;
}

Response Response::server_error(std::string_view what) {
  Response r;
  r.status = 500;
  r.body = "<html><head><title>500 Internal Server Error</title></head>"
           "<body><h1>Internal Server Error</h1><p>" +
           html::escape(what) + "</p></body></html>";
  return r;
}

}  // namespace mak::httpsim
