#include "httpsim/cookies.h"

#include "support/strings.h"

namespace mak::httpsim {

void CookieJar::store(std::string_view origin_host,
                      const std::vector<SetCookie>& cookies) {
  if (cookies.empty()) return;
  auto& host_jar = jar_[std::string(origin_host)];
  for (const auto& cookie : cookies) {
    if (cookie.name.empty()) continue;
    if (cookie.value.empty()) {
      host_jar.erase(cookie.name);  // empty value = deletion
      continue;
    }
    host_jar[cookie.name] =
        StoredCookie{cookie.value, cookie.path.empty() ? "/" : cookie.path};
  }
}

std::map<std::string, std::string> CookieJar::cookies_for(
    const url::Url& target) const {
  std::map<std::string, std::string> out;
  const auto host_it = jar_.find(target.host);
  if (host_it == jar_.end()) return out;
  const std::string path = target.path.empty() ? "/" : target.path;
  for (const auto& [name, cookie] : host_it->second) {
    if (support::starts_with(path, cookie.path)) {
      out[name] = cookie.value;
    }
  }
  return out;
}

std::size_t CookieJar::size() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, cookies] : jar_) n += cookies.size();
  return n;
}

}  // namespace mak::httpsim
