#include "httpsim/cookies.h"

#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::httpsim {

void CookieJar::store(std::string_view origin_host,
                      const std::vector<SetCookie>& cookies) {
  if (cookies.empty()) return;
  auto& host_jar = jar_[std::string(origin_host)];
  for (const auto& cookie : cookies) {
    if (cookie.name.empty()) continue;
    if (cookie.value.empty()) {
      host_jar.erase(cookie.name);  // empty value = deletion
      continue;
    }
    host_jar[cookie.name] =
        StoredCookie{cookie.value, cookie.path.empty() ? "/" : cookie.path};
  }
}

std::map<std::string, std::string> CookieJar::cookies_for(
    const url::Url& target) const {
  std::map<std::string, std::string> out;
  const auto host_it = jar_.find(target.host);
  if (host_it == jar_.end()) return out;
  const std::string path = target.path.empty() ? "/" : target.path;
  for (const auto& [name, cookie] : host_it->second) {
    if (support::starts_with(path, cookie.path)) {
      out[name] = cookie.value;
    }
  }
  return out;
}

std::size_t CookieJar::size() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, cookies] : jar_) n += cookies.size();
  return n;
}

support::json::Value CookieJar::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("httpsim.cookie_jar", 1);
  support::json::Array hosts;
  hosts.reserve(jar_.size());
  for (const auto& [host, cookies] : jar_) {
    support::json::Array entry;
    entry.emplace_back(host);
    support::json::Array cookie_list;
    cookie_list.reserve(cookies.size());
    for (const auto& [name, cookie] : cookies) {
      support::json::Array triple;
      triple.emplace_back(name);
      triple.emplace_back(cookie.value);
      triple.emplace_back(cookie.path);
      cookie_list.emplace_back(std::move(triple));
    }
    entry.emplace_back(std::move(cookie_list));
    hosts.emplace_back(std::move(entry));
  }
  state.emplace("hosts", support::json::Value(std::move(hosts)));
  return support::json::Value(std::move(state));
}

void CookieJar::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "httpsim.cookie_jar", 1);
  std::map<std::string, std::map<std::string, StoredCookie>> jar;
  for (const auto& entry : snapshot::require_array(state, "hosts")) {
    if (!entry.is_array() || entry.as_array().size() != 2 ||
        !entry.as_array()[0].is_string() || !entry.as_array()[1].is_array()) {
      throw support::SnapshotError(
          "CookieJar: hosts entries must be [host, cookies] pairs");
    }
    auto& cookies = jar[entry.as_array()[0].as_string()];
    for (const auto& triple : entry.as_array()[1].as_array()) {
      if (!triple.is_array() || triple.as_array().size() != 3 ||
          !triple.as_array()[0].is_string() ||
          !triple.as_array()[1].is_string() ||
          !triple.as_array()[2].is_string()) {
        throw support::SnapshotError(
            "CookieJar: cookies must be [name, value, path] triples");
      }
      cookies[triple.as_array()[0].as_string()] =
          StoredCookie{triple.as_array()[1].as_string(),
                       triple.as_array()[2].as_string()};
    }
  }
  jar_ = std::move(jar);
}

}  // namespace mak::httpsim
