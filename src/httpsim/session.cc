#include "httpsim/session.h"

#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::httpsim {

bool Session::has(std::string_view key) const noexcept {
  return values_.find(key) != values_.end();
}

std::string Session::get(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : std::string(fallback);
}

void Session::set(std::string_view key, std::string value) {
  values_[std::string(key)] = std::move(value);
}

void Session::erase(std::string_view key) {
  values_.erase(std::string(key));
}

std::int64_t Session::get_int(std::string_view key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

void Session::set_int(std::string_view key, std::int64_t value) {
  set(key, std::to_string(value));
}

std::int64_t Session::increment(std::string_view key, std::int64_t by) {
  const std::int64_t next = get_int(key) + by;
  set_int(key, next);
  return next;
}

bool Session::get_flag(std::string_view key) const {
  return get(key) == "1";
}

void Session::set_flag(std::string_view key, bool value) {
  set(key, value ? "1" : "0");
}

const std::vector<std::string>& Session::get_list(std::string_view key) const {
  static const std::vector<std::string> kEmpty;
  const auto it = lists_.find(key);
  return it != lists_.end() ? it->second : kEmpty;
}

void Session::push_list(std::string_view key, std::string value) {
  lists_[std::string(key)].push_back(std::move(value));
}

void Session::clear_list(std::string_view key) {
  lists_.erase(std::string(key));
}

Session* SessionStore::find(std::string_view id) {
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second.get() : nullptr;
}

Session& SessionStore::create() {
  // Deterministic ids: sequence number hashed for realism but reproducible.
  const std::uint64_t seq = next_id_++;
  std::string id = "s" + std::to_string(seq) + "h" +
                   std::to_string(support::fnv1a(std::to_string(seq)) & 0xffffff);
  auto session = std::make_unique<Session>(id);
  Session& ref = *session;
  sessions_[id] = std::move(session);
  return ref;
}

void SessionStore::clear() {
  sessions_.clear();
  next_id_ = 1;
}

support::json::Value Session::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("httpsim.session", 1);
  state.emplace("sid", id_);
  support::json::Array values;
  values.reserve(values_.size());
  for (const auto& [key, value] : values_) {
    support::json::Array pair;
    pair.emplace_back(key);
    pair.emplace_back(value);
    values.emplace_back(std::move(pair));
  }
  state.emplace("values", support::json::Value(std::move(values)));
  support::json::Array lists;
  lists.reserve(lists_.size());
  for (const auto& [key, items] : lists_) {
    support::json::Array pair;
    pair.emplace_back(key);
    support::json::Array item_array;
    item_array.reserve(items.size());
    for (const auto& item : items) item_array.emplace_back(item);
    pair.emplace_back(std::move(item_array));
    lists.emplace_back(std::move(pair));
  }
  state.emplace("lists", support::json::Value(std::move(lists)));
  return support::json::Value(std::move(state));
}

void Session::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "httpsim.session", 1);
  std::map<std::string, std::string, std::less<>> values;
  for (const auto& pair : snapshot::require_array(state, "values")) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_string() || !pair.as_array()[1].is_string()) {
      throw support::SnapshotError(
          "Session: values entries must be [key, value] pairs");
    }
    values[pair.as_array()[0].as_string()] = pair.as_array()[1].as_string();
  }
  std::map<std::string, std::vector<std::string>, std::less<>> lists;
  for (const auto& pair : snapshot::require_array(state, "lists")) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_string() || !pair.as_array()[1].is_array()) {
      throw support::SnapshotError(
          "Session: lists entries must be [key, items] pairs");
    }
    auto& items = lists[pair.as_array()[0].as_string()];
    for (const auto& item : pair.as_array()[1].as_array()) {
      if (!item.is_string()) {
        throw support::SnapshotError("Session: list items must be strings");
      }
      items.push_back(item.as_string());
    }
  }
  id_ = snapshot::require_string(state, "sid");
  values_ = std::move(values);
  lists_ = std::move(lists);
}

support::json::Value SessionStore::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("httpsim.session_store", 1);
  state.emplace("cookie_name", cookie_name_);
  state.emplace("next_id", snapshot::u64_to_hex(next_id_));
  support::json::Array sessions;
  sessions.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    sessions.emplace_back(session->save_state());
  }
  state.emplace("sessions", support::json::Value(std::move(sessions)));
  return support::json::Value(std::move(state));
}

void SessionStore::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "httpsim.session_store", 1);
  if (snapshot::require_string(state, "cookie_name") != cookie_name_) {
    throw support::SnapshotError(
        "SessionStore: cookie name mismatch with checkpoint");
  }
  std::map<std::string, std::unique_ptr<Session>, std::less<>> sessions;
  for (const auto& session_state : snapshot::require_array(state, "sessions")) {
    auto session = std::make_unique<Session>("");
    session->load_state(session_state);
    std::string id = session->id();
    if (id.empty() || sessions.count(id) != 0) {
      throw support::SnapshotError("SessionStore: bad or duplicate session id");
    }
    sessions[std::move(id)] = std::move(session);
  }
  next_id_ = snapshot::require_u64_hex(state, "next_id");
  sessions_ = std::move(sessions);
}

}  // namespace mak::httpsim
