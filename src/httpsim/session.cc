#include "httpsim/session.h"

#include "support/strings.h"

namespace mak::httpsim {

bool Session::has(std::string_view key) const noexcept {
  return values_.find(key) != values_.end();
}

std::string Session::get(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : std::string(fallback);
}

void Session::set(std::string_view key, std::string value) {
  values_[std::string(key)] = std::move(value);
}

void Session::erase(std::string_view key) {
  values_.erase(std::string(key));
}

std::int64_t Session::get_int(std::string_view key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

void Session::set_int(std::string_view key, std::int64_t value) {
  set(key, std::to_string(value));
}

std::int64_t Session::increment(std::string_view key, std::int64_t by) {
  const std::int64_t next = get_int(key) + by;
  set_int(key, next);
  return next;
}

bool Session::get_flag(std::string_view key) const {
  return get(key) == "1";
}

void Session::set_flag(std::string_view key, bool value) {
  set(key, value ? "1" : "0");
}

const std::vector<std::string>& Session::get_list(std::string_view key) const {
  static const std::vector<std::string> kEmpty;
  const auto it = lists_.find(key);
  return it != lists_.end() ? it->second : kEmpty;
}

void Session::push_list(std::string_view key, std::string value) {
  lists_[std::string(key)].push_back(std::move(value));
}

void Session::clear_list(std::string_view key) {
  lists_.erase(std::string(key));
}

Session* SessionStore::find(std::string_view id) {
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second.get() : nullptr;
}

Session& SessionStore::create() {
  // Deterministic ids: sequence number hashed for realism but reproducible.
  const std::uint64_t seq = next_id_++;
  std::string id = "s" + std::to_string(seq) + "h" +
                   std::to_string(support::fnv1a(std::to_string(seq)) & 0xffffff);
  auto session = std::make_unique<Session>(id);
  Session& ref = *session;
  sessions_[id] = std::move(session);
  return ref;
}

void SessionStore::clear() {
  sessions_.clear();
  next_id_ = 1;
}

}  // namespace mak::httpsim
