// Adversarial fault injection for the virtual network.
//
// The paper's case for Exp3.1 over stochastic bandits rests on crawl rewards
// being adversarial/non-stationary (Section II-A.2; Auer et al.'s AdvMAB
// setting). A perfectly reliable simulated web never stresses that claim, and
// a production crawler faces timeouts, 5xx bursts and slow origins. The
// FaultInjector turns the httpsim substrate into a genuinely adversarial
// environment: transient 500/503 responses, connection drops, latency spikes
// charged to the virtual clock, and scheduled "degradation windows" during
// which a whole host goes flaky. All decisions are drawn from a dedicated
// per-run RNG stream, so a run with a given (seed, profile) pair replays
// bit-identically regardless of thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "httpsim/message.h"
#include "support/clock.h"
#include "support/json.h"
#include "support/rng.h"

namespace mak::httpsim {

struct Request;

// Client-side resilience policy, configured alongside the fault profile: how
// the browser reacts when the network misbehaves. All delays are charged as
// virtual time, so retries compete with crawling for the run's time budget.
struct RetryPolicy {
  int max_retries = 0;  // additional attempts after the first (0 = fail fast)
  support::VirtualMillis backoff_base_ms = 500;  // first retry delay
  double backoff_multiplier = 2.0;               // exponential growth factor
  double jitter = 0.2;           // +/- fraction applied to each backoff
  support::VirtualMillis timeout_ms = 0;  // per-fetch budget (0 = unlimited)

  // Nominal (jitter-free) backoff before retry `attempt` (1-based).
  support::VirtualMillis backoff_for(int attempt) const noexcept;

  bool active() const noexcept { return max_retries > 0 || timeout_ms > 0; }
};

// Declarative description of an adversarial network. Rates are per-request
// probabilities; windows describe scheduled host-wide degradation.
struct FaultProfile {
  // Steady-state faults, active on every request.
  double error_rate = 0.0;  // transient 500/503 response
  double drop_rate = 0.0;   // connection dropped before reaching the host
  double spike_rate = 0.0;  // latency spike added to the response cost
  support::VirtualMillis spike_min_ms = 800;
  support::VirtualMillis spike_max_ms = 4000;

  // Degradation windows: every `period` the host goes flaky for `duration`,
  // starting at `offset`. Inside a window the window rates apply (combined
  // with the steady-state rates via max).
  support::VirtualMillis window_period_ms = 0;  // 0 = no windows
  support::VirtualMillis window_duration_ms = 0;
  support::VirtualMillis window_offset_ms = 0;
  double window_error_rate = 0.0;
  double window_drop_rate = 0.0;

  // The client-side policy that rides along with the profile.
  RetryPolicy retry;

  // True if any server-side fault can ever fire.
  bool enabled() const noexcept;
  bool has_windows() const noexcept {
    return window_period_ms > 0 && window_duration_ms > 0;
  }

  // Parse a profile spec: either a preset name ("off", "light", "moderate",
  // "heavy") or/and comma-separated key=value overrides, e.g.
  //   "moderate,error=0.1,retries=3,timeout_ms=6000"
  //   "drop=0.05,spike=0.2,spike_ms=1000:8000,window_period_ms=180000,
  //    window_duration_ms=30000,window_error=0.8"
  // Returns nullopt on a malformed spec.
  static std::optional<FaultProfile> parse(std::string_view spec);

  // Profile from the MAK_FAULT_PROFILE environment variable; nullopt when
  // unset, empty, or unparsable.
  static std::optional<FaultProfile> from_env();

  // Canonical spec string (round-trips through parse()).
  std::string describe() const;
};

// Preset profiles used by the robustness bench.
FaultProfile fault_profile_light();
FaultProfile fault_profile_moderate();
FaultProfile fault_profile_heavy();

// What the injector decided for one request.
struct FaultDecision {
  enum class Kind { kPass, kServerError, kDrop };
  Kind kind = Kind::kPass;
  int status = 0;  // 500 or 503 when kind == kServerError
  support::VirtualMillis extra_latency_ms = 0;  // spike (any kind)
};

// Draws fault decisions from a dedicated RNG stream. Owned per run (never
// shared across threads); the virtual clock determines window membership.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, std::uint64_t seed,
                const support::SimClock& clock);

  // Decide the fate of one request (consumes RNG; updates counters).
  FaultDecision decide(const Request& request);

  // Whether the clock currently sits inside a degradation window.
  bool in_degradation_window() const noexcept;

  struct Counters {
    std::size_t requests_seen = 0;
    std::size_t injected_errors = 0;
    std::size_t injected_drops = 0;
    std::size_t latency_spikes = 0;
    std::size_t window_requests = 0;  // requests issued inside a window
    support::VirtualMillis spike_ms_total = 0;
  };
  const Counters& counters() const noexcept { return counters_; }
  const FaultProfile& profile() const noexcept { return profile_; }

  // Checkpointing: the RNG stream and counters. A resumed run replays the
  // exact fault sequence the uninterrupted run would have seen; the profile
  // spec is embedded so a checkpoint from a different profile is rejected.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  FaultProfile profile_;
  support::Rng rng_;
  const support::SimClock* clock_;
  Counters counters_;
};

}  // namespace mak::httpsim
