// Server-side session storage (the PHP $_SESSION analogue).
//
// Apps store per-visitor state here: login identity, shopping carts, wizard
// progress, user-created content. Sessions are keyed by a generated session
// id carried in a cookie.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.h"

namespace mak::httpsim {

// One visitor's server-side state: a string key/value store with typed
// helpers plus string-list values (e.g. cart contents).
class Session {
 public:
  explicit Session(std::string id) : id_(std::move(id)) {}

  const std::string& id() const noexcept { return id_; }

  bool has(std::string_view key) const noexcept;
  std::string get(std::string_view key, std::string_view fallback = "") const;
  void set(std::string_view key, std::string value);
  void erase(std::string_view key);

  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  void set_int(std::string_view key, std::int64_t value);
  // Increment and return the new value.
  std::int64_t increment(std::string_view key, std::int64_t by = 1);

  bool get_flag(std::string_view key) const;
  void set_flag(std::string_view key, bool value);

  const std::vector<std::string>& get_list(std::string_view key) const;
  void push_list(std::string_view key, std::string value);
  void clear_list(std::string_view key);

  // Checkpointing: id, scalar values and list values.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  std::string id_;
  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, std::vector<std::string>, std::less<>> lists_;
};

// Owns all sessions of one application instance.
class SessionStore {
 public:
  explicit SessionStore(std::string cookie_name = "SESSIONID")
      : cookie_name_(std::move(cookie_name)) {}

  const std::string& cookie_name() const noexcept { return cookie_name_; }

  // Look up the session for the given session id; nullptr if unknown.
  Session* find(std::string_view id);

  // Create a fresh session with a unique id.
  Session& create();

  std::size_t size() const noexcept { return sessions_.size(); }
  void clear();

  // Checkpointing: every live session plus the id-generation counter, so
  // sessions created after a resume get the same ids the uninterrupted run
  // would have handed out.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  std::string cookie_name_;
  std::uint64_t next_id_ = 1;
  std::map<std::string, std::unique_ptr<Session>, std::less<>> sessions_;
};

}  // namespace mak::httpsim
