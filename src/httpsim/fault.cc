#include "httpsim/fault.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::httpsim {

support::VirtualMillis RetryPolicy::backoff_for(int attempt) const noexcept {
  if (attempt <= 0) return 0;
  double delay = static_cast<double>(backoff_base_ms);
  for (int i = 1; i < attempt; ++i) delay *= backoff_multiplier;
  // Cap at a minute: a crawler never sleeps longer than that on one request.
  return static_cast<support::VirtualMillis>(
      std::min(delay, 60.0 * 1000.0));
}

bool FaultProfile::enabled() const noexcept {
  if (error_rate > 0.0 || drop_rate > 0.0 || spike_rate > 0.0) return true;
  return has_windows() && (window_error_rate > 0.0 || window_drop_rate > 0.0);
}

FaultProfile fault_profile_light() {
  FaultProfile p;
  p.error_rate = 0.03;
  p.drop_rate = 0.01;
  p.spike_rate = 0.05;
  p.retry.max_retries = 2;
  return p;
}

FaultProfile fault_profile_moderate() {
  FaultProfile p;
  p.error_rate = 0.08;
  p.drop_rate = 0.03;
  p.spike_rate = 0.10;
  p.window_period_ms = 5 * support::kMillisPerMinute;
  p.window_duration_ms = 45 * support::kMillisPerSecond;
  p.window_offset_ms = 2 * support::kMillisPerMinute;
  p.window_error_rate = 0.5;
  p.window_drop_rate = 0.15;
  p.retry.max_retries = 3;
  p.retry.timeout_ms = 8000;
  return p;
}

FaultProfile fault_profile_heavy() {
  FaultProfile p;
  p.error_rate = 0.15;
  p.drop_rate = 0.08;
  p.spike_rate = 0.20;
  p.spike_min_ms = 1500;
  p.spike_max_ms = 8000;
  p.window_period_ms = 3 * support::kMillisPerMinute;
  p.window_duration_ms = 60 * support::kMillisPerSecond;
  p.window_offset_ms = 1 * support::kMillisPerMinute;
  p.window_error_rate = 0.7;
  p.window_drop_rate = 0.35;
  p.retry.max_retries = 3;
  p.retry.backoff_base_ms = 750;
  p.retry.timeout_ms = 6000;
  return p;
}

namespace {

bool parse_rate(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  out = value;
  return true;
}

bool parse_millis(const std::string& text, support::VirtualMillis& out) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) return false;
  out = static_cast<support::VirtualMillis>(value);
  return true;
}

bool parse_positive_double(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(value >= 1.0)) return false;
  out = value;
  return true;
}

}  // namespace

std::optional<FaultProfile> FaultProfile::parse(std::string_view spec) {
  FaultProfile profile;
  bool first = true;
  for (std::string_view token : support::split(spec, ',')) {
    const std::string item(support::trim(token));
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      // Bare token: a preset name, only meaningful as the first token so
      // overrides always win.
      if (!first) return std::nullopt;
      if (item == "off" || item == "none") {
        profile = FaultProfile{};
      } else if (item == "light") {
        profile = fault_profile_light();
      } else if (item == "moderate") {
        profile = fault_profile_moderate();
      } else if (item == "heavy") {
        profile = fault_profile_heavy();
      } else {
        return std::nullopt;
      }
      first = false;
      continue;
    }
    first = false;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    bool ok = true;
    if (key == "error") {
      ok = parse_rate(value, profile.error_rate);
    } else if (key == "drop") {
      ok = parse_rate(value, profile.drop_rate);
    } else if (key == "spike") {
      ok = parse_rate(value, profile.spike_rate);
    } else if (key == "spike_ms") {
      // MIN:MAX or a single value.
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        ok = parse_millis(value, profile.spike_min_ms);
        profile.spike_max_ms = profile.spike_min_ms;
      } else {
        ok = parse_millis(value.substr(0, colon), profile.spike_min_ms) &&
             parse_millis(value.substr(colon + 1), profile.spike_max_ms) &&
             profile.spike_min_ms <= profile.spike_max_ms;
      }
    } else if (key == "window_period_ms") {
      ok = parse_millis(value, profile.window_period_ms);
    } else if (key == "window_duration_ms") {
      ok = parse_millis(value, profile.window_duration_ms);
    } else if (key == "window_offset_ms") {
      ok = parse_millis(value, profile.window_offset_ms);
    } else if (key == "window_error") {
      ok = parse_rate(value, profile.window_error_rate);
    } else if (key == "window_drop") {
      ok = parse_rate(value, profile.window_drop_rate);
    } else if (key == "retries") {
      support::VirtualMillis n = 0;
      ok = parse_millis(value, n) && n <= 16;
      profile.retry.max_retries = static_cast<int>(n);
    } else if (key == "backoff_ms") {
      ok = parse_millis(value, profile.retry.backoff_base_ms);
    } else if (key == "backoff_mult") {
      ok = parse_positive_double(value, profile.retry.backoff_multiplier);
    } else if (key == "jitter") {
      ok = parse_rate(value, profile.retry.jitter);
    } else if (key == "timeout_ms") {
      ok = parse_millis(value, profile.retry.timeout_ms);
    } else {
      ok = false;
    }
    if (!ok) return std::nullopt;
  }
  return profile;
}

std::optional<FaultProfile> FaultProfile::from_env() {
  const char* spec = std::getenv("MAK_FAULT_PROFILE");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

std::string FaultProfile::describe() const {
  std::string out;
  const auto add = [&out](const std::string& item) {
    if (!out.empty()) out += ',';
    out += item;
  };
  const auto rate = [](double r) { return support::format_fixed(r, 3); };
  if (error_rate > 0) add("error=" + rate(error_rate));
  if (drop_rate > 0) add("drop=" + rate(drop_rate));
  if (spike_rate > 0) {
    add("spike=" + rate(spike_rate));
    add("spike_ms=" + std::to_string(spike_min_ms) + ":" +
        std::to_string(spike_max_ms));
  }
  if (has_windows()) {
    add("window_period_ms=" + std::to_string(window_period_ms));
    add("window_duration_ms=" + std::to_string(window_duration_ms));
    if (window_offset_ms > 0) {
      add("window_offset_ms=" + std::to_string(window_offset_ms));
    }
    if (window_error_rate > 0) add("window_error=" + rate(window_error_rate));
    if (window_drop_rate > 0) add("window_drop=" + rate(window_drop_rate));
  }
  if (retry.max_retries > 0) {
    add("retries=" + std::to_string(retry.max_retries));
    add("backoff_ms=" + std::to_string(retry.backoff_base_ms));
  }
  if (retry.timeout_ms > 0) add("timeout_ms=" + std::to_string(retry.timeout_ms));
  return out.empty() ? "off" : out;
}

FaultInjector::FaultInjector(FaultProfile profile, std::uint64_t seed,
                             const support::SimClock& clock)
    : profile_(std::move(profile)),
      rng_(support::mix64(seed ^ 0xfa017ab1e5ULL)),
      clock_(&clock) {}

bool FaultInjector::in_degradation_window() const noexcept {
  if (!profile_.has_windows()) return false;
  const support::VirtualMillis now = clock_->now();
  if (now < profile_.window_offset_ms) return false;
  const support::VirtualMillis phase =
      (now - profile_.window_offset_ms) % profile_.window_period_ms;
  return phase < profile_.window_duration_ms;
}

FaultDecision FaultInjector::decide(const Request&) {
  namespace metric = support::metric;
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& injected_errors =
      registry.counter(metric::kHttpsimFaultInjectedErrors);
  static support::Counter& injected_drops =
      registry.counter(metric::kHttpsimFaultInjectedDrops);
  static support::Counter& latency_spikes =
      registry.counter(metric::kHttpsimFaultLatencySpikes);
  static support::Counter& window_requests =
      registry.counter(metric::kHttpsimFaultWindowRequests);

  ++counters_.requests_seen;
  const bool degraded = in_degradation_window();
  if (degraded) {
    ++counters_.window_requests;
    window_requests.add();
  }

  const double drop_rate =
      degraded ? std::max(profile_.drop_rate, profile_.window_drop_rate)
               : profile_.drop_rate;
  const double error_rate =
      degraded ? std::max(profile_.error_rate, profile_.window_error_rate)
               : profile_.error_rate;

  FaultDecision decision;
  if (profile_.spike_rate > 0.0 && rng_.chance(profile_.spike_rate)) {
    decision.extra_latency_ms = rng_.uniform_int(
        profile_.spike_min_ms, profile_.spike_max_ms);
    ++counters_.latency_spikes;
    latency_spikes.add();
    counters_.spike_ms_total += decision.extra_latency_ms;
  }
  if (drop_rate > 0.0 && rng_.chance(drop_rate)) {
    decision.kind = FaultDecision::Kind::kDrop;
    ++counters_.injected_drops;
    injected_drops.add();
    return decision;
  }
  if (error_rate > 0.0 && rng_.chance(error_rate)) {
    decision.kind = FaultDecision::Kind::kServerError;
    // Mostly 503 (overload shed) with occasional 500 (transient crash).
    decision.status = rng_.chance(0.75) ? 503 : 500;
    ++counters_.injected_errors;
    injected_errors.add();
    return decision;
  }
  return decision;
}

support::json::Value FaultInjector::save_state() const {
  namespace snapshot = support::snapshot;
  auto state = snapshot::make_state("httpsim.fault_injector", 1);
  state.emplace("profile", profile_.describe());
  state.emplace("rng", snapshot::rng_to_json(rng_));
  support::json::Object counters;
  counters.emplace("requests_seen",
                   static_cast<double>(counters_.requests_seen));
  counters.emplace("injected_errors",
                   static_cast<double>(counters_.injected_errors));
  counters.emplace("injected_drops",
                   static_cast<double>(counters_.injected_drops));
  counters.emplace("latency_spikes",
                   static_cast<double>(counters_.latency_spikes));
  counters.emplace("window_requests",
                   static_cast<double>(counters_.window_requests));
  counters.emplace("spike_ms_total",
                   static_cast<double>(counters_.spike_ms_total));
  state.emplace("counters", support::json::Value(std::move(counters)));
  return support::json::Value(std::move(state));
}

void FaultInjector::load_state(const support::json::Value& state) {
  namespace snapshot = support::snapshot;
  snapshot::check_header(state, "httpsim.fault_injector", 1);
  if (snapshot::require_string(state, "profile") != profile_.describe()) {
    throw support::SnapshotError(
        "FaultInjector: fault profile mismatch with checkpoint");
  }
  const auto& counters = snapshot::require(state, "counters");
  Counters restored;
  restored.requests_seen = static_cast<std::size_t>(
      snapshot::require_index(counters, "requests_seen"));
  restored.injected_errors = static_cast<std::size_t>(
      snapshot::require_index(counters, "injected_errors"));
  restored.injected_drops = static_cast<std::size_t>(
      snapshot::require_index(counters, "injected_drops"));
  restored.latency_spikes = static_cast<std::size_t>(
      snapshot::require_index(counters, "latency_spikes"));
  restored.window_requests = static_cast<std::size_t>(
      snapshot::require_index(counters, "window_requests"));
  restored.spike_ms_total = static_cast<support::VirtualMillis>(
      snapshot::require_index(counters, "spike_ms_total"));
  snapshot::rng_from_json(rng_, snapshot::require(state, "rng"));
  counters_ = restored;
}

}  // namespace mak::httpsim
