#include "httpsim/network.h"

#include <stdexcept>

#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::httpsim {

namespace {

// Synthetic transient-failure page produced by the fault injector. The body
// is intentionally minimal: a degraded origin does not render navigation.
Response injected_error_response(int status) {
  Response r;
  r.status = status;
  r.body = status == 503
               ? "<html><head><title>503 Service Unavailable</title></head>"
                 "<body><h1>Service Unavailable</h1></body></html>"
               : "<html><head><title>500 Internal Server Error</title></head>"
                 "<body><h1>Internal Server Error</h1></body></html>";
  return r;
}

// A dropped connection yields no response at all: status 0, empty body.
Response dropped_response() {
  Response r;
  r.status = 0;
  r.body.clear();
  return r;
}

// Exact serialization of everything a host may condition its response on.
// '\n' cannot occur inside the percent-encoded components, so the key is
// unambiguous.
std::string request_cache_key(const Request& request) {
  std::string key(to_string(request.method));
  key += '\n';
  key += request.url.without_fragment();
  key += '\n';
  key += request.form.to_string();
  for (const auto& [name, value] : request.cookies) {
    key += '\n';
    key += name;
    key += '=';
    key += value;
  }
  return key;
}

}  // namespace

void Network::register_host(std::string host, VirtualHost& handler) {
  hosts_[std::move(host)] = &handler;
}

void Network::set_response_cache_enabled(bool enabled) {
  response_cache_enabled_ = enabled;
  if (!enabled) response_cache_.clear();
}

bool Network::knows_host(std::string_view host) const noexcept {
  return hosts_.find(host) != hosts_.end();
}

Response Network::dispatch(const Request& request) {
  std::string cache_key;
  if (response_cache_enabled_) {
    cache_key = request_cache_key(request);
    const auto cached = response_cache_.find(cache_key);
    if (cached != response_cache_.end()) {
      static support::Counter& cache_hits =
          support::MetricsRegistry::global().counter(
              support::metric::kHttpsimResponseCacheHits);
      cache_hits.add();
      return cached->second;
    }
  }
  static support::Counter& requests = support::MetricsRegistry::global()
                                          .counter(
                                              support::metric::kHttpsimRequests);
  requests.add();
  ++request_count_;
  const auto it = hosts_.find(request.url.host);
  Response response;
  if (it == hosts_.end()) {
    response.status = 502;
    response.body = "<html><head><title>Bad Gateway</title></head>"
                    "<body><h1>Unknown host</h1></body></html>";
  } else {
    response = it->second->handle(request);
  }
  if (response_cache_enabled_) {
    response_cache_.emplace(std::move(cache_key), response);
  }
  return response;
}

FetchResult Network::fetch(Method method, const url::Url& target,
                           const url::QueryMap& form, CookieJar& jar,
                           support::VirtualMillis timeout_ms) {
  namespace metric = support::metric;
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& fetches = registry.counter(metric::kHttpsimFetches);
  static support::Counter& redirects =
      registry.counter(metric::kHttpsimRedirects);
  static support::Counter& network_errors =
      registry.counter(metric::kHttpsimNetworkErrors);
  static support::Histogram& virtual_ms = registry.histogram(
      metric::kHttpsimFetchVirtualMs, support::latency_bounds_ms());

  const support::VirtualMillis start = clock_->now();
  FetchResult result = fetch_impl(method, target, form, jar, timeout_ms);
  fetches.add();
  if (result.redirects > 0) {
    redirects.add(static_cast<std::uint64_t>(result.redirects));
  }
  if (result.network_error) network_errors.add();
  virtual_ms.record(static_cast<double>(clock_->now() - start));
  return result;
}

FetchResult Network::fetch_impl(Method method, const url::Url& target,
                                const url::QueryMap& form, CookieJar& jar,
                                support::VirtualMillis timeout_ms) {
  constexpr int kMaxRedirects = 8;
  FetchResult result;
  url::Url current = url::normalized(target);
  Method current_method = method;
  url::QueryMap current_form = form;

  // Virtual time consumed by this fetch so far (for the client timeout).
  support::VirtualMillis spent = 0;
  // Charge `cost` against the clock, capped by the timeout budget. Returns
  // false when the budget ran out (the timeout itself is charged exactly).
  const auto charge = [&](support::VirtualMillis cost) {
    if (timeout_ms > 0 && spent + cost >= timeout_ms) {
      clock_->advance(timeout_ms - spent);
      spent = timeout_ms;
      return false;
    }
    clock_->advance(cost);
    spent += cost;
    return true;
  };

  for (int hop = 0; hop <= kMaxRedirects; ++hop) {
    Request request;
    request.method = current_method;
    request.url = current;
    request.url.fragment.clear();
    request.query = current.query_map();
    request.form = current_form;
    request.cookies = jar.cookies_for(current);

    FaultDecision fault;
    if (injector_ != nullptr) fault = injector_->decide(request);

    if (fault.kind == FaultDecision::Kind::kDrop) {
      // Connection reset before the host sees the request: the client pays
      // the connection latency (plus any spike) and observes no response.
      result.injected_fault = true;
      result.final_url = current;
      result.response = dropped_response();
      if (charge(latency_.base_ms + fault.extra_latency_ms)) {
        result.dropped = true;
      } else {
        result.timed_out = true;
      }
      result.network_error = true;
      return result;
    }

    Response response;
    bool injected = false;
    if (fault.kind == FaultDecision::Kind::kServerError) {
      response = injected_error_response(fault.status);
      injected = true;
    } else {
      response = dispatch(request);
    }

    support::VirtualMillis cost =
        response.cost_ms > 0 ? response.cost_ms
                             : latency_.cost(response.body.size());
    // Redirect hops are cheap: an empty 3xx response with no page to render.
    if (response.is_redirect()) cost /= 3;
    cost += fault.extra_latency_ms;
    if (!charge(cost)) {
      // Client timeout: the response never finished arriving.
      result.timed_out = true;
      result.network_error = true;
      result.injected_fault = fault.extra_latency_ms > 0 || injected;
      result.final_url = current;
      result.response = dropped_response();
      return result;
    }
    jar.store(current.host, response.set_cookies);

    if (response.is_redirect() && response.location.has_value()) {
      const auto next = url::resolve(current, *response.location);
      if (!next.has_value()) {
        MAK_LOG_WARN << "unresolvable redirect from " << current.to_string()
                     << " to " << *response.location;
        result.final_url = current;
        result.response = std::move(response);
        return result;
      }
      current = url::normalized(*next);
      // 303 (and our 302, browser-style) demote POST to GET and drop the body.
      if (response.status == 303 || response.status == 302 ||
          response.status == 301) {
        current_method = Method::kGet;
        current_form = url::QueryMap{};
      }
      ++result.redirects;
      continue;
    }

    result.final_url = current;
    result.response = std::move(response);
    result.injected_fault = injected;
    return result;
  }

  MAK_LOG_WARN << "redirect loop at " << current.to_string();
  result.network_error = true;
  result.final_url = current;
  result.response = Response::server_error("redirect loop");
  return result;
}

}  // namespace mak::httpsim
