#include "httpsim/network.h"

#include <stdexcept>

#include "support/log.h"

namespace mak::httpsim {

void Network::register_host(std::string host, VirtualHost& handler) {
  hosts_[std::move(host)] = &handler;
}

bool Network::knows_host(std::string_view host) const noexcept {
  return hosts_.find(host) != hosts_.end();
}

Response Network::dispatch(const Request& request) {
  ++request_count_;
  const auto it = hosts_.find(request.url.host);
  if (it == hosts_.end()) {
    Response r;
    r.status = 502;
    r.body = "<html><head><title>Bad Gateway</title></head>"
             "<body><h1>Unknown host</h1></body></html>";
    return r;
  }
  return it->second->handle(request);
}

FetchResult Network::fetch(Method method, const url::Url& target,
                           const url::QueryMap& form, CookieJar& jar) {
  constexpr int kMaxRedirects = 8;
  FetchResult result;
  url::Url current = url::normalized(target);
  Method current_method = method;
  url::QueryMap current_form = form;

  for (int hop = 0; hop <= kMaxRedirects; ++hop) {
    Request request;
    request.method = current_method;
    request.url = current;
    request.url.fragment.clear();
    request.query = current.query_map();
    request.form = current_form;
    request.cookies = jar.cookies_for(current);

    Response response = dispatch(request);
    support::VirtualMillis cost =
        response.cost_ms > 0 ? response.cost_ms
                             : latency_.cost(response.body.size());
    // Redirect hops are cheap: an empty 3xx response with no page to render.
    if (response.is_redirect()) cost /= 3;
    clock_->advance(cost);
    jar.store(current.host, response.set_cookies);

    if (response.is_redirect() && response.location.has_value()) {
      const auto next = url::resolve(current, *response.location);
      if (!next.has_value()) {
        MAK_LOG_WARN << "unresolvable redirect from " << current.to_string()
                     << " to " << *response.location;
        result.final_url = current;
        result.response = std::move(response);
        return result;
      }
      current = url::normalized(*next);
      // 303 (and our 302, browser-style) demote POST to GET and drop the body.
      if (response.status == 303 || response.status == 302 ||
          response.status == 301) {
        current_method = Method::kGet;
        current_form = url::QueryMap{};
      }
      ++result.redirects;
      continue;
    }

    result.final_url = current;
    result.response = std::move(response);
    return result;
  }

  MAK_LOG_WARN << "redirect loop at " << current.to_string();
  result.network_error = true;
  result.final_url = current;
  result.response = Response::server_error("redirect loop");
  return result;
}

}  // namespace mak::httpsim
