// HTTP request/response value types for the in-process web stack.
//
// This is a simulation of the transport layer only: requests and responses
// are plain values handed between the crawler's Browser and a VirtualHost,
// with no sockets involved. Semantics (methods, status codes, redirects,
// cookies, form encoding) follow HTTP closely enough that the crawlers
// behave exactly as they would against a real server.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "support/clock.h"
#include "url/url.h"

namespace mak::httpsim {

enum class Method { kGet, kPost };

std::string_view to_string(Method method) noexcept;

struct Request {
  Method method = Method::kGet;
  url::Url url;                         // absolute, fragment stripped
  url::QueryMap query;                  // parsed from url.query
  url::QueryMap form;                   // POST body (x-www-form-urlencoded)
  std::map<std::string, std::string> cookies;

  // Path of the request target, decoded.
  std::string decoded_path() const { return url::decode(url.path); }

  // First query parameter value, or fallback.
  std::string param(std::string_view key, std::string_view fallback = "") const;
  // First form field value, or fallback.
  std::string form_value(std::string_view key,
                         std::string_view fallback = "") const;
};

struct SetCookie {
  std::string name;
  std::string value;
  std::string path = "/";
};

struct Response {
  int status = 200;
  std::string content_type = "text/html; charset=utf-8";
  std::string body;
  std::optional<std::string> location;  // redirect target (relative ok)
  std::vector<SetCookie> set_cookies;
  // Virtual latency of producing + transferring this response. If zero the
  // network charges a default derived from the body size.
  support::VirtualMillis cost_ms = 0;

  bool is_redirect() const noexcept {
    return status == 301 || status == 302 || status == 303 || status == 307;
  }

  static Response html(std::string body, int status = 200);
  static Response redirect(std::string location, int status = 302);
  static Response not_found(std::string_view what = "");
  static Response server_error(std::string_view what = "");
};

}  // namespace mak::httpsim
