// Client-side cookie jar (host + path scoped, simplified).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "httpsim/message.h"
#include "support/json.h"
#include "url/url.h"

namespace mak::httpsim {

class CookieJar {
 public:
  // Record cookies set by a response from `origin_host`.
  void store(std::string_view origin_host,
             const std::vector<SetCookie>& cookies);

  // Cookies applicable to a request to `target` (host match + path prefix).
  std::map<std::string, std::string> cookies_for(const url::Url& target) const;

  void clear() { jar_.clear(); }
  std::size_t size() const noexcept;

  // Checkpointing: the full jar as [host, [[name, value, path]...]] entries.
  support::json::Value save_state() const;
  void load_state(const support::json::Value& state);

 private:
  struct StoredCookie {
    std::string value;
    std::string path;
  };
  // host -> name -> cookie
  std::map<std::string, std::map<std::string, StoredCookie>> jar_;
};

}  // namespace mak::httpsim
