// The virtual network: dispatches requests to registered hosts, follows
// redirects, persists cookies, and charges virtual latency to the clock.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "httpsim/cookies.h"
#include "httpsim/fault.h"
#include "httpsim/message.h"
#include "support/clock.h"

namespace mak::httpsim {

// Anything that answers HTTP requests (the synthetic web applications).
class VirtualHost {
 public:
  virtual ~VirtualHost() = default;
  virtual Response handle(const Request& request) = 0;
};

// Latency model: virtual cost of a round trip carrying `body_bytes`.
struct LatencyModel {
  support::VirtualMillis base_ms = 120;      // connection + server think time
  support::VirtualMillis per_kilobyte_ms = 8;  // transfer + client parse

  support::VirtualMillis cost(std::size_t body_bytes) const noexcept {
    return base_ms + per_kilobyte_ms *
                         static_cast<support::VirtualMillis>(body_bytes / 1024);
  }
};

// A fetch as observed by the client after redirects.
struct FetchResult {
  url::Url final_url;   // URL of the page actually landed on
  Response response;    // final (non-redirect) response
  int redirects = 0;    // redirect hops followed
  bool network_error = false;  // redirect loop / drop / timeout
  bool dropped = false;        // connection dropped by fault injection
  bool timed_out = false;      // client timeout budget exhausted
  bool injected_fault = false;  // final outcome produced by the injector
};

class Network {
 public:
  explicit Network(support::SimClock& clock) : clock_(&clock) {}

  // Register a host (non-owning; the app outlives the network).
  void register_host(std::string host, VirtualHost& handler);
  bool knows_host(std::string_view host) const noexcept;

  LatencyModel& latency() noexcept { return latency_; }
  support::SimClock& clock() noexcept { return *clock_; }

  // Attach a fault injector (non-owning; nullptr disables injection). The
  // injector vets every request before it reaches the host.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  // Perform a request with redirect following (limit 8) and cookie handling
  // through `jar`. Charges the clock for every hop. A non-zero `timeout_ms`
  // caps the virtual time this fetch may consume: once the budget is spent
  // the client aborts (exactly `timeout_ms` is charged in total).
  FetchResult fetch(Method method, const url::Url& target,
                    const url::QueryMap& form, CookieJar& jar,
                    support::VirtualMillis timeout_ms = 0);

  // Total requests dispatched to hosts (including redirect hops; requests
  // swallowed by the fault injector are not dispatched).
  std::size_t request_count() const noexcept { return request_count_; }

  // Response cache seam, OFF by default and only sound for stateless hosts:
  // the synthetic applications mutate state on POST and many render
  // request-dependent content, so replaying a cached response changes what
  // the crawler observes (and freezes request_count). Static-corpus
  // experiments can opt in to skip the host handler for repeated identical
  // requests. Disabling clears the cache.
  void set_response_cache_enabled(bool enabled);
  bool response_cache_enabled() const noexcept {
    return response_cache_enabled_;
  }
  std::size_t response_cache_size() const noexcept {
    return response_cache_.size();
  }

 private:
  // fetch() body; the public wrapper charges the metrics registry
  // (fetch/redirect/error counters, virtual-latency histogram).
  FetchResult fetch_impl(Method method, const url::Url& target,
                         const url::QueryMap& form, CookieJar& jar,
                         support::VirtualMillis timeout_ms);
  Response dispatch(const Request& request);

  support::SimClock* clock_;
  LatencyModel latency_;
  std::map<std::string, VirtualHost*, std::less<>> hosts_;
  FaultInjector* injector_ = nullptr;
  std::size_t request_count_ = 0;
  bool response_cache_enabled_ = false;
  // Full serialized request -> response; exact-string keys, so a cache hit
  // can never be a hash collision.
  std::unordered_map<std::string, Response> response_cache_;
};

}  // namespace mak::httpsim
