// The virtual network: dispatches requests to registered hosts, follows
// redirects, persists cookies, and charges virtual latency to the clock.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "httpsim/cookies.h"
#include "httpsim/message.h"
#include "support/clock.h"

namespace mak::httpsim {

// Anything that answers HTTP requests (the synthetic web applications).
class VirtualHost {
 public:
  virtual ~VirtualHost() = default;
  virtual Response handle(const Request& request) = 0;
};

// Latency model: virtual cost of a round trip carrying `body_bytes`.
struct LatencyModel {
  support::VirtualMillis base_ms = 120;      // connection + server think time
  support::VirtualMillis per_kilobyte_ms = 8;  // transfer + client parse

  support::VirtualMillis cost(std::size_t body_bytes) const noexcept {
    return base_ms + per_kilobyte_ms *
                         static_cast<support::VirtualMillis>(body_bytes / 1024);
  }
};

// A fetch as observed by the client after redirects.
struct FetchResult {
  url::Url final_url;   // URL of the page actually landed on
  Response response;    // final (non-redirect) response
  int redirects = 0;    // redirect hops followed
  bool network_error = false;  // unknown host / redirect loop
};

class Network {
 public:
  explicit Network(support::SimClock& clock) : clock_(&clock) {}

  // Register a host (non-owning; the app outlives the network).
  void register_host(std::string host, VirtualHost& handler);
  bool knows_host(std::string_view host) const noexcept;

  LatencyModel& latency() noexcept { return latency_; }

  // Perform a request with redirect following (limit 8) and cookie handling
  // through `jar`. Charges the clock for every hop.
  FetchResult fetch(Method method, const url::Url& target,
                    const url::QueryMap& form, CookieJar& jar);

  // Total requests dispatched (including redirect hops).
  std::size_t request_count() const noexcept { return request_count_; }

 private:
  Response dispatch(const Request& request);

  support::SimClock* clock_;
  LatencyModel latency_;
  std::map<std::string, VirtualHost*, std::less<>> hosts_;
  std::size_t request_count_ = 0;
};

}  // namespace mak::httpsim
