// Multi-tenant session server: thousands of crawls over one scheduler.
//
// The server multiplexes logical crawl sessions (CrawlSession) over a
// bounded pool of resident slots, stepping each in round-robin batches of
// virtual time so every tenant makes proportional progress. Robustness is
// layered (docs/robustness.md):
//
//   1. Admission control — opens pass through a bounded queue; when the
//      queue is full the server sheds load with a typed Reject instead of
//      degrading. Rejections are non-fatal: the session simply never opens.
//   2. Per-tenant quotas — cumulative steps / virtual ms / wall ms /
//      checkpoint bytes, enforced gracefully: a tenant over the soft
//      fraction is deprioritized (half scheduling rate); an exhausted
//      tenant has its sessions suspended to checkpoints; further opens are
//      rejected. Nothing is killed non-resumably.
//   3. Fault containment — sessions run in one of two isolation tiers:
//      kThread (in-process, cheap, trusted) or kProcess (each batch in a
//      fork/exec'ed --serve-worker child via harness::ProcPool, so crashes
//      and hangs are contained and retried from the last good state).
//
// Everything is deterministic in virtual time: the same command sequence
// yields byte-identical per-session results, whatever the interleaving of
// suspends, resumes, evictions, or worker-process crashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/procpool.h"
#include "harness/supervisor.h"
#include "serve/admission.h"
#include "serve/session.h"
#include "serve/worker.h"

namespace mak::serve {

// Lifecycle of one logical session. Only kResident sessions hold (or, for
// the process tier, proxy) live crawl state; every other state is cheap.
enum class SessionState {
  kQueued,       // admitted to the queue, not yet constructed
  kResident,     // live and schedulable
  kSuspended,    // checkpointed to a state blob (or frozen in place)
  kFinished,     // budget exhausted; result retained
  kClosed,       // closed by the tenant; result retained
  kQuarantined,  // process-tier retries exhausted; last good state retained,
                 // resumable once the operator intervenes
};
std::string_view to_string(SessionState state);

enum class IsolationTier {
  kThread,   // stepped in-process (default; cheapest)
  kProcess,  // each batch fork/exec'ed via the serve-worker protocol
};

struct OpenRequest {
  std::string tenant;
  std::string app;      // apps::resolve_app name
  std::string crawler;  // harness::crawler_kind_from_name name
  harness::RunConfig config;
  IsolationTier tier = IsolationTier::kThread;
  // Chaos hooks (tests/CI): forwarded to process-tier workers.
  std::size_t kill_at_step = 0;
  std::size_t hang_at_step = 0;
};

struct OpenOutcome {
  std::uint64_t id = 0;  // valid when admitted
  Reject reject = Reject::kNone;
  bool admitted() const noexcept { return reject == Reject::kNone; }
};

// Cumulative per-tenant accounting (quota enforcement reads these).
struct TenantStats {
  std::size_t open_sessions = 0;  // queued + resident + suspended + quarantined
  std::size_t steps = 0;
  long long virtual_ms = 0;
  long long wall_ms = 0;
  std::size_t checkpoint_bytes = 0;
  std::size_t deprioritized_rounds = 0;
  std::size_t suspensions = 0;  // quota-forced suspends
};

struct ServerStats {
  std::size_t opened = 0;
  std::size_t rejected = 0;
  std::size_t finished = 0;
  std::size_t closed = 0;
  std::size_t evicted = 0;
  std::size_t resumed = 0;
  std::size_t worker_dispatches = 0;
  std::size_t worker_failures = 0;
  std::size_t worker_retries = 0;
  std::size_t worker_cancelled = 0;
  std::size_t stall_recoveries = 0;
  std::size_t quarantined = 0;
};

class SessionServer {
 public:
  // `scratch_dir` hosts process-tier state files; required (created on
  // demand) when any session uses IsolationTier::kProcess.
  explicit SessionServer(ServerConfig config, std::string scratch_dir = "");
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  // Quota for one tenant (overrides config.default_quota). Takes effect on
  // the next scheduling round; lowering a quota below current usage
  // suspends the tenant's sessions rather than destroying them.
  void set_tenant_quota(const std::string& tenant, const TenantQuota& quota);

  // Admission-controlled open. On rejection the outcome carries the typed
  // reason and no server state changes.
  OpenOutcome open(const OpenRequest& request);

  // One scheduling round: admit from the queue (evicting LRU residents to
  // make room when it is backed up), then run one batch per schedulable
  // tenant in round-robin order. Returns crawl steps executed this round.
  std::size_t tick();

  // Tick until no session can make progress (all finished, suspended,
  // quarantined, or quota-frozen). Returns total steps executed.
  std::size_t run_until_idle();

  // Explicit suspend: checkpoint the session and free its resident slot
  // (snapshot-capable sessions serialize; others freeze in place, keeping
  // their slot but leaving the scheduler). False if not resident.
  bool suspend(std::uint64_t id);

  // Re-admission of a suspended or quarantined session, subject to the
  // same admission control as open().
  Reject resume(std::uint64_t id);

  // Close a session and return its result: final for finished sessions,
  // partial (marked aborted with `reason`) otherwise. nullopt if the id is
  // unknown or already closed.
  std::optional<harness::RunResult> close(std::uint64_t id,
                                          const std::string& reason = "closed");

  // Drain: suspend every resident session and reject all future admissions
  // with Reject::kShuttingDown. No session is lost — each is finished,
  // closed, suspended, or quarantined, and the latter two hold resumable
  // state.
  void shutdown();

  // --- queries ----------------------------------------------------------
  SessionState state(std::uint64_t id) const;  // throws on unknown id
  // Retained result of a finished/closed session; nullptr otherwise.
  const harness::RunResult* result(std::uint64_t id) const;
  TenantStats tenant_stats(const std::string& tenant) const;
  const ServerStats& stats() const noexcept { return stats_; }
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  std::size_t resident_count() const noexcept { return resident_; }
  std::size_t session_count() const noexcept { return sessions_.size(); }
  const ServerConfig& config() const noexcept { return config_; }

  // Jain's fairness index over per-tenant allocations: (Σx)² / (n·Σx²),
  // 1.0 = perfectly fair. Empty or all-zero input yields 1.0.
  static double jain_index(const std::vector<double>& allocations);

 private:
  struct Session {
    std::uint64_t id = 0;
    std::string tenant;
    std::string app_name;
    std::string crawler_name;
    apps::AppInfo info;
    harness::CrawlerKind kind{};
    harness::RunConfig config;
    IsolationTier tier = IsolationTier::kThread;
    SessionState state = SessionState::kQueued;
    std::unique_ptr<CrawlSession> live;  // thread tier, while resident
    std::string saved;          // serialized state (suspended / process tier)
    bool frozen_in_place = false;  // suspended but keeping the live object
    bool snapshot_capable = false;
    std::size_t steps = 0;
    support::VirtualMillis now = 0;
    std::uint64_t last_run_round = 0;
    std::optional<harness::RunResult> final_result;
    std::size_t kill_at_step = 0;
    std::size_t hang_at_step = 0;
  };

  struct Tenant {
    TenantQuota quota;
    TenantStats stats;
    std::vector<std::uint64_t> session_ids;  // insertion order
    std::size_t rr_cursor = 0;               // round-robin within the tenant
    bool has_quota_override = false;
  };

  Tenant& tenant(const std::string& name);
  const TenantQuota& quota_of(const Tenant& tenant) const;
  bool hard_exhausted(const Tenant& tenant) const;
  bool soft_exceeded(const Tenant& tenant) const;
  std::size_t step_allowance(const Tenant& tenant) const;

  void admit_from_queue();
  bool make_room();  // evict one LRU resident; false if none evictable
  bool activate(Session& session);  // queue → resident (construct/load)
  void suspend_session(Session& session, bool count_as_quota);
  void enforce_quota_suspend(Tenant& tenant);
  void finalize(Session& session, harness::RunResult result);
  std::size_t run_batch(Session& session, std::size_t max_steps);
  std::size_t run_thread_batch(Session& session, std::size_t max_steps);
  std::size_t run_process_batch(Session& session, std::size_t max_steps);
  void charge(Session& session, std::size_t ran,
              support::VirtualMillis virtual_delta, long long wall_ms);
  void update_gauges();
  std::unique_ptr<CrawlSession> materialize(const Session& session) const;

  ServerConfig config_;
  std::string scratch_dir_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::unordered_map<std::string, Tenant> tenants_;
  std::vector<std::string> tenant_order_;  // deterministic rotation order
  std::deque<std::uint64_t> queue_;
  std::size_t resident_ = 0;
  std::size_t tenant_cursor_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t next_id_ = 1;
  bool shutting_down_ = false;
  ServerStats stats_;
  harness::ProcPool pool_;
  std::optional<harness::RunSupervisor> supervisor_;
};

}  // namespace mak::serve
