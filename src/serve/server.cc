#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

#include "support/fs.h"
#include "support/json.h"
#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/snapshot.h"

namespace mak::serve {

namespace sfs = mak::support::fs;
namespace snapshot = mak::support::snapshot;
namespace metric = mak::support::metric;
using support::MetricsRegistry;

std::string_view to_string(SessionState state) {
  switch (state) {
    case SessionState::kQueued: return "queued";
    case SessionState::kResident: return "resident";
    case SessionState::kSuspended: return "suspended";
    case SessionState::kFinished: return "finished";
    case SessionState::kClosed: return "closed";
    case SessionState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

namespace {

std::size_t remaining(std::size_t used, std::size_t cap) {
  return used >= cap ? 0 : cap - used;
}

}  // namespace

SessionServer::SessionServer(ServerConfig config, std::string scratch_dir)
    : config_(std::move(config)),
      scratch_dir_(std::move(scratch_dir)),
      pool_("/proc/self/exe") {
  if (!scratch_dir_.empty()) {
    sfs::default_fs().create_directories(scratch_dir_);
  }
  if (config_.heartbeat_ms > 0) {
    harness::SupervisorConfig watch;
    watch.heartbeat_ms = config_.heartbeat_ms;
    supervisor_.emplace(watch);
  }
}

SessionServer::~SessionServer() {
  pool_.drain();
  while (pool_.running() > 0) pool_.poll(true);
}

double SessionServer::jain_index(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) /
         (static_cast<double>(allocations.size()) * sum_sq);
}

SessionServer::Tenant& SessionServer::tenant(const std::string& name) {
  auto [it, inserted] = tenants_.try_emplace(name);
  if (inserted) tenant_order_.push_back(name);
  return it->second;
}

const TenantQuota& SessionServer::quota_of(const Tenant& tenant) const {
  return tenant.has_quota_override ? tenant.quota : config_.default_quota;
}

bool SessionServer::hard_exhausted(const Tenant& tenant) const {
  const TenantQuota& quota = quota_of(tenant);
  const TenantStats& used = tenant.stats;
  return (quota.limits_steps() && used.steps >= quota.max_steps) ||
         (quota.limits_virtual() &&
          used.virtual_ms >= quota.max_virtual_ms) ||
         (quota.limits_wall() && used.wall_ms >= quota.max_wall_ms);
}

bool SessionServer::soft_exceeded(const Tenant& tenant) const {
  const TenantQuota& quota = quota_of(tenant);
  const TenantStats& used = tenant.stats;
  const double frac = config_.soft_quota_fraction;
  return (quota.limits_steps() &&
          static_cast<double>(used.steps) >=
              frac * static_cast<double>(quota.max_steps)) ||
         (quota.limits_virtual() &&
          static_cast<double>(used.virtual_ms) >=
              frac * static_cast<double>(quota.max_virtual_ms)) ||
         (quota.limits_wall() &&
          static_cast<double>(used.wall_ms) >=
              frac * static_cast<double>(quota.max_wall_ms));
}

std::size_t SessionServer::step_allowance(const Tenant& tenant) const {
  const TenantQuota& quota = quota_of(tenant);
  std::size_t allow = std::numeric_limits<std::size_t>::max();
  if (quota.limits_steps()) {
    allow = std::min(allow, remaining(tenant.stats.steps, quota.max_steps));
  }
  if (quota.limits_virtual()) {
    // Each step advances at least think_time of virtual budget; translate
    // the remaining virtual allowance into a step bound.
    const long long left = quota.max_virtual_ms - tenant.stats.virtual_ms;
    if (left <= 0) return 0;
    allow = std::min(allow, static_cast<std::size_t>(left / 700 + 1));
  }
  return allow;
}

void SessionServer::set_tenant_quota(const std::string& name,
                                     const TenantQuota& quota) {
  Tenant& entry = tenant(name);
  entry.quota = quota;
  entry.has_quota_override = true;
}

OpenOutcome SessionServer::open(const OpenRequest& request) {
  static support::Counter& rejections = MetricsRegistry::global().counter(
      metric::kServeAdmissionRejections);
  static support::Counter& quota_rejections =
      MetricsRegistry::global().counter(metric::kQuotaRejections);
  const auto shed = [&](Reject reject) {
    ++stats_.rejected;
    rejections.add(1);
    if (reject == Reject::kQuotaExhausted) quota_rejections.add(1);
    OpenOutcome outcome;
    outcome.reject = reject;
    return outcome;
  };
  if (shutting_down_) return shed(Reject::kShuttingDown);
  const auto info = apps::resolve_app(request.app);
  if (!info.has_value()) return shed(Reject::kUnknownApp);
  const auto kind = harness::crawler_kind_from_name(request.crawler);
  if (!kind.has_value()) return shed(Reject::kBadConfig);
  if (request.config.trace != nullptr || request.config.budget <= 0) {
    return shed(Reject::kBadConfig);
  }
  const bool capable =
      harness::make_crawler(*kind, support::Rng(0))->snapshotable() != nullptr;
  if (request.tier == IsolationTier::kProcess &&
      (!capable || scratch_dir_.empty())) {
    // The process tier is built on state-in/state-out; a crawler that
    // cannot snapshot (or a server without scratch space) cannot ride it.
    return shed(Reject::kBadConfig);
  }
  Tenant& entry = tenant(request.tenant);
  const TenantQuota& quota = quota_of(entry);
  if (quota.max_sessions > 0 &&
      entry.stats.open_sessions >= quota.max_sessions) {
    return shed(Reject::kTenantSessions);
  }
  if (hard_exhausted(entry) ||
      (quota.max_checkpoint_bytes > 0 &&
       entry.stats.checkpoint_bytes >= quota.max_checkpoint_bytes)) {
    return shed(Reject::kQuotaExhausted);
  }
  if (queue_.size() >= config_.max_queue) return shed(Reject::kQueueFull);

  Session session;
  session.id = next_id_++;
  session.tenant = request.tenant;
  session.app_name = request.app;
  session.crawler_name = request.crawler;
  session.info = *info;
  session.kind = *kind;
  session.config = request.config;
  session.config.trace = nullptr;
  session.tier = request.tier;
  session.snapshot_capable = capable;
  session.kill_at_step = request.kill_at_step;
  session.hang_at_step = request.hang_at_step;
  const std::uint64_t id = session.id;
  sessions_.emplace(id, std::move(session));
  entry.session_ids.push_back(id);
  ++entry.stats.open_sessions;
  queue_.push_back(id);
  ++stats_.opened;
  MetricsRegistry::global().counter(metric::kServeSessionsOpened).add(1);
  OpenOutcome outcome;
  outcome.id = id;
  return outcome;
}

std::unique_ptr<CrawlSession> SessionServer::materialize(
    const Session& session) const {
  auto live =
      std::make_unique<CrawlSession>(session.info, session.kind,
                                     session.config);
  if (!session.saved.empty()) {
    const auto state = support::json::parse(session.saved);
    if (!state.has_value()) {
      throw support::SnapshotError("serve: corrupt saved session state");
    }
    live->load_state(*state);
  }
  return live;
}

bool SessionServer::activate(Session& session) {
  if (session.tier == IsolationTier::kThread) {
    session.live = materialize(session);
    // The blob was only the transport into the live object; holding both
    // would double-count quota.checkpoint_bytes.
    Tenant& entry = tenants_.at(session.tenant);
    entry.stats.checkpoint_bytes -= session.saved.size();
    session.saved.clear();
  }
  session.state = SessionState::kResident;
  session.last_run_round = round_;
  ++resident_;
  return true;
}

bool SessionServer::make_room() {
  // Evict the least-recently-scheduled resident whose state can leave
  // memory (serializable thread-tier sessions and all process-tier ones;
  // frozen-in-place sessions keep their slot by definition).
  Session* victim = nullptr;
  int victim_rank = 0;
  for (auto& [id, session] : sessions_) {
    if (session.state != SessionState::kResident) continue;
    if (session.tier == IsolationTier::kThread && !session.snapshot_capable) {
      continue;
    }
    const int rank =
        soft_exceeded(tenants_.at(session.tenant)) ? 0 : 1;
    if (victim == nullptr || rank < victim_rank ||
        (rank == victim_rank &&
         (session.last_run_round < victim->last_run_round ||
          (session.last_run_round == victim->last_run_round &&
           session.id < victim->id)))) {
      victim = &session;
      victim_rank = rank;
    }
  }
  if (victim == nullptr) return false;
  suspend_session(*victim, /*count_as_quota=*/false);
  // Eviction is involuntary — unlike an explicit suspend(), the session
  // goes straight back to the admission queue so it reclaims a slot (and
  // keeps making progress) as soon as the pressure passes.
  victim->state = SessionState::kQueued;
  queue_.push_back(victim->id);
  ++stats_.evicted;
  MetricsRegistry::global().counter(metric::kServeSessionsEvicted).add(1);
  return true;
}

void SessionServer::admit_from_queue() {
  // Bound one pass by the queue length at entry: evictions requeue their
  // victims at the back, and without the bound a full server would churn
  // evict→admit→evict forever inside a single call.
  std::size_t budget = queue_.size();
  while (!queue_.empty() && budget-- > 0) {
    const std::uint64_t id = queue_.front();
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second.state != SessionState::kQueued) {
      queue_.pop_front();  // closed while queued
      continue;
    }
    if (resident_ >= config_.max_resident && !make_room()) break;
    queue_.pop_front();
    activate(it->second);
  }
}

void SessionServer::suspend_session(Session& session, bool count_as_quota) {
  if (session.state != SessionState::kResident) return;
  Tenant& entry = tenants_.at(session.tenant);
  if (session.tier == IsolationTier::kProcess) {
    --resident_;  // state already lives in session.saved
  } else if (session.snapshot_capable && session.live &&
             session.live->started()) {
    const std::string blob = support::json::dump(session.live->save_state());
    entry.stats.checkpoint_bytes += blob.size();
    session.saved = blob;
    session.live.reset();
    --resident_;
  } else if (session.live && !session.live->started()) {
    // Never stepped: there is no in-flight state; a fresh construction on
    // resume reproduces it exactly.
    session.live.reset();
    --resident_;
  } else {
    // Not serializable (WebExplor/QExplore): freeze in place — the object
    // stays resident (keeping its slot) but leaves the scheduler. Still
    // resumable; never killed.
    session.frozen_in_place = true;
  }
  session.state = SessionState::kSuspended;
  MetricsRegistry::global().counter(metric::kServeSessionsSuspended).add(1);
  if (count_as_quota) {
    ++entry.stats.suspensions;
    MetricsRegistry::global().counter(metric::kQuotaSuspensions).add(1);
  }
}

void SessionServer::enforce_quota_suspend(Tenant& tenant) {
  for (const std::uint64_t id : tenant.session_ids) {
    Session& session = sessions_.at(id);
    if (session.state == SessionState::kResident) {
      suspend_session(session, /*count_as_quota=*/true);
    }
  }
}

void SessionServer::finalize(Session& session, harness::RunResult result) {
  const bool held_slot = session.state == SessionState::kResident &&
                         !session.frozen_in_place;
  session.final_result = std::move(result);
  session.live.reset();
  Tenant& entry = tenants_.at(session.tenant);
  entry.stats.checkpoint_bytes -= session.saved.size();
  session.saved.clear();
  session.frozen_in_place = false;
  if (held_slot) --resident_;
  session.state = SessionState::kFinished;
  --entry.stats.open_sessions;
  ++stats_.finished;
  MetricsRegistry::global().counter(metric::kServeSessionsFinished).add(1);
}

void SessionServer::charge(Session& session, std::size_t ran,
                           support::VirtualMillis virtual_delta,
                           long long wall_ms) {
  Tenant& entry = tenants_.at(session.tenant);
  entry.stats.steps += ran;
  entry.stats.virtual_ms += virtual_delta;
  entry.stats.wall_ms += wall_ms;
}

std::size_t SessionServer::run_thread_batch(Session& session,
                                            std::size_t max_steps) {
  const auto wall_start = std::chrono::steady_clock::now();
  const support::VirtualMillis before = session.live->now();
  const std::size_t ran = session.live->step_batch(max_steps);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  charge(session, ran, session.live->now() - before, wall_ms);
  session.steps = session.live->steps();
  session.now = session.live->now();
  session.last_run_round = round_;
  if (session.live->finished()) {
    finalize(session, session.live->result());
  }
  return ran;
}

std::size_t SessionServer::run_process_batch(Session& session,
                                             std::size_t max_steps) {
  auto& registry = MetricsRegistry::global();
  const auto wall_start = std::chrono::steady_clock::now();
  const std::string base =
      scratch_dir_ + "/sess-" + std::to_string(session.id);

  WorkerBatch batch;
  batch.app = session.app_name;
  batch.crawler = session.crawler_name;
  batch.config = session.config;
  batch.session_id = session.id;
  batch.base_step = session.steps;
  batch.steps = max_steps;
  batch.out_path = base + "-out.json";
  batch.kill_at_step = session.kill_at_step;
  batch.hang_at_step = session.hang_at_step;
  if (!session.saved.empty()) {
    batch.state_path = base + "-in.json";
    if (!sfs::write_file_atomic_verified(sfs::default_fs(), batch.state_path,
                                         session.saved)) {
      throw std::runtime_error("serve: cannot write worker state file");
    }
  }

  for (std::size_t attempt = 1; attempt <= config_.worker_attempts;
       ++attempt) {
    ++stats_.worker_dispatches;
    registry.counter(metric::kServeWorkerDispatches).add(1);
    harness::WorkerSpec spec;
    spec.args = serve_worker_argv(batch);
    spec.stderr_path = base + "-stderr.log";
    harness::WorkerLimits limits;
    limits.wall_timeout_ms = static_cast<long>(config_.worker_wall_ms);
    const int slot = pool_.spawn(spec, limits);
    harness::FailureClass failure = harness::FailureClass::kTransient;
    if (slot >= 0) {
      bool reaped = false;
      while (!reaped) {
        for (const auto& exit : pool_.poll(false)) {
          if (exit.slot == slot) {
            failure = exit.outcome.failure;
            reaped = true;
          }
        }
        if (reaped) break;
        if (supervisor_.has_value() && supervisor_->stalled()) {
          // The server stopped making progress while this child ran: treat
          // the child as wedged, kill it deliberately, and recover. The
          // cancel classifies as kCancelled — never a spurious OOM.
          pool_.cancel(slot);
          supervisor_->rearm();
          ++stats_.stall_recoveries;
          registry.counter(metric::kServeStallRecoveries).add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (failure == harness::FailureClass::kNone) {
      const auto outcome =
          decode_serve_outcome(batch.out_path, session.id, batch.base_step);
      if (outcome.has_value()) {
        const auto wall_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        session.last_run_round = round_;
        if (outcome->finished) {
          const harness::RunResult& result = *outcome->result;
          charge(session, outcome->steps_run,
                 session.config.budget - session.now, wall_ms);
          session.steps = result.steps;
          session.now = session.config.budget;
          finalize(session, result);
        } else {
          const std::string blob = support::json::dump(*outcome->state);
          const auto clock_ms = static_cast<support::VirtualMillis>(
              snapshot::require_index(*outcome->state, "clock_ms"));
          charge(session, outcome->steps_run, clock_ms - session.now,
                 wall_ms);
          Tenant& entry = tenants_.at(session.tenant);
          entry.stats.checkpoint_bytes += blob.size();
          entry.stats.checkpoint_bytes -= session.saved.size();
          session.saved = blob;
          session.steps += outcome->steps_run;
          session.now = clock_ms;
        }
        return outcome->steps_run;
      }
      failure = harness::FailureClass::kTransient;  // corrupt envelope
    }
    ++stats_.worker_failures;
    registry.counter(metric::kServeWorkerFailures).add(1);
    if (failure == harness::FailureClass::kCancelled) {
      // Deliberate parent-side kill (stall recovery / drain): park the
      // session on its last good state instead of burning retries.
      ++stats_.worker_cancelled;
      registry.counter(metric::kServeWorkerCancelled).add(1);
      suspend_session(session, /*count_as_quota=*/false);
      return 0;
    }
    // The chaos hooks are one-shot: the kill/hang modeled an external
    // event, so the retry runs the same batch clean — and, because the
    // session is deterministic, reproduces it byte-for-byte.
    batch.kill_at_step = 0;
    batch.hang_at_step = 0;
    session.kill_at_step = 0;
    session.hang_at_step = 0;
    if (attempt < config_.worker_attempts) {
      ++stats_.worker_retries;
      registry.counter(metric::kServeWorkerRetries).add(1);
    }
  }
  // Retries exhausted: quarantine. The last good state survives, so an
  // operator resume() can still bring the session back — quarantine is a
  // parking state, not a kill.
  MAK_LOG_WARN << "serve: session " << session.id << " quarantined after "
               << config_.worker_attempts << " failed dispatches";
  --resident_;
  session.state = SessionState::kQuarantined;
  ++stats_.quarantined;
  return 0;
}

std::size_t SessionServer::run_batch(Session& session,
                                     std::size_t max_steps) {
  return session.tier == IsolationTier::kProcess
             ? run_process_batch(session, max_steps)
             : run_thread_batch(session, max_steps);
}

std::size_t SessionServer::tick() {
  auto& registry = MetricsRegistry::global();
  ++round_;
  registry.counter(metric::kServeTicks).add(1);
  admit_from_queue();
  std::size_t total = 0;
  const std::size_t tenants = tenant_order_.size();
  for (std::size_t i = 0; i < tenants; ++i) {
    const std::size_t index = (tenant_cursor_ + i) % tenants;
    Tenant& entry = tenants_.at(tenant_order_[index]);
    if (hard_exhausted(entry)) {
      enforce_quota_suspend(entry);
      continue;
    }
    if (soft_exceeded(entry) && round_ % 2 != 0) {
      ++entry.stats.deprioritized_rounds;
      registry.counter(metric::kQuotaDeprioritized).add(1);
      continue;
    }
    // Round-robin inside the tenant: next resident, schedulable session.
    Session* chosen = nullptr;
    const std::size_t count = entry.session_ids.size();
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t at = (entry.rr_cursor + j) % count;
      Session& candidate = sessions_.at(entry.session_ids[at]);
      if (candidate.state == SessionState::kResident &&
          !candidate.frozen_in_place) {
        chosen = &candidate;
        entry.rr_cursor = (at + 1) % count;
        break;
      }
    }
    if (chosen == nullptr) continue;
    const std::size_t allowance =
        std::min(config_.batch_steps, step_allowance(entry));
    if (allowance == 0) {
      enforce_quota_suspend(entry);
      continue;
    }
    total += run_batch(*chosen, allowance);
  }
  if (tenants > 0) tenant_cursor_ = (tenant_cursor_ + 1) % tenants;
  if (supervisor_.has_value()) supervisor_->heartbeat();
  update_gauges();
  return total;
}

std::size_t SessionServer::run_until_idle() {
  std::size_t total = 0;
  // Two consecutive empty rounds, not one: deprioritized tenants only run
  // on even rounds, so a single zero round can precede real progress.
  int idle_rounds = 0;
  while (idle_rounds < 2) {
    const std::size_t ran = tick();
    total += ran;
    if (ran == 0 && queue_.empty()) {
      ++idle_rounds;
    } else {
      idle_rounds = 0;
    }
  }
  return total;
}

bool SessionServer::suspend(std::uint64_t id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() ||
      it->second.state != SessionState::kResident) {
    return false;
  }
  suspend_session(it->second, /*count_as_quota=*/false);
  return true;
}

Reject SessionServer::resume(std::uint64_t id) {
  static support::Counter& rejections = MetricsRegistry::global().counter(
      metric::kServeAdmissionRejections);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Reject::kBadConfig;
  Session& session = it->second;
  if (session.state != SessionState::kSuspended &&
      session.state != SessionState::kQuarantined) {
    return Reject::kBadConfig;
  }
  const auto shed = [&](Reject reject) {
    ++stats_.rejected;
    rejections.add(1);
    return reject;
  };
  if (shutting_down_) return shed(Reject::kShuttingDown);
  if (hard_exhausted(tenants_.at(session.tenant))) {
    return shed(Reject::kQuotaExhausted);
  }
  ++stats_.resumed;
  MetricsRegistry::global().counter(metric::kServeSessionsResumed).add(1);
  if (session.frozen_in_place) {
    // The live object never left memory; just hand it back to the
    // scheduler (the slot was kept across the freeze).
    session.frozen_in_place = false;
    session.state = SessionState::kResident;
    return Reject::kNone;
  }
  if (queue_.size() >= config_.max_queue) return shed(Reject::kQueueFull);
  session.state = SessionState::kQueued;
  queue_.push_back(id);
  return Reject::kNone;
}

std::optional<harness::RunResult> SessionServer::close(
    std::uint64_t id, const std::string& reason) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  Session& session = it->second;
  if (session.state == SessionState::kClosed) return std::nullopt;
  Tenant& entry = tenants_.at(session.tenant);
  harness::RunResult result;
  if (session.state == SessionState::kFinished) {
    result = *session.final_result;
  } else {
    if (session.live != nullptr) {
      result = session.live->result(reason);
    } else {
      // Queued, blob-suspended, or process-tier: rebuild the session from
      // its last state to take a consistent partial result.
      result = materialize(session)->result(reason);
    }
    --entry.stats.open_sessions;
  }
  const bool held_slot = session.state == SessionState::kResident ||
                         session.frozen_in_place;
  if (held_slot) --resident_;
  session.live.reset();
  entry.stats.checkpoint_bytes -= session.saved.size();
  session.saved.clear();
  session.frozen_in_place = false;
  session.state = SessionState::kClosed;
  session.final_result = result;
  ++stats_.closed;
  MetricsRegistry::global().counter(metric::kServeSessionsClosed).add(1);
  return result;
}

void SessionServer::shutdown() {
  shutting_down_ = true;
  for (const std::string& name : tenant_order_) {
    for (const std::uint64_t id : tenants_.at(name).session_ids) {
      Session& session = sessions_.at(id);
      if (session.state == SessionState::kResident) {
        suspend_session(session, /*count_as_quota=*/false);
      }
    }
  }
  pool_.drain();
  while (pool_.running() > 0) pool_.poll(true);
  update_gauges();
}

SessionState SessionServer::state(std::uint64_t id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("serve: unknown session id " +
                            std::to_string(id));
  }
  return it->second.state;
}

const harness::RunResult* SessionServer::result(std::uint64_t id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second.final_result.has_value()) {
    return nullptr;
  }
  return &*it->second.final_result;
}

TenantStats SessionServer::tenant_stats(const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

void SessionServer::update_gauges() {
  auto& registry = MetricsRegistry::global();
  registry.gauge(metric::kServeSessionsResident)
      .set(static_cast<double>(resident_));
  registry.gauge(metric::kServeAdmissionQueueDepth)
      .set(static_cast<double>(queue_.size()));
  std::size_t checkpoint_bytes = 0;
  for (const auto& [name, entry] : tenants_) {
    checkpoint_bytes += entry.stats.checkpoint_bytes;
  }
  registry.gauge(metric::kQuotaCheckpointBytes)
      .set(static_cast<double>(checkpoint_bytes));
}

}  // namespace mak::serve
