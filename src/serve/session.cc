#include "serve/session.h"

#include <stdexcept>

#include "rl/regret.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/snapshot.h"

namespace mak::serve {

namespace snapshot = mak::support::snapshot;

namespace {
constexpr std::string_view kSessionStateId = "serve.session";
constexpr int kSessionStateVersion = 1;
}  // namespace

CrawlSession::CrawlSession(const apps::AppInfo& app_info,
                           harness::CrawlerKind kind,
                           const harness::RunConfig& config)
    : info_(app_info), config_(config) {
  if (config_.trace != nullptr) {
    throw std::logic_error("CrawlSession: traces are not supported");
  }
  // Component and RNG-fork order replicate harness::run_once exactly —
  // the equivalence is load-bearing (suspend/resume and process-tier
  // re-execution must reproduce the uninterrupted run bit-for-bit) and
  // pinned by tests/serve_test.cc.
  app_ = info_.factory();
  network_.emplace(clock_);
  network_->register_host(app_->host(), *app_);

  support::Rng master(config_.seed);
  browser_.emplace(*network_, app_->seed_url(), master.fork(),
                   config_.fill_strategy);
  crawler_ = harness::make_crawler(kind, master.fork());

  if (config_.fault.enabled()) {
    injector_.emplace(config_.fault, master.fork().next(), clock_);
    network_->set_fault_injector(&*injector_);
  }
  if (config_.fault.retry.active()) {
    browser_->set_retry_policy(config_.fault.retry);
  }
  if (config_.drift.enabled()) {
    drift_.emplace(config_.drift, master.fork().next(), clock_);
    app_->set_drift_engine(&*drift_);
  }
}

std::size_t CrawlSession::covered_lines() const {
  return app_->tracker().covered_lines();
}

bool CrawlSession::snapshot_capable() const noexcept {
  return crawler_->snapshotable() != nullptr;
}

void CrawlSession::record_due_samples() {
  while (clock_.now() >= next_sample_) {
    series_.record(next_sample_, covered_lines());
    next_sample_ += config_.sample_interval;
  }
}

std::size_t CrawlSession::step_batch(std::size_t max_steps) {
  static support::Counter& steps_counter =
      support::MetricsRegistry::global().counter(support::metric::kServeSteps);
  if (finished_) return 0;
  if (!started_) {
    crawler_->start(*browser_);
    started_ = true;
  }
  const support::Deadline deadline(clock_, config_.budget);
  std::size_t ran = 0;
  while (ran < max_steps && !deadline.expired()) {
    record_due_samples();
    clock_.advance(config_.think_time);
    crawler_->step(*browser_);
    ++step_index_;
    ++ran;
    if (config_.step_hook) config_.step_hook(step_index_);
  }
  steps_counter.add(ran);
  if (deadline.expired()) {
    finished_ = true;
    series_.record(config_.budget, covered_lines());
  }
  return ran;
}

support::json::Value CrawlSession::save_state() const {
  if (!snapshot_capable()) {
    throw std::logic_error("CrawlSession: crawler cannot snapshot");
  }
  if (!started_ || finished_) {
    throw std::logic_error("CrawlSession: no in-flight state to save");
  }
  auto state = snapshot::make_state(kSessionStateId, kSessionStateVersion);
  state.emplace("clock_ms", static_cast<double>(clock_.now()));
  state.emplace("next_sample", static_cast<double>(next_sample_));
  state.emplace("step", static_cast<double>(step_index_));
  support::json::Array series;
  series.reserve(series_.points().size());
  for (const auto& point : series_.points()) {
    support::json::Array pair;
    pair.emplace_back(static_cast<double>(point.time));
    pair.emplace_back(static_cast<double>(point.covered_lines));
    series.emplace_back(std::move(pair));
  }
  state.emplace("series", support::json::Value(std::move(series)));
  state.emplace("app", app_->save_state());
  state.emplace("browser", browser_->save_state());
  state.emplace("crawler", crawler_->snapshotable()->save_state());
  if (injector_.has_value()) {
    state.emplace("injector", injector_->save_state());
  }
  if (drift_.has_value()) {
    state.emplace("drift", drift_->save_state());
  }
  return support::json::Value(std::move(state));
}

void CrawlSession::load_state(const support::json::Value& state) {
  if (!snapshot_capable()) {
    throw std::logic_error("CrawlSession: crawler cannot snapshot");
  }
  snapshot::check_header(state, kSessionStateId, kSessionStateVersion);
  clock_.restore(static_cast<support::VirtualMillis>(
      snapshot::require_index(state, "clock_ms")));
  next_sample_ = static_cast<support::VirtualMillis>(
      snapshot::require_index(state, "next_sample"));
  step_index_ =
      static_cast<std::size_t>(snapshot::require_index(state, "step"));
  series_ = coverage::CoverageSeries();
  for (const auto& entry : snapshot::require_array(state, "series")) {
    if (!entry.is_array() || entry.as_array().size() != 2 ||
        !entry.as_array()[0].is_number() || !entry.as_array()[1].is_number()) {
      throw support::SnapshotError("serve.session: malformed series point");
    }
    series_.record(
        static_cast<support::VirtualMillis>(entry.as_array()[0].as_number()),
        static_cast<std::size_t>(entry.as_array()[1].as_number()));
  }
  app_->load_state(snapshot::require(state, "app"));
  browser_->load_state(snapshot::require(state, "browser"));
  crawler_->snapshotable()->load_state(snapshot::require(state, "crawler"));
  if (injector_.has_value()) {
    injector_->load_state(snapshot::require(state, "injector"));
  }
  if (drift_.has_value()) {
    drift_->load_state(snapshot::require(state, "drift"));
  }
  started_ = true;
  finished_ = false;
}

harness::RunResult CrawlSession::result(const std::string& abort_reason) const {
  harness::RunResult result;
  result.app = info_.name;
  result.crawler = std::string(crawler_->name());
  result.platform = info_.platform;
  result.total_lines = app_->code_model().total_lines();
  result.series = series_;
  if (!finished_) {
    // Partial sample at the suspension/close instant — the budget-boundary
    // sample of a completed run would misrepresent an unfinished one.
    result.series.record(clock_.now(), covered_lines());
    result.aborted = true;
    result.abort_reason = abort_reason;
  }
  result.steps = step_index_;
  result.final_covered_lines = covered_lines();
  result.interactions = browser_->interactions();
  result.navigations = browser_->navigations();
  result.links_discovered = crawler_->links_discovered();
  result.covered = app_->tracker().lines();
  result.fault_active =
      injector_.has_value() || config_.fault.retry.active();
  result.retries = browser_->retries();
  result.transport_failures = browser_->transport_failures();
  result.timeouts = browser_->timeouts();
  result.backoff_ms = browser_->backoff_ms();
  if (injector_.has_value()) {
    const auto& counters = injector_->counters();
    result.injected_errors = counters.injected_errors;
    result.injected_drops = counters.injected_drops;
    result.latency_spikes = counters.latency_spikes;
    result.degraded_requests = counters.window_requests;
  }
  if (drift_.has_value()) {
    const auto& counters = drift_->counters();
    result.drift_active = true;
    result.drift_gone_requests = counters.gone_requests;
    result.drift_rewritten_links = counters.rewritten_links;
    result.drift_churned_links = counters.churned_links;
    result.drift_expired_sessions = counters.expired_sessions;
    result.drift_storm_requests = counters.storm_requests;
  }
  if (const rl::RegretAccountant* regret = crawler_->regret_accountant();
      regret != nullptr) {
    result.regret_tracked = true;
    result.realized_gain = regret->realized_gain();
    result.best_arm_gain = regret->best_arm_gain();
    result.weak_regret = regret->weak_regret();
    result.cumulative_regret = regret->cumulative_regret();
    result.policy_updates = regret->updates();
  }
  return result;
}

}  // namespace mak::serve
