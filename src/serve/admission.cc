#include "serve/admission.h"

#include "support/env.h"

namespace mak::serve {

std::string_view to_string(Reject reject) {
  switch (reject) {
    case Reject::kNone: return "none";
    case Reject::kQueueFull: return "queue_full";
    case Reject::kTenantSessions: return "tenant_sessions";
    case Reject::kQuotaExhausted: return "quota_exhausted";
    case Reject::kUnknownApp: return "unknown_app";
    case Reject::kBadConfig: return "bad_config";
    case Reject::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

ServerConfig server_from_env() {
  namespace env = support::env;
  ServerConfig config;
  config.max_resident = env::require_count("MAK_SERVE_RESIDENT",
                                           config.max_resident, 1 << 20);
  config.max_queue =
      env::require_count("MAK_SERVE_QUEUE", config.max_queue, 1 << 24);
  config.batch_steps =
      env::require_count("MAK_SERVE_BATCH", config.batch_steps, 1 << 20);
  config.heartbeat_ms = static_cast<long>(env::require_int(
      "MAK_SERVE_HEARTBEAT_MS", config.heartbeat_ms, 0, 3600000));
  config.worker_wall_ms = env::require_int(
      "MAK_SERVE_WORKER_WALL_MS", config.worker_wall_ms, 0, 86400000);
  config.worker_attempts = env::require_count("MAK_SERVE_ATTEMPTS",
                                              config.worker_attempts, 100);
  return config;
}

}  // namespace mak::serve
