// Process-tier execution: one session batch in a forked worker.
//
// Untrusted or chaos-prone tenants run their batches out-of-process so a
// crash, OOM kill, or hang takes down a disposable child, never the server.
// The protocol is state-in → step → state-out:
//
//   parent                                child (--serve-worker)
//   ------                                ----------------------
//   save_state() → state file             construct CrawlSession
//   spawn /proc/self/exe --serve-worker   load_state(state file)
//   poll via harness::ProcPool            step_batch(N)
//   decode envelope, load_state()         write envelope (state or result)
//
// The parent always holds the last good state, so any failure class is
// retryable from that state — and because sessions are deterministic, the
// retry reproduces the lost batch byte-for-byte. A parent-initiated cancel
// (stall recovery, drain) classifies as FailureClass::kCancelled and leaves
// the session suspended on its last good state: deliberate shutdown never
// loses a session.
//
// Result envelope (same shape as the orchestrator's worker files):
//   {"magic":"mak-serve-worker","format":1,"session":<id>,"base_step":N,
//    "kind":"state"|"result","crc32":"<8-hex>","payload":"<json dump>"}
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "harness/experiment.h"
#include "support/json.h"

namespace mak::serve {

// One dispatch: run `steps` crawl steps of one session in a child process.
struct WorkerBatch {
  std::string app;            // catalog name (apps::resolve_app)
  std::string crawler;        // harness::crawler_kind_from_name
  harness::RunConfig config;  // fault/drift travel as describe() specs
  std::uint64_t session_id = 0;
  std::size_t base_step = 0;      // session's step count going in
  std::string state_path;         // saved state to resume from ("" = fresh)
  std::size_t steps = 0;          // batch size
  std::string out_path;           // where the child writes its envelope
  // Chaos hooks (tests/CI only): die or hang at this absolute step index.
  std::size_t kill_at_step = 0;
  std::size_t hang_at_step = 0;
};

// What a successful batch produced: either the session's next suspended
// state (in-flight) or its final result (budget exhausted).
struct WorkerOutcome {
  bool finished = false;
  std::size_t steps_run = 0;
  std::optional<support::json::Value> state;    // when !finished
  std::optional<harness::RunResult> result;     // when finished
};

// Child argv for ProcPool (argv[0], the exe path, is added by the pool).
std::vector<std::string> serve_worker_argv(const WorkerBatch& batch);

// Encode/decode the result envelope. decode returns nullopt on any
// corruption or identity mismatch — the caller retries the batch.
std::string encode_serve_outcome(const WorkerOutcome& outcome,
                                 std::uint64_t session_id,
                                 std::size_t base_step);
std::optional<WorkerOutcome> decode_serve_outcome(const std::string& path,
                                                  std::uint64_t session_id,
                                                  std::size_t base_step);

// True when argv names a serve-worker invocation (argv[1] is
// "--serve-worker"). Binaries hosting the server must dispatch to
// serve_worker_main() before anything else, exactly like the
// orchestrator's worker mode.
bool is_serve_worker_invocation(int argc, char** argv);
int serve_worker_main(int argc, char** argv);

}  // namespace mak::serve
