// One live crawl session with incremental, batched virtual-time stepping.
//
// harness::run_once drives a crawl from start to budget exhaustion in one
// call; a session server needs to interleave thousands of crawls, so
// CrawlSession exposes the same run as a steppable object: construct, call
// step_batch() repeatedly (each call advances up to N crawl steps of virtual
// time), and take the RunResult when the budget is exhausted. Stepping a
// session to completion is bit-identical to run_once under the same config —
// construction replicates run_once's component and RNG-fork order exactly,
// and tests/serve_test.cc locks the equivalence in (including under fault
// and drift profiles).
//
// Sessions whose crawler supports mid-run snapshots (Crawler::snapshotable)
// can be suspended to a JSON state blob and resumed later — in the same
// process (quota throttling, eviction under memory pressure) or in a fresh
// one (the serve worker protocol, crash recovery). The state payload uses
// the exact component codecs of the checkpoint layer, so suspend/resume is
// byte-identical to running straight through.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "apps/catalog.h"
#include "core/browser.h"
#include "harness/experiment.h"
#include "httpsim/fault.h"
#include "httpsim/network.h"
#include "support/clock.h"
#include "support/json.h"
#include "webapp/drift.h"

namespace mak::serve {

class CrawlSession {
 public:
  // Builds all run components (app instance, virtual clock, network,
  // browser, crawler, optional fault injector and drift engine) in
  // run_once's exact order. config.trace must be null: sessions do not
  // record traces (the server's event log covers observability).
  CrawlSession(const apps::AppInfo& app_info, harness::CrawlerKind kind,
               const harness::RunConfig& config);

  CrawlSession(const CrawlSession&) = delete;
  CrawlSession& operator=(const CrawlSession&) = delete;

  // Run up to `max_steps` crawl steps; stops early when the virtual budget
  // expires. Returns the number of steps actually executed. Honors
  // config.step_hook after every completed step (the serve worker's chaos
  // kill rides on it, exactly like the orchestrator's).
  std::size_t step_batch(std::size_t max_steps);

  // True once the virtual budget is exhausted (no further steps will run).
  bool finished() const noexcept { return finished_; }

  // True after the first step_batch call (the crawler has loaded the seed
  // page). A never-started session has no in-flight state to save.
  bool started() const noexcept { return started_; }

  std::size_t steps() const noexcept { return step_index_; }
  support::VirtualMillis now() const noexcept { return clock_.now(); }
  std::size_t covered_lines() const;
  const harness::RunConfig& config() const noexcept { return config_; }

  // True when the crawler supports mid-run state capture — the prerequisite
  // for suspend-to-checkpoint and process-tier execution.
  bool snapshot_capable() const noexcept;

  // Full session state (standard {"id","v"} header, id "serve.session").
  // Throws std::logic_error when !snapshot_capable().
  support::json::Value save_state() const;

  // Restore a freshly constructed session (same app/crawler/config) to a
  // saved state. Throws support::SnapshotError on any mismatch.
  void load_state(const support::json::Value& state);

  // Final accounting. For a finished session this matches run_once's result
  // bit-for-bit; for an unfinished one it carries partial coverage up to the
  // current instant, marked aborted with `abort_reason` (empty = finished
  // normally; the server passes the quota/close reason).
  harness::RunResult result(const std::string& abort_reason = "") const;

 private:
  void record_due_samples();

  apps::AppInfo info_;
  harness::RunConfig config_;
  std::unique_ptr<apps::SyntheticApp> app_;
  support::SimClock clock_;
  std::optional<httpsim::Network> network_;
  std::optional<core::Browser> browser_;
  std::unique_ptr<core::Crawler> crawler_;
  std::optional<httpsim::FaultInjector> injector_;
  std::optional<webapp::DriftEngine> drift_;

  coverage::CoverageSeries series_;
  support::VirtualMillis next_sample_ = 0;
  std::size_t step_index_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool final_sample_recorded_ = false;
};

}  // namespace mak::serve
