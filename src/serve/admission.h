// Admission control and per-tenant quotas for the session server.
//
// Every open/resume request passes through admission control before it can
// consume server resources. Rejections are typed (`Reject`) and non-fatal:
// the server returns the reason to the caller and stays healthy — load
// shedding under overload is a first-class response, never an abort.
//
// Quotas are cumulative per tenant (steps, virtual milliseconds, wall
// milliseconds, suspended-checkpoint bytes) and enforced by a graceful
// ladder: approaching the cap deprioritizes the tenant's sessions,
// exhaustion suspends them to checkpoints (resumable if the quota is
// raised), and further opens are rejected with `Reject::kQuotaExhausted`.
// Wall-millisecond quotas meter real time and are therefore
// nondeterministic; deterministic scripts and CI leave them unlimited.
#pragma once

#include <cstddef>
#include <string_view>

namespace mak::serve {

// Why an open/resume request was refused. kNone means admitted.
enum class Reject {
  kNone = 0,
  kQueueFull,       // admission queue at capacity: load shed, retry later
  kTenantSessions,  // tenant at its concurrent-session cap
  kQuotaExhausted,  // tenant's cumulative quota is spent
  kUnknownApp,      // app name the catalog cannot resolve
  kBadConfig,       // invalid run config (e.g. zero budget, trace set)
  kShuttingDown,    // server is draining; no new admissions
};

std::string_view to_string(Reject reject);

// Cumulative per-tenant resource caps. 0 = unlimited for every field.
struct TenantQuota {
  std::size_t max_sessions = 0;        // concurrent sessions (admission-time)
  std::size_t max_steps = 0;           // total crawl steps across sessions
  long long max_virtual_ms = 0;        // total virtual time across sessions
  long long max_wall_ms = 0;           // total real time (nondeterministic!)
  std::size_t max_checkpoint_bytes = 0;  // bytes of suspended session state

  bool limits_steps() const noexcept { return max_steps > 0; }
  bool limits_virtual() const noexcept { return max_virtual_ms > 0; }
  bool limits_wall() const noexcept { return max_wall_ms > 0; }
};

// Server-wide tuning. Defaults are production-shaped; server_from_env()
// overrides from MAK_SERVE_* with fail-fast validation (support/env.h).
struct ServerConfig {
  std::size_t max_resident = 256;       // live CrawlSession objects at once
  std::size_t max_queue = 4096;         // admission queue capacity
  std::size_t batch_steps = 64;         // crawl steps per scheduling quantum
  long heartbeat_ms = 0;                // server stall watchdog (0 = off)
  long long worker_wall_ms = 10000;     // per-dispatch deadline, process tier
  std::size_t worker_attempts = 3;      // process-tier retries per batch
  // Tenants above this fraction of any cumulative quota are deprioritized
  // (scheduled at half rate) before the hard suspend kicks in.
  double soft_quota_fraction = 0.75;
  TenantQuota default_quota;            // for tenants without an explicit one
};

// Reads MAK_SERVE_RESIDENT, MAK_SERVE_QUEUE, MAK_SERVE_BATCH,
// MAK_SERVE_HEARTBEAT_MS, MAK_SERVE_WORKER_WALL_MS, MAK_SERVE_ATTEMPTS.
// Unset keeps the default; invalid values fail fast with the valid range.
ServerConfig server_from_env();

}  // namespace mak::serve
