#include "serve/worker.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <new>
#include <stdexcept>

#include "harness/checkpoint.h"
#include "harness/procpool.h"
#include "serve/session.h"
#include "support/fs.h"
#include "support/snapshot.h"

namespace mak::serve {

namespace snapshot = mak::support::snapshot;
namespace sfs = mak::support::fs;
using support::json::Value;

namespace {

constexpr std::string_view kServeWorkerMagic = "mak-serve-worker";
constexpr int kServeWorkerFormat = 1;

std::string crc_hex(std::uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return buffer;
}

}  // namespace

std::vector<std::string> serve_worker_argv(const WorkerBatch& batch) {
  std::vector<std::string> args;
  args.emplace_back("--serve-worker");
  const auto add = [&args](const char* key, std::string value) {
    args.emplace_back(key);
    args.push_back(std::move(value));
  };
  add("--app", batch.app);
  add("--crawler", batch.crawler);
  add("--session", snapshot::u64_to_hex(batch.session_id));
  add("--base-step", std::to_string(batch.base_step));
  add("--seed", snapshot::u64_to_hex(batch.config.seed));
  add("--budget-ms", std::to_string(batch.config.budget));
  add("--sample-ms", std::to_string(batch.config.sample_interval));
  add("--think-ms", std::to_string(batch.config.think_time));
  add("--fill",
      std::to_string(static_cast<int>(batch.config.fill_strategy)));
  const std::string fault = batch.config.fault.describe();
  if (!fault.empty()) add("--fault", fault);
  if (batch.config.drift.enabled()) {
    add("--drift", batch.config.drift.describe());
  }
  if (!batch.state_path.empty()) add("--state-in", batch.state_path);
  add("--steps", std::to_string(batch.steps));
  add("--out", batch.out_path);
  if (batch.kill_at_step > 0) {
    add("--kill-at-step", std::to_string(batch.kill_at_step));
  }
  if (batch.hang_at_step > 0) {
    add("--hang-at-step", std::to_string(batch.hang_at_step));
  }
  return args;
}

std::string encode_serve_outcome(const WorkerOutcome& outcome,
                                 std::uint64_t session_id,
                                 std::size_t base_step) {
  support::json::Object inner;
  inner.emplace("finished", outcome.finished);
  inner.emplace("steps_run", static_cast<double>(outcome.steps_run));
  if (outcome.finished) {
    inner.emplace("result", harness::result_to_state(*outcome.result));
  } else {
    inner.emplace("state", *outcome.state);
  }
  const std::string payload = support::json::dump(Value(std::move(inner)));
  support::json::Object outer;
  outer.emplace("magic", std::string(kServeWorkerMagic));
  outer.emplace("format", static_cast<double>(kServeWorkerFormat));
  outer.emplace("session", snapshot::u64_to_hex(session_id));
  outer.emplace("base_step", static_cast<double>(base_step));
  outer.emplace("kind", std::string(outcome.finished ? "result" : "state"));
  outer.emplace("crc32", crc_hex(snapshot::crc32(payload)));
  outer.emplace("payload", payload);
  return support::json::dump(Value(std::move(outer))) + "\n";
}

std::optional<WorkerOutcome> decode_serve_outcome(const std::string& path,
                                                  std::uint64_t session_id,
                                                  std::size_t base_step) {
  const auto contents = sfs::default_fs().read_file(path);
  if (!contents.has_value()) return std::nullopt;
  try {
    const auto outer = support::json::parse(*contents);
    if (!outer.has_value() || !outer->is_object()) return std::nullopt;
    if (snapshot::require_string(*outer, "magic") != kServeWorkerMagic ||
        snapshot::require_int(*outer, "format") != kServeWorkerFormat ||
        snapshot::require_string(*outer, "session") !=
            snapshot::u64_to_hex(session_id) ||
        snapshot::require_index(*outer, "base_step") != base_step) {
      return std::nullopt;
    }
    const std::string& payload = snapshot::require_string(*outer, "payload");
    if (snapshot::require_string(*outer, "crc32") !=
        crc_hex(snapshot::crc32(payload))) {
      return std::nullopt;
    }
    const auto inner = support::json::parse(payload);
    if (!inner.has_value() || !inner->is_object()) return std::nullopt;
    WorkerOutcome outcome;
    outcome.steps_run = static_cast<std::size_t>(
        snapshot::require_index(*inner, "steps_run"));
    const std::string& kind = snapshot::require_string(*outer, "kind");
    if (kind == "result") {
      outcome.finished = true;
      outcome.result =
          harness::result_from_state(snapshot::require(*inner, "result"));
    } else if (kind == "state") {
      outcome.finished = false;
      outcome.state = snapshot::require(*inner, "state");
    } else {
      return std::nullopt;
    }
    return outcome;
  } catch (const support::SnapshotError&) {
    return std::nullopt;
  }
}

// ------------------------------------------------------------ child side

bool is_serve_worker_invocation(int argc, char** argv) {
  return argc >= 2 && std::strcmp(argv[1], "--serve-worker") == 0;
}

namespace {

struct ServeWorkerArgs {
  std::string app;
  std::string crawler;
  std::uint64_t session_id = 0;
  std::size_t base_step = 0;
  std::uint64_t seed = 0;
  long budget_ms = 0;
  long sample_ms = 0;
  long think_ms = 0;
  int fill = 0;
  std::string fault_spec;
  std::string drift_spec;
  std::string state_in;
  std::size_t steps = 0;
  std::string out_path;
  std::size_t kill_at_step = 0;
  std::size_t hang_at_step = 0;
};

bool parse_serve_worker_args(int argc, char** argv, ServeWorkerArgs& args) {
  // argv[1] is "--serve-worker"; everything after is key/value pairs.
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* value = argv[i + 1];
    if (key == "--app") {
      args.app = value;
    } else if (key == "--crawler") {
      args.crawler = value;
    } else if (key == "--session") {
      try {
        args.session_id = snapshot::hex_to_u64(value);
      } catch (const support::SnapshotError&) {
        return false;
      }
    } else if (key == "--base-step") {
      args.base_step =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (key == "--seed") {
      try {
        args.seed = snapshot::hex_to_u64(value);
      } catch (const support::SnapshotError&) {
        return false;
      }
    } else if (key == "--budget-ms") {
      args.budget_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--sample-ms") {
      args.sample_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--think-ms") {
      args.think_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--fill") {
      args.fill = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (key == "--fault") {
      args.fault_spec = value;
    } else if (key == "--drift") {
      args.drift_spec = value;
    } else if (key == "--state-in") {
      args.state_in = value;
    } else if (key == "--steps") {
      args.steps = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (key == "--out") {
      args.out_path = value;
    } else if (key == "--kill-at-step") {
      args.kill_at_step =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (key == "--hang-at-step") {
      args.hang_at_step =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "serve-worker: unknown argument %s\n", key.c_str());
      return false;
    }
  }
  return !args.app.empty() && !args.crawler.empty() &&
         !args.out_path.empty() && args.budget_ms > 0 && args.steps > 0;
}

int serve_worker_run(int argc, char** argv) {
  ServeWorkerArgs args;
  if (!parse_serve_worker_args(argc, argv, args)) {
    std::fprintf(stderr, "serve-worker: bad invocation\n");
    return harness::kExitTransient;
  }
  const auto info = apps::resolve_app(args.app);
  const auto kind = harness::crawler_kind_from_name(args.crawler);
  if (!info.has_value() || !kind.has_value()) {
    std::fprintf(stderr, "serve-worker: unknown app or crawler\n");
    return harness::kExitTransient;
  }
  harness::RunConfig config;
  config.seed = args.seed;
  config.budget = static_cast<support::VirtualMillis>(args.budget_ms);
  if (args.sample_ms > 0) {
    config.sample_interval = static_cast<support::VirtualMillis>(args.sample_ms);
  }
  if (args.think_ms > 0) {
    config.think_time = static_cast<support::VirtualMillis>(args.think_ms);
  }
  config.fill_strategy = static_cast<core::FormFillStrategy>(args.fill);
  if (!args.fault_spec.empty()) {
    const auto fault = httpsim::FaultProfile::parse(args.fault_spec);
    if (!fault.has_value()) {
      std::fprintf(stderr, "serve-worker: unparsable fault spec\n");
      return harness::kExitTransient;
    }
    config.fault = *fault;
  }
  if (!args.drift_spec.empty()) {
    const auto drift = webapp::DriftProfile::parse(args.drift_spec);
    if (!drift.has_value()) {
      std::fprintf(stderr, "serve-worker: unparsable drift spec\n");
      return harness::kExitTransient;
    }
    config.drift = *drift;
  }
  if (args.kill_at_step > 0) {
    // Chaos hook: die the way an external `kill -9` (or the OOM killer)
    // would — no cleanup, no envelope.
    const std::size_t kill_at = args.kill_at_step;
    config.step_hook = [kill_at](std::size_t step) {
      if (step == kill_at) ::kill(::getpid(), SIGKILL);
    };
  } else if (args.hang_at_step > 0) {
    // Chaos hook: wedge forever — exercises the parent's stall/deadline
    // recovery (cancel → kCancelled, session survives on last good state).
    const std::size_t hang_at = args.hang_at_step;
    config.step_hook = [hang_at](std::size_t step) {
      if (step == hang_at) {
        for (;;) ::pause();
      }
    };
  }

  CrawlSession session(*info, *kind, config);
  if (!args.state_in.empty()) {
    const auto contents = sfs::default_fs().read_file(args.state_in);
    if (!contents.has_value()) {
      std::fprintf(stderr, "serve-worker: cannot read state %s\n",
                   args.state_in.c_str());
      return harness::kExitTransient;
    }
    const auto state = support::json::parse(*contents);
    if (!state.has_value()) {
      std::fprintf(stderr, "serve-worker: corrupt state %s\n",
                   args.state_in.c_str());
      return harness::kExitTransient;
    }
    session.load_state(*state);
  }

  WorkerOutcome outcome;
  outcome.steps_run = session.step_batch(args.steps);
  outcome.finished = session.finished();
  if (outcome.finished) {
    outcome.result = session.result();
  } else {
    outcome.state = session.save_state();
  }
  if (!sfs::write_file_atomic_verified(
          sfs::default_fs(), args.out_path,
          encode_serve_outcome(outcome, args.session_id, args.base_step))) {
    std::fprintf(stderr, "serve-worker: cannot write result file %s\n",
                 args.out_path.c_str());
    return harness::kExitTransient;
  }
  return harness::kExitOk;
}

}  // namespace

int serve_worker_main(int argc, char** argv) {
  try {
    return serve_worker_run(argc, argv);
  } catch (const std::bad_alloc&) {
    // RLIMIT_AS surfaces as bad_alloc; report it as the OOM it is.
    return harness::kExitOom;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "serve-worker: %s\n", error.what());
    return harness::kExitTransient;
  }
}

}  // namespace mak::serve
