// Machine-readable bench artifacts (results/BENCH_*.json) and the
// comparison logic behind tools/metrics_diff.
//
// Every bench artifact shares one frozen schema (schema_version 1):
//
//   {"schema_version":1,
//    "kind":"micro_bench",              // which bench produced it
//    "entries":[{"name":"BM_Exp31Step", // stable comparison key
//                "value":123.4,
//                "unit":"ns",
//                "higher_is_better":false}, ...],
//    "metrics":{...}}                   // optional registry snapshot
//                                       // (harness::metrics_to_json schema)
//
// `higher_is_better` encodes the regression direction: time-like entries
// regress upward, coverage-like entries regress downward. metrics_diff uses
// it so one tool gates both artifact kinds.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/metrics.h"

namespace mak::harness {

inline constexpr int kBenchSchemaVersion = 1;

struct BenchEntry {
  std::string name;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = false;
};

// Serialize an artifact. `metrics` may be null (no "metrics" block).
void write_bench_json(std::ostream& os, std::string_view kind,
                      const std::vector<BenchEntry>& entries,
                      const support::MetricsSnapshot* metrics);

// Write an artifact to a file. The path is `env_var`'s value when set
// ("-" or "" disables writing entirely), else `default_path`; parent
// directories are created as needed. Returns true when a file was written;
// failures warn on stderr and return false — bench stdout is never touched.
bool write_bench_json_file(const char* env_var,
                           const std::string& default_path,
                           std::string_view kind,
                           const std::vector<BenchEntry>& entries,
                           const support::MetricsSnapshot* metrics);

// Parsed artifact (the "metrics" block is not needed for diffing and is
// ignored on read).
struct BenchDoc {
  int schema_version = 0;
  std::string kind;
  std::vector<BenchEntry> entries;
};

// Parse an artifact; nullopt on malformed JSON, wrong schema_version, or a
// structurally invalid document.
std::optional<BenchDoc> parse_bench_json(std::string_view text);

// One entry's baseline-vs-candidate comparison.
struct BenchDelta {
  std::string name;
  std::string unit;
  double baseline = 0.0;
  double candidate = 0.0;
  double percent_change = 0.0;  // signed; +inf style values clamped to 1e9
  bool regression = false;      // beyond threshold in the bad direction
  bool only_in_baseline = false;
  bool only_in_candidate = false;
};

// Compare two artifacts entry-by-entry. An entry regresses when its value
// moved more than `threshold_percent` against its `higher_is_better`
// direction (the baseline's direction flag wins on disagreement). Entries
// present on only one side are reported but never counted as regressions.
std::vector<BenchDelta> compare_bench(const BenchDoc& baseline,
                                      const BenchDoc& candidate,
                                      double threshold_percent);

}  // namespace mak::harness
