#include "harness/procpool.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::harness {

namespace {

using Clock = std::chrono::steady_clock;

void apply_rlimit(int resource, rlim_t value) {
  struct rlimit limit;
  limit.rlim_cur = value;
  limit.rlim_max = value;
  ::setrlimit(resource, &limit);  // best effort; failure just means no cap
}

}  // namespace

std::string_view to_string(FailureClass failure) {
  switch (failure) {
    case FailureClass::kNone:
      return "none";
    case FailureClass::kCrash:
      return "crash";
    case FailureClass::kTimeout:
      return "timeout";
    case FailureClass::kOom:
      return "oom";
    case FailureClass::kTransient:
      return "transient";
    case FailureClass::kCancelled:
      return "cancelled";
  }
  return "?";
}

FailureClass classify_exit(int status, bool killed_by_deadline,
                           bool killed_by_cancel) {
  if (killed_by_cancel) return FailureClass::kCancelled;
  if (killed_by_deadline) return FailureClass::kTimeout;
  if (WIFSIGNALED(status)) {
    switch (WTERMSIG(status)) {
      case SIGXCPU:
        return FailureClass::kTimeout;  // RLIMIT_CPU expired
      case SIGKILL:
        // Unrequested SIGKILLs are the Linux OOM killer's signature (and
        // the chaos job's kill -9 stand-in for it).
        return FailureClass::kOom;
      default:
        return FailureClass::kCrash;  // SIGSEGV, SIGBUS, SIGABRT, ...
    }
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kExitOk) return FailureClass::kNone;
    if (code == kExitOom) return FailureClass::kOom;
    return FailureClass::kTransient;
  }
  return FailureClass::kCrash;  // stopped/continued should not reach here
}

struct ProcPool::Worker {
  pid_t pid = -1;
  bool running = false;
  bool deadline_killed = false;
  bool cancel_killed = false;
  bool has_deadline = false;
  Clock::time_point deadline;
};

ProcPool::ProcPool(std::string exe_path) : exe_path_(std::move(exe_path)) {}

ProcPool::~ProcPool() {
  // Never leave orphans: kill and reap anything still running.
  for (auto& worker : workers_) {
    if (!worker.running) continue;
    ::kill(-worker.pid, SIGKILL);  // the whole process group
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.running = false;
  }
}

int ProcPool::spawn(const WorkerSpec& spec, const WorkerLimits& limits) {
  static support::Counter& spawns =
      support::MetricsRegistry::global().counter(
          support::metric::kProcpoolSpawns);

  std::vector<char*> argv;
  argv.reserve(spec.args.size() + 2);
  argv.push_back(const_cast<char*>(exe_path_.c_str()));
  for (const auto& arg : spec.args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    MAK_LOG_WARN << "procpool: fork failed: errno=" << errno;
    return -1;
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls between fork and exec.
    // Own process group, so a deadline kill takes out any grandchildren the
    // worker spawns instead of orphaning them with our stdio still open.
    ::setpgid(0, 0);
    if (!spec.stderr_path.empty()) {
      const int fd = ::open(spec.stderr_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
    }
    if (limits.cpu_seconds > 0) {
      apply_rlimit(RLIMIT_CPU, static_cast<rlim_t>(limits.cpu_seconds));
    }
    if (limits.address_space_mb > 0) {
      apply_rlimit(RLIMIT_AS, static_cast<rlim_t>(limits.address_space_mb) *
                                  1024 * 1024);
    }
    ::execv(exe_path_.c_str(), argv.data());
    _exit(kExitTransient);  // exec failed; retryable from the parent's view
  }

  // Both sides set the group to close the fork/exec race; EACCES after the
  // child has exec'ed just means the child won, which is fine.
  ::setpgid(pid, pid);

  spawns.add();
  Worker worker;
  worker.pid = pid;
  worker.running = true;
  if (limits.wall_timeout_ms > 0) {
    worker.has_deadline = true;
    worker.deadline =
        Clock::now() + std::chrono::milliseconds(limits.wall_timeout_ms);
  }
  workers_.push_back(worker);
  ++running_;
  return static_cast<int>(workers_.size()) - 1;
}

bool ProcPool::cancel(int slot) {
  if (slot < 0 || static_cast<std::size_t>(slot) >= workers_.size()) {
    return false;
  }
  Worker& worker = workers_[static_cast<std::size_t>(slot)];
  if (!worker.running || worker.cancel_killed) return false;
  worker.cancel_killed = true;
  ::kill(-worker.pid, SIGKILL);  // the whole process group
  return true;
}

void ProcPool::drain() {
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    cancel(static_cast<int>(slot));
  }
}

void ProcPool::kill_overdue() {
  const auto now = Clock::now();
  for (auto& worker : workers_) {
    if (!worker.running || worker.deadline_killed || worker.cancel_killed) {
      continue;
    }
    if (worker.has_deadline && now >= worker.deadline) {
      worker.deadline_killed = true;
      ::kill(-worker.pid, SIGKILL);  // the whole process group
      MAK_LOG_WARN << "procpool: wall deadline expired, killed pid "
                   << worker.pid;
    }
  }
}

std::vector<ProcPool::Exit> ProcPool::poll(bool block) {
  std::vector<Exit> exits;
  for (;;) {
    kill_overdue();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& worker = workers_[slot];
      if (!worker.running) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
      if (reaped != worker.pid) continue;
      worker.running = false;
      --running_;
      Exit exit;
      exit.slot = static_cast<int>(slot);
      exit.outcome.failure = classify_exit(status, worker.deadline_killed,
                                           worker.cancel_killed);
      exit.outcome.timed_out = worker.deadline_killed;
      if (WIFEXITED(status)) exit.outcome.exit_code = WEXITSTATUS(status);
      if (WIFSIGNALED(status)) exit.outcome.term_signal = WTERMSIG(status);
      exits.push_back(exit);
    }
    if (!exits.empty() || !block || running_ == 0) return exits;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace mak::harness
