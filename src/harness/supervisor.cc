#include "harness/supervisor.h"

#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"

namespace mak::harness {

RunSupervisor::RunSupervisor(SupervisorConfig config)
    : config_(config), start_(std::chrono::steady_clock::now()) {
  if (config_.heartbeat_ms > 0) {
    watchdog_ = std::thread([this] { watch(); });
  }
}

RunSupervisor::~RunSupervisor() { stop_watchdog(); }

void RunSupervisor::stop_watchdog() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    watchdog_.join();
  }
}

void RunSupervisor::rearm() {
  stop_watchdog();
  stalled_.store(false, std::memory_order_relaxed);
  heartbeat();
  if (config_.heartbeat_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = false;
    }
    watchdog_ = std::thread([this] { watch(); });
  }
}

long RunSupervisor::elapsed_ms() const noexcept {
  return static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - start_)
                               .count());
}

void RunSupervisor::heartbeat() noexcept {
  last_beat_ms_.store(elapsed_ms(), std::memory_order_relaxed);
}

void RunSupervisor::watch() {
  static support::Counter& stalls = support::MetricsRegistry::global().counter(
      support::metric::kSupervisorStalls);
  // Poll at a quarter of the heartbeat period so a stall is flagged within
  // ~1.25 heartbeats of the last completed step.
  const auto poll = std::chrono::milliseconds(
      std::max<long>(1, config_.heartbeat_ms / 4));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, poll);
    if (stop_) return;
    const long since_beat =
        elapsed_ms() - last_beat_ms_.load(std::memory_order_relaxed);
    if (stall_exceeded(since_beat, config_.heartbeat_ms)) {
      stalled_.store(true, std::memory_order_relaxed);
      stalls.add();
      MAK_LOG_WARN << "supervisor: no crawl-step progress in " << since_beat
                   << " ms (heartbeat limit " << config_.heartbeat_ms << " ms)";
      return;  // the run thread aborts at its next poll
    }
  }
}

std::string RunSupervisor::should_abort(std::size_t steps) {
  static support::Counter& aborts = support::MetricsRegistry::global().counter(
      support::metric::kSupervisorAborts);
  std::string reason;
  if (stalled_.load(std::memory_order_relaxed)) {
    reason = kAbortStalled;
  } else if (config_.wall_limit_ms > 0 && elapsed_ms() >= config_.wall_limit_ms) {
    reason = kAbortWallLimit;
  } else if (config_.max_steps > 0 && steps >= config_.max_steps) {
    reason = kAbortStepLimit;
  }
  if (!reason.empty()) aborts.add();
  return reason;
}

}  // namespace mak::harness
