// Aggregation of run results into the paper's tables and figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace mak::harness {

// Mean and population standard deviation of coverage at each sample time
// across repetitions (one Figure 2 curve).
//
// Every aggregate in this header skips failed placeholder repetitions
// (RunResult::failed, produced by the orchestrator when a worker exhausts
// its retries): a placeholder carries no coverage data, so including it
// would silently drag every statistic toward zero. Aborted runs stay in —
// they hold real partial coverage.
struct CoverageCurve {
  std::vector<support::VirtualMillis> times;
  std::vector<double> mean;
  std::vector<double> stddev;
};
CoverageCurve aggregate_series(const std::vector<RunResult>& runs);

// Paper Section V-B ground truth:
//  * PHP apps: the union of lines covered by ALL crawlers across ALL runs;
//  * Node apps: the app's declared total line count (coverage-node reports
//    the whole code base).
// `runs_by_crawler` holds every run of every crawler for ONE app.
std::size_t estimate_ground_truth(
    const std::vector<std::vector<RunResult>>& runs_by_crawler);

// Mean covered lines across runs.
double mean_covered(const std::vector<RunResult>& runs);

// Mean coverage percentage of this crawler's runs w.r.t. `ground_truth`.
double mean_coverage_percent(const std::vector<RunResult>& runs,
                             std::size_t ground_truth);

// Section V-C regret: (best crawler's mean lines - this crawler's mean
// lines) / total lines of the app, expressed in percent. `mean_lines` maps
// crawler name -> mean covered lines for one app.
std::map<std::string, double> regrets_percent(
    const std::map<std::string, double>& mean_lines, double total_lines);

// Mean interactions per run (Section V-D).
double mean_interactions(const std::vector<RunResult>& runs);

// Order-independent summary of final covered lines across repetitions.
// Computed from exact integer sums (covered-line counts are integers well
// inside the 2^53 window), so mean, stddev and the CI are bit-identical for
// every permutation of `runs` — the property the orchestrator's
// out-of-order completion relies on. Failed placeholders are counted in
// `failed` and excluded from the statistics.
struct SummaryStats {
  std::size_t runs = 0;    // repetitions included
  std::size_t failed = 0;  // failed placeholders excluded
  double mean = 0.0;
  double stddev = 0.0;     // population
  double ci95 = 0.0;       // half-width of the normal-approximation 95% CI
};
SummaryStats summarize_covered(const std::vector<RunResult>& runs);

}  // namespace mak::harness
