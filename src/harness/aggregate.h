// Aggregation of run results into the paper's tables and figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace mak::harness {

// Mean and population standard deviation of coverage at each sample time
// across repetitions (one Figure 2 curve).
struct CoverageCurve {
  std::vector<support::VirtualMillis> times;
  std::vector<double> mean;
  std::vector<double> stddev;
};
CoverageCurve aggregate_series(const std::vector<RunResult>& runs);

// Paper Section V-B ground truth:
//  * PHP apps: the union of lines covered by ALL crawlers across ALL runs;
//  * Node apps: the app's declared total line count (coverage-node reports
//    the whole code base).
// `runs_by_crawler` holds every run of every crawler for ONE app.
std::size_t estimate_ground_truth(
    const std::vector<std::vector<RunResult>>& runs_by_crawler);

// Mean covered lines across runs.
double mean_covered(const std::vector<RunResult>& runs);

// Mean coverage percentage of this crawler's runs w.r.t. `ground_truth`.
double mean_coverage_percent(const std::vector<RunResult>& runs,
                             std::size_t ground_truth);

// Section V-C regret: (best crawler's mean lines - this crawler's mean
// lines) / total lines of the app, expressed in percent. `mean_lines` maps
// crawler name -> mean covered lines for one app.
std::map<std::string, double> regrets_percent(
    const std::map<std::string, double>& mean_lines, double total_lines);

// Mean interactions per run (Section V-D).
double mean_interactions(const std::vector<RunResult>& runs);

}  // namespace mak::harness
