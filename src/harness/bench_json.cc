#include "harness/bench_json.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>

#include "harness/json_report.h"
#include "support/fs.h"
#include "support/json.h"

namespace mak::harness {

void write_bench_json(std::ostream& os, std::string_view kind,
                      const std::vector<BenchEntry>& entries,
                      const support::MetricsSnapshot* metrics) {
  using support::json::escape;
  using support::json::format_double;
  os << "{\"schema_version\":" << kBenchSchemaVersion << ",\"kind\":\""
     << escape(kind) << "\",\"entries\":[";
  bool first = true;
  for (const auto& entry : entries) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << escape(entry.name) << "\",\"value\":"
       << format_double(entry.value) << ",\"unit\":\"" << escape(entry.unit)
       << "\",\"higher_is_better\":"
       << (entry.higher_is_better ? "true" : "false") << "}";
  }
  os << "]";
  if (metrics != nullptr) {
    os << ",\"metrics\":" << metrics_to_json(*metrics);
  }
  os << "}\n";
}

bool write_bench_json_file(const char* env_var,
                           const std::string& default_path,
                           std::string_view kind,
                           const std::vector<BenchEntry>& entries,
                           const support::MetricsSnapshot* metrics) {
  std::string path = default_path;
  if (const char* override_path = std::getenv(env_var);
      override_path != nullptr) {
    path = override_path;
  }
  if (path.empty() || path == "-") return false;  // explicitly disabled

  auto& disk = support::fs::default_fs();
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  if (!parent.empty()) disk.create_directories(parent);

  // Bench artifacts feed the metrics_diff regression gate and the CI chaos
  // job's byte comparison; a torn artifact would fail both, so write through
  // the read-back-verified atomic path.
  std::ostringstream out;
  write_bench_json(out, kind, entries, metrics);
  if (!support::fs::write_file_atomic_verified(disk, path, out.str())) {
    std::cerr << "bench_json: cannot write " << path << "\n";
    return false;
  }
  return true;
}

std::optional<BenchDoc> parse_bench_json(std::string_view text) {
  const auto root = support::json::parse(text);
  if (!root.has_value() || !root->is_object()) return std::nullopt;

  BenchDoc doc;
  const auto version = root->number_at("schema_version");
  if (!version.has_value() || *version != kBenchSchemaVersion) {
    return std::nullopt;
  }
  doc.schema_version = static_cast<int>(*version);
  doc.kind = root->string_at("kind").value_or("");

  const support::json::Value* entries = root->find("entries");
  if (entries == nullptr || !entries->is_array()) return std::nullopt;
  for (const auto& item : entries->as_array()) {
    if (!item.is_object()) return std::nullopt;
    BenchEntry entry;
    const auto name = item.string_at("name");
    const auto value = item.number_at("value");
    if (!name.has_value() || !value.has_value()) return std::nullopt;
    entry.name = *name;
    entry.value = *value;
    entry.unit = item.string_at("unit").value_or("");
    entry.higher_is_better = item.bool_at("higher_is_better").value_or(false);
    doc.entries.push_back(std::move(entry));
  }
  return doc;
}

std::vector<BenchDelta> compare_bench(const BenchDoc& baseline,
                                      const BenchDoc& candidate,
                                      double threshold_percent) {
  std::map<std::string, const BenchEntry*> candidate_by_name;
  for (const auto& entry : candidate.entries) {
    candidate_by_name.emplace(entry.name, &entry);
  }

  std::vector<BenchDelta> deltas;
  for (const auto& base : baseline.entries) {
    BenchDelta delta;
    delta.name = base.name;
    delta.unit = base.unit;
    delta.baseline = base.value;
    const auto it = candidate_by_name.find(base.name);
    if (it == candidate_by_name.end()) {
      delta.only_in_baseline = true;
      deltas.push_back(std::move(delta));
      continue;
    }
    const BenchEntry& cand = *it->second;
    candidate_by_name.erase(it);
    delta.candidate = cand.value;
    if (base.value != 0.0) {
      delta.percent_change =
          (cand.value - base.value) / std::fabs(base.value) * 100.0;
    } else {
      delta.percent_change = cand.value == 0.0 ? 0.0 : 1e9;
    }
    const double bad_change = base.higher_is_better ? -delta.percent_change
                                                    : delta.percent_change;
    delta.regression = bad_change > threshold_percent;
    deltas.push_back(std::move(delta));
  }
  for (const auto& [name, entry] : candidate_by_name) {
    BenchDelta delta;
    delta.name = name;
    delta.unit = entry->unit;
    delta.candidate = entry->value;
    delta.only_in_candidate = true;
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace mak::harness
