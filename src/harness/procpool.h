// Process pool for crash-contained experiment workers (docs/robustness.md).
//
// One repetition = one fork/exec'ed worker process re-running this binary in
// `--worker` mode, so a SIGSEGV, OOM kill or hang takes down exactly one
// repetition — never the sweep. The pool applies POSIX rlimits in the child
// (CPU seconds, address space), enforces a parent-side wall deadline with a
// SIGKILL, reaps exits, and classifies every abnormal end into one of four
// failure classes the orchestrator's retry policy can act on.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mak::harness {

// Why a worker attempt ended. kNone is the only success.
enum class FailureClass {
  kNone,       // clean exit 0 (result file still needs validating)
  kCrash,      // fatal signal: SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT, ...
  kTimeout,    // parent wall deadline fired, or the kernel sent SIGXCPU
  kOom,        // SIGKILL (the Linux OOM killer's signature) or exit kExitOom
  kTransient,  // nonzero exit: I/O trouble, bad config, anything retryable
  kCancelled,  // the pool itself requested the kill (cancel()/drain());
               // deliberate shutdown must never masquerade as OOM and
               // trigger spurious retries
};
std::string_view to_string(FailureClass failure);

// Worker exit-code convention (the worker side lives in orchestrator.cc):
// a caught std::bad_alloc reports kExitOom so address-space rlimit hits that
// surface as exceptions classify like kernel OOM kills; every other failure
// a worker can detect about itself is kExitTransient (EX_TEMPFAIL).
inline constexpr int kExitOk = 0;
inline constexpr int kExitOom = 74;
inline constexpr int kExitTransient = 75;

// Per-attempt resource limits. Zeros mean unlimited.
struct WorkerLimits {
  long cpu_seconds = 0;       // RLIMIT_CPU (soft; the kernel sends SIGXCPU)
  long address_space_mb = 0;  // RLIMIT_AS
  long wall_timeout_ms = 0;   // parent-enforced deadline, ends in SIGKILL
};

// One worker invocation: argv tail (argv[0] is the re-exec'ed binary
// itself) plus an optional file capturing the child's stderr for failure
// bundles.
struct WorkerSpec {
  std::vector<std::string> args;
  std::string stderr_path;  // empty = inherit the parent's stderr
};

// How one attempt ended.
struct WorkerOutcome {
  FailureClass failure = FailureClass::kNone;
  int exit_code = -1;    // valid when the worker exited normally
  int term_signal = 0;   // valid when it was signaled
  bool timed_out = false;  // the parent deadline killed it
};

// Map a waitpid status to a failure class. `killed_by_deadline` forces
// kTimeout regardless of how the SIGKILL was reported; `killed_by_cancel`
// forces kCancelled the same way (and wins over the deadline, which cannot
// have fired first — cancel marks the worker before the deadline scan runs).
FailureClass classify_exit(int status, bool killed_by_deadline,
                           bool killed_by_cancel = false);

// Fork/exec pool. Not thread-safe: one owner drives spawn()/poll() from a
// single thread (the orchestrator's scheduling loop).
class ProcPool {
 public:
  // `exe_path` is the binary to exec; "/proc/self/exe" re-runs the current
  // one, which is how workers share the catalog and crawler registry with
  // the parent without a separate worker binary.
  explicit ProcPool(std::string exe_path);
  ~ProcPool();

  ProcPool(const ProcPool&) = delete;
  ProcPool& operator=(const ProcPool&) = delete;

  // Launch one worker; returns a slot id (>= 0) identifying it in poll()
  // results, or -1 when fork fails.
  int spawn(const WorkerSpec& spec, const WorkerLimits& limits);

  std::size_t running() const noexcept { return running_; }

  // Parent-initiated, deliberate termination of one worker (group SIGKILL).
  // The next poll() reports the slot with FailureClass::kCancelled. Returns
  // false when the slot is unknown or already exited.
  bool cancel(int slot);

  // Cancel every running worker (pool drain on shutdown). The workers are
  // killed immediately; call poll() to reap them as kCancelled exits.
  void drain();

  struct Exit {
    int slot = -1;
    WorkerOutcome outcome;
  };
  // Reap every worker that has exited and SIGKILL any that blew their wall
  // deadline. With `block`, waits (polling) until at least one worker exits
  // or none are running.
  std::vector<Exit> poll(bool block);

 private:
  struct Worker;
  void kill_overdue();

  std::string exe_path_;
  std::vector<Worker> workers_;  // indexed by slot; exited slots stay
  std::size_t running_ = 0;
};

}  // namespace mak::harness
