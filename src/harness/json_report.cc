#include "harness/json_report.h"

#include <ostream>

#include "core/trace.h"  // json_escape

namespace mak::harness {

std::string run_to_json(const RunResult& run, bool include_series) {
  std::string out = "{";
  out += "\"app\":\"" + core::json_escape(run.app) + "\"";
  out += ",\"crawler\":\"" + core::json_escape(run.crawler) + "\"";
  out += ",\"platform\":\"";
  out += to_string(run.platform);
  out += "\"";
  out += ",\"covered_lines\":" + std::to_string(run.final_covered_lines);
  out += ",\"total_lines\":" + std::to_string(run.total_lines);
  out += ",\"interactions\":" + std::to_string(run.interactions);
  out += ",\"navigations\":" + std::to_string(run.navigations);
  out += ",\"links\":" + std::to_string(run.links_discovered);
  if (include_series) {
    out += ",\"series\":[";
    bool first = true;
    for (const auto& point : run.series.points()) {
      if (!first) out += ',';
      first = false;
      out += "[" + std::to_string(point.time) + "," +
             std::to_string(point.covered_lines) + "]";
    }
    out += "]";
  }
  out += "}";
  return out;
}

void write_experiment_json(std::ostream& os, const std::string& app,
                           std::size_t ground_truth,
                           const std::vector<std::vector<RunResult>>& runs,
                           bool include_series) {
  os << "{\"app\":\"" << core::json_escape(app)
     << "\",\"ground_truth\":" << ground_truth << ",\"runs\":[";
  bool first = true;
  for (const auto& crawler_runs : runs) {
    for (const auto& run : crawler_runs) {
      if (!first) os << ',';
      first = false;
      os << run_to_json(run, include_series);
    }
  }
  os << "]}\n";
}

}  // namespace mak::harness
