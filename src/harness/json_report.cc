#include "harness/json_report.h"

#include <ostream>

#include "core/trace.h"  // json_escape
#include "support/json.h"

namespace mak::harness {

namespace {

// Observability JSON schema version. Bump ONLY with a corresponding section
// in docs/observability.md describing the migration; consumers hard-match
// this value.
constexpr int kMetricsSchemaVersion = 1;

}  // namespace

std::string metrics_to_json(const support::MetricsSnapshot& snapshot) {
  using support::json::escape;
  using support::json::format_double;
  std::string out = "{\"schema_version\":";
  out += std::to_string(kMetricsSchemaVersion);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "\"" + escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "\"" + escape(name) + "\":" + format_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "\"" + escape(name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + format_double(h.sum);
    out += ",\"min\":" + format_double(h.min);
    out += ",\"max\":" + format_double(h.max);
    out += ",\"p50\":" + format_double(h.p50);
    out += ",\"p90\":" + format_double(h.p90);
    out += ",\"p99\":" + format_double(h.p99);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ',';
      const bool overflow = i + 1 == h.buckets.size();
      out += "[";
      out += overflow ? "null" : format_double(h.buckets[i].first);
      out += "," + std::to_string(h.buckets[i].second) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string run_to_json(const RunResult& run, bool include_series) {
  std::string out = "{";
  out += "\"app\":\"" + core::json_escape(run.app) + "\"";
  out += ",\"crawler\":\"" + core::json_escape(run.crawler) + "\"";
  out += ",\"platform\":\"";
  out += to_string(run.platform);
  out += "\"";
  out += ",\"covered_lines\":" + std::to_string(run.final_covered_lines);
  out += ",\"total_lines\":" + std::to_string(run.total_lines);
  out += ",\"interactions\":" + std::to_string(run.interactions);
  out += ",\"navigations\":" + std::to_string(run.navigations);
  out += ",\"links\":" + std::to_string(run.links_discovered);
  if (run.fault_active) {
    // Only present on fault-injection runs, so fault-free reports stay
    // byte-identical to builds without the fault layer.
    out += ",\"faults\":{";
    out += "\"retries\":" + std::to_string(run.retries);
    out += ",\"transport_failures\":" + std::to_string(run.transport_failures);
    out += ",\"timeouts\":" + std::to_string(run.timeouts);
    out += ",\"backoff_ms\":" + std::to_string(run.backoff_ms);
    out += ",\"injected_errors\":" + std::to_string(run.injected_errors);
    out += ",\"injected_drops\":" + std::to_string(run.injected_drops);
    out += ",\"latency_spikes\":" + std::to_string(run.latency_spikes);
    out += ",\"degraded_requests\":" + std::to_string(run.degraded_requests);
    out += "}";
  }
  if (run.drift_active) {
    // Only present on drift runs, so stationary reports stay byte-identical
    // to builds without the drift layer.
    out += ",\"drift\":{";
    out += "\"gone_requests\":" + std::to_string(run.drift_gone_requests);
    out += ",\"rewritten_links\":" + std::to_string(run.drift_rewritten_links);
    out += ",\"churned_links\":" + std::to_string(run.drift_churned_links);
    out += ",\"expired_sessions\":" +
           std::to_string(run.drift_expired_sessions);
    out += ",\"storm_requests\":" + std::to_string(run.drift_storm_requests);
    out += "}";
  }
  if (run.regret_tracked) {
    // Present for bandit-policy crawlers (docs/policies.md).
    using support::json::format_double;
    out += ",\"regret\":{";
    out += "\"realized_gain\":" + format_double(run.realized_gain);
    out += ",\"best_arm_gain\":" + format_double(run.best_arm_gain);
    out += ",\"weak\":" + format_double(run.weak_regret);
    out += ",\"cumulative\":" + format_double(run.cumulative_regret);
    out += ",\"updates\":" + std::to_string(run.policy_updates);
    out += "}";
  }
  if (run.aborted) {
    // Only present on supervisor-cancelled runs, so completed-run reports
    // stay byte-identical to earlier builds (and to resumed runs).
    out += ",\"aborted\":{";
    out += "\"reason\":\"" + core::json_escape(run.abort_reason) + "\"";
    out += ",\"steps\":" + std::to_string(run.steps);
    out += "}";
  }
  if (run.failed) {
    // Only present on repetitions whose orchestrator worker exhausted its
    // retries; everything else stays byte-identical to a serial run.
    out += ",\"failed\":{";
    out += "\"class\":\"" + core::json_escape(run.failure_class) + "\"";
    out += ",\"attempts\":" + std::to_string(run.attempts);
    out += "}";
  }
  if (include_series) {
    out += ",\"series\":[";
    bool first = true;
    for (const auto& point : run.series.points()) {
      if (!first) out += ',';
      first = false;
      out += "[" + std::to_string(point.time) + "," +
             std::to_string(point.covered_lines) + "]";
    }
    out += "]";
  }
  out += "}";
  return out;
}

void write_experiment_json(std::ostream& os, const std::string& app,
                           std::size_t ground_truth,
                           const std::vector<std::vector<RunResult>>& runs,
                           bool include_series,
                           const support::MetricsSnapshot* metrics) {
  os << "{\"app\":\"" << core::json_escape(app)
     << "\",\"ground_truth\":" << ground_truth << ",\"runs\":[";
  bool first = true;
  for (const auto& crawler_runs : runs) {
    for (const auto& run : crawler_runs) {
      if (!first) os << ',';
      first = false;
      os << run_to_json(run, include_series);
    }
  }
  os << "]";
  if (metrics != nullptr) {
    os << ",\"metrics\":" << metrics_to_json(*metrics);
  }
  os << "}\n";
}

}  // namespace mak::harness
