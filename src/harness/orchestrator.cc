#include "harness/orchestrator.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <thread>

#include "harness/checkpoint.h"
#include "harness/json_report.h"
#include "support/env.h"
#include "support/fs.h"
#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"
#include "support/strings.h"

namespace mak::harness {

namespace sfs = mak::support::fs;
namespace snapshot = mak::support::snapshot;
using support::SnapshotError;
using support::json::Value;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kWorkerMagic = "mak-worker";
constexpr std::string_view kBundleMagic = "mak-bundle";
constexpr int kWorkerFormat = 1;
constexpr int kBundleFormat = 1;

std::string crc_hex(std::uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return std::string(buffer);
}

// Catalog names and generated "gen-v1-..." names both resolve; the latter
// encode their full spec, so a re-exec'd worker rebuilds the same app.
std::optional<apps::AppInfo> find_app(const std::string& name) {
  return apps::resolve_app(name);
}

std::optional<CrawlerKind> find_crawler(const std::string& name) {
  return crawler_kind_from_name(name);
}

// The per-repetition RunConfig a worker executes: the serial path's derived
// seed (so completed repetitions are bit-identical to run_repeated), the
// worker's private checkpoint directory, and no parent-process-only hooks.
RunConfig make_worker_config(const RunConfig& config, std::size_t rep,
                             const std::string& checkpoint_dir) {
  RunConfig worker = config;
  worker.seed = repetition_seed(config, rep);
  worker.trace = nullptr;
  worker.step_hook = nullptr;
  worker.crash_at_step = 0;
  worker.checkpoint.dir = checkpoint_dir;
  worker.checkpoint.resume = true;
  return worker;
}

std::string rep_scratch_dir(const OrchestratorConfig& orch,
                            const std::string& digest, std::size_t rep) {
  return orch.scratch_dir + "/" + digest + "/rep-" + std::to_string(rep);
}

// ----------------------------------------------------- worker result file
//
// {"magic":"mak-worker","format":1,"digest":"<worker run digest>","rep":N,
//  "crc32":"<8-hex>","payload":"<result_to_state dump>"}
//
// Same shape as a checkpoint envelope: the CRC covers the payload's exact
// bytes and the digest binds the file to one (config, repetition) pair.

std::string encode_worker_result(const RunResult& result,
                                 const std::string& digest, std::size_t rep) {
  const std::string payload = support::json::dump(result_to_state(result));
  support::json::Object outer;
  outer.emplace("magic", std::string(kWorkerMagic));
  outer.emplace("format", static_cast<double>(kWorkerFormat));
  outer.emplace("digest", digest);
  outer.emplace("rep", static_cast<double>(rep));
  outer.emplace("crc32", crc_hex(snapshot::crc32(payload)));
  outer.emplace("payload", payload);
  return support::json::dump(Value(std::move(outer))) + "\n";
}

// Parse + validate; nullopt on any problem (the caller treats that as a
// transient worker failure and retries).
std::optional<RunResult> decode_worker_result(const std::string& path,
                                              const std::string& digest,
                                              std::size_t rep) {
  const auto contents = sfs::default_fs().read_file(path);
  if (!contents.has_value()) return std::nullopt;
  try {
    const auto outer = support::json::parse(*contents);
    if (!outer.has_value() || !outer->is_object()) return std::nullopt;
    if (snapshot::require_string(*outer, "magic") != kWorkerMagic ||
        snapshot::require_int(*outer, "format") != kWorkerFormat ||
        snapshot::require_string(*outer, "digest") != digest ||
        snapshot::require_index(*outer, "rep") != rep) {
      return std::nullopt;
    }
    const std::string& payload = snapshot::require_string(*outer, "payload");
    if (snapshot::require_string(*outer, "crc32") !=
        crc_hex(snapshot::crc32(payload))) {
      return std::nullopt;
    }
    const auto state = support::json::parse(payload);
    if (!state.has_value()) return std::nullopt;
    return result_from_state(*state);
  } catch (const SnapshotError&) {
    return std::nullopt;
  }
}

// ------------------------------------------------------- worker argv side

struct WorkerArgs {
  std::string app;
  std::string crawler;
  std::uint64_t seed = 0;
  long budget_ms = 0;
  long sample_ms = 0;
  long think_ms = 0;
  int fill = 0;
  std::string fault_spec;
  std::string drift_spec;
  std::string checkpoint_dir;
  long ckpt_interval_ms = 0;
  unsigned long long ckpt_every_steps = 0;
  unsigned long long ckpt_keep = 3;
  long heartbeat_ms = 0;
  long wall_limit_ms = 0;
  unsigned long long max_steps = 0;
  std::size_t rep = 0;
  std::string out_path;
  unsigned long long kill_at_step = 0;
};

bool parse_worker_args(int argc, char** argv, WorkerArgs& args) {
  // argv[1] is "--worker"; everything after is key/value pairs.
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* value = argv[i + 1];
    if (key == "--app") {
      args.app = value;
    } else if (key == "--crawler") {
      args.crawler = value;
    } else if (key == "--seed") {
      try {
        args.seed = snapshot::hex_to_u64(value);
      } catch (const SnapshotError&) {
        return false;
      }
    } else if (key == "--budget-ms") {
      args.budget_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--sample-ms") {
      args.sample_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--think-ms") {
      args.think_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--fill") {
      args.fill = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (key == "--fault") {
      args.fault_spec = value;
    } else if (key == "--drift") {
      args.drift_spec = value;
    } else if (key == "--ckpt-dir") {
      args.checkpoint_dir = value;
    } else if (key == "--ckpt-interval-ms") {
      args.ckpt_interval_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--ckpt-every-steps") {
      args.ckpt_every_steps = std::strtoull(value, nullptr, 10);
    } else if (key == "--ckpt-keep") {
      args.ckpt_keep = std::strtoull(value, nullptr, 10);
    } else if (key == "--heartbeat-ms") {
      args.heartbeat_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--wall-limit-ms") {
      args.wall_limit_ms = std::strtol(value, nullptr, 10);
    } else if (key == "--max-steps") {
      args.max_steps = std::strtoull(value, nullptr, 10);
    } else if (key == "--rep") {
      args.rep = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (key == "--out") {
      args.out_path = value;
    } else if (key == "--kill-at-step") {
      args.kill_at_step = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "worker: unknown argument %s\n", key.c_str());
      return false;
    }
  }
  return !args.app.empty() && !args.crawler.empty() &&
         !args.checkpoint_dir.empty() && !args.out_path.empty() &&
         args.budget_ms > 0;
}

RunConfig config_from_worker_args(const WorkerArgs& args, bool& ok) {
  RunConfig config;
  ok = true;
  config.seed = args.seed;
  config.budget = static_cast<support::VirtualMillis>(args.budget_ms);
  if (args.sample_ms > 0) {
    config.sample_interval =
        static_cast<support::VirtualMillis>(args.sample_ms);
  }
  if (args.think_ms > 0) {
    config.think_time = static_cast<support::VirtualMillis>(args.think_ms);
  }
  config.fill_strategy = static_cast<core::FormFillStrategy>(args.fill);
  if (!args.fault_spec.empty()) {
    const auto fault = httpsim::FaultProfile::parse(args.fault_spec);
    if (!fault.has_value()) {
      ok = false;
      return config;
    }
    config.fault = *fault;
  }
  if (!args.drift_spec.empty()) {
    const auto drift = webapp::DriftProfile::parse(args.drift_spec);
    if (!drift.has_value()) {
      ok = false;
      return config;
    }
    config.drift = *drift;
  }
  config.checkpoint.dir = args.checkpoint_dir;
  if (args.ckpt_interval_ms > 0) {
    config.checkpoint.interval =
        static_cast<support::VirtualMillis>(args.ckpt_interval_ms);
  }
  config.checkpoint.every_steps =
      static_cast<std::size_t>(args.ckpt_every_steps);
  config.checkpoint.keep = static_cast<std::size_t>(args.ckpt_keep);
  config.checkpoint.resume = true;
  config.supervisor.heartbeat_ms = args.heartbeat_ms;
  config.supervisor.wall_limit_ms = args.wall_limit_ms;
  config.supervisor.max_steps = static_cast<std::size_t>(args.max_steps);
  return config;
}

// ------------------------------------------------------- failure bundles

std::string read_tail(sfs::Fs& disk, const std::string& path,
                      std::size_t max_bytes) {
  const auto contents = disk.read_file(path);
  if (!contents.has_value()) return "";
  if (contents->size() <= max_bytes) return *contents;
  return contents->substr(contents->size() - max_bytes);
}

// Newest valid checkpoint file name for `digest` in `dir` ("" when none).
// Validity matters: archiving a torn newest file would make the bundle
// unreplayable even though an older valid checkpoint exists.
std::string newest_valid_checkpoint(sfs::Fs& disk, const std::string& dir,
                                    const std::string& digest) {
  const std::string prefix = "ckpt-" + digest + "-";
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& name : disk.list_dir(dir)) {
    if (name.size() <= prefix.size() + 5 ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 5);
    char* end = nullptr;
    const std::uint64_t seq = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0') continue;
    candidates.emplace_back(seq, name);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [seq, name] : candidates) {
    try {
      read_checkpoint_file(dir + "/" + name, digest);
      return name;
    } catch (const SnapshotError&) {
      // fall through to the next-older file
    }
  }
  return "";
}

struct BundleContext {
  const apps::AppInfo* app_info = nullptr;
  CrawlerKind kind = CrawlerKind::kMak;
  RunConfig worker_config;        // the config the worker ran
  std::string worker_digest;      // run_digest(app, kind, worker_config, 1)
  std::string experiment_digest;  // the parent experiment's digest
  std::size_t rep = 0;
  std::size_t attempt = 0;
  WorkerOutcome outcome;
  std::string checkpoint_dir;  // the worker's scratch checkpoint dir
  std::string stderr_path;
};

// Archive one abnormal exit as a replayable bundle:
//   <failure_dir>/<experiment digest>-rep<k>-a<attempt>/
//     bundle.json   manifest (config, digests, failure class, stderr tail)
//     ckpt-*.json   newest valid worker checkpoint (when one exists)
//     stderr.log    the attempt's full stderr capture
void archive_failure_bundle(const OrchestratorConfig& orch,
                            const BundleContext& ctx) {
  static support::Counter& bundles = support::MetricsRegistry::global().counter(
      support::metric::kOrchestratorFailureBundles);
  auto& disk = sfs::default_fs();
  const std::string dir = orch.failure_dir + "/" + ctx.experiment_digest +
                          "-rep" + std::to_string(ctx.rep) + "-a" +
                          std::to_string(ctx.attempt);
  if (!disk.create_directories(dir)) {
    MAK_LOG_WARN << "orchestrator: cannot create failure bundle dir " << dir;
    return;
  }

  const std::string checkpoint =
      newest_valid_checkpoint(disk, ctx.checkpoint_dir, ctx.worker_digest);
  if (!checkpoint.empty()) {
    if (const auto contents =
            disk.read_file(ctx.checkpoint_dir + "/" + checkpoint)) {
      sfs::write_file_atomic_verified(disk, dir + "/" + checkpoint, *contents);
    }
  }
  const std::string stderr_tail = read_tail(disk, ctx.stderr_path, 4096);
  if (!stderr_tail.empty()) {
    sfs::write_file_atomic_verified(disk, dir + "/stderr.log", stderr_tail);
  }

  const RunConfig& config = ctx.worker_config;
  support::json::Object manifest;
  manifest.emplace("magic", std::string(kBundleMagic));
  manifest.emplace("format", static_cast<double>(kBundleFormat));
  manifest.emplace("digest", ctx.worker_digest);
  manifest.emplace("experiment_digest", ctx.experiment_digest);
  manifest.emplace("rep", static_cast<double>(ctx.rep));
  manifest.emplace("attempt", static_cast<double>(ctx.attempt));
  manifest.emplace("failure_class",
                   std::string(to_string(ctx.outcome.failure)));
  manifest.emplace("exit_code", static_cast<double>(ctx.outcome.exit_code));
  manifest.emplace("term_signal",
                   static_cast<double>(ctx.outcome.term_signal));
  manifest.emplace("timed_out", Value(ctx.outcome.timed_out));
  manifest.emplace("app", ctx.app_info->name);
  manifest.emplace("crawler", std::string(to_string(ctx.kind)));
  manifest.emplace("seed", snapshot::u64_to_hex(config.seed));
  manifest.emplace("budget_ms", static_cast<double>(config.budget));
  manifest.emplace("sample_ms", static_cast<double>(config.sample_interval));
  manifest.emplace("think_ms", static_cast<double>(config.think_time));
  manifest.emplace("fill",
                   static_cast<double>(static_cast<int>(config.fill_strategy)));
  manifest.emplace("fault", config.fault.describe());
  manifest.emplace("drift", config.drift.describe());
  manifest.emplace("ckpt_interval_ms",
                   static_cast<double>(config.checkpoint.interval));
  manifest.emplace("ckpt_every_steps",
                   static_cast<double>(config.checkpoint.every_steps));
  manifest.emplace("ckpt_keep", static_cast<double>(config.checkpoint.keep));
  manifest.emplace("max_steps",
                   static_cast<double>(config.supervisor.max_steps));
  manifest.emplace("checkpoint", checkpoint);
  manifest.emplace("stderr_tail", stderr_tail);
  if (!sfs::write_file_atomic_verified(
          disk, dir + "/bundle.json",
          support::json::dump(Value(std::move(manifest))) + "\n")) {
    MAK_LOG_WARN << "orchestrator: cannot write failure bundle manifest in "
                 << dir;
    return;
  }
  bundles.add();
  MAK_LOG_WARN << "orchestrator: archived failure bundle " << dir << " ("
               << to_string(ctx.outcome.failure) << ")";
}

}  // namespace

// ------------------------------------------------------------ worker mode

bool is_worker_invocation(int argc, char** argv) {
  return argc >= 2 && std::strcmp(argv[1], "--worker") == 0;
}

namespace {

int worker_run(int argc, char** argv) {
  WorkerArgs args;
  if (!parse_worker_args(argc, argv, args)) {
    std::fprintf(stderr, "worker: bad invocation\n");
    return kExitTransient;
  }
  const auto info = find_app(args.app);
  const auto kind = find_crawler(args.crawler);
  if (!info.has_value() || !kind.has_value()) {
    std::fprintf(stderr, "worker: unknown app or crawler\n");
    return kExitTransient;
  }
  bool ok = true;
  RunConfig config = config_from_worker_args(args, ok);
  if (!ok) {
    std::fprintf(stderr, "worker: unparsable fault or drift spec\n");
    return kExitTransient;
  }
  if (args.kill_at_step > 0) {
    // Chaos hook: die the way an external `kill -9` (or the OOM killer)
    // would — no cleanup, no final checkpoint.
    const std::size_t kill_at = static_cast<std::size_t>(args.kill_at_step);
    config.step_hook = [kill_at](std::size_t step) {
      if (step == kill_at) ::kill(::getpid(), SIGKILL);
    };
  }

  const RunResult result = run_resumable(*info, *kind, config);
  const std::string digest = run_digest(*info, *kind, config, 1);
  if (!sfs::write_file_atomic_verified(
          sfs::default_fs(), args.out_path,
          encode_worker_result(result, digest, args.rep))) {
    std::fprintf(stderr, "worker: cannot write result file %s\n",
                 args.out_path.c_str());
    return kExitTransient;
  }
  return kExitOk;
}

}  // namespace

int worker_main(int argc, char** argv) {
  try {
    return worker_run(argc, argv);
  } catch (const std::bad_alloc&) {
    // RLIMIT_AS surfaces as bad_alloc; report it as the OOM it is.
    return kExitOom;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "worker: %s\n", error.what());
    return kExitTransient;
  }
}

// ------------------------------------------------------------ parent side

OrchestratorConfig orchestrator_from_env() {
  // Validated parsing (support/env.h): a daemon-grade config surface must
  // fail fast on a malformed knob instead of silently running defaults.
  // Zero means "disabled" for the limit knobs, so their ranges start at 0.
  namespace env = support::env;
  OrchestratorConfig orch;
  orch.workers = env::require_count("MAK_WORKERS", 2, 4096);
  orch.max_attempts = env::require_count("MAK_ORCH_ATTEMPTS", 3, 100);
  orch.backoff_base_ms = static_cast<long>(
      env::require_int("MAK_ORCH_BACKOFF_MS", 200, 0, 3600000));
  orch.limits.wall_timeout_ms =
      static_cast<long>(env::require_int("MAK_ORCH_TIMEOUT_SEC", 0, 0, 86400)) *
      1000;
  orch.limits.cpu_seconds =
      static_cast<long>(env::require_int("MAK_ORCH_CPU_SEC", 0, 0, 86400));
  orch.limits.address_space_mb = static_cast<long>(
      env::require_int("MAK_ORCH_AS_MB", 0, 0, 1048576));
  if (const char* dir = std::getenv("MAK_ORCH_DIR");
      dir != nullptr && *dir != '\0') {
    orch.scratch_dir = dir;
  }
  if (const char* dir = std::getenv("MAK_FAILURE_DIR");
      dir != nullptr && *dir != '\0') {
    orch.failure_dir = dir;
  }
  if (const char* spec = std::getenv("MAK_ORCH_CHAOS_KILL");
      spec != nullptr && *spec != '\0') {
    // "rep=K,step=N"
    std::size_t rep = 0, step = 0;
    bool have_rep = false, have_step = false;
    for (std::string_view token : support::split(spec, ',')) {
      const std::string item(support::trim(token));
      const auto eq = item.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = item.substr(0, eq);
      const auto value = std::strtoull(item.c_str() + eq + 1, nullptr, 10);
      if (key == "rep") {
        rep = static_cast<std::size_t>(value);
        have_rep = true;
      } else if (key == "step") {
        step = static_cast<std::size_t>(value);
        have_step = true;
      }
    }
    if (have_rep && have_step && step > 0) {
      orch.chaos_kill = {rep, step};
    } else {
      MAK_LOG_WARN << "orchestrator: ignoring unparsable MAK_ORCH_CHAOS_KILL: "
                   << spec;
    }
  }
  return orch;
}

namespace {

// Per-repetition scheduling state for the retry loop.
struct RepState {
  std::size_t attempts = 0;
  bool done = false;
  bool launched = false;  // currently running
  FailureClass last_failure = FailureClass::kNone;
  Clock::time_point eligible = Clock::time_point::min();
  std::optional<RunResult> result;
};

std::vector<std::string> worker_argv(const apps::AppInfo& app_info,
                                     CrawlerKind kind,
                                     const RunConfig& worker_config,
                                     std::size_t rep,
                                     const std::string& out_path,
                                     std::size_t kill_at_step) {
  std::vector<std::string> args;
  args.emplace_back("--worker");
  const auto add = [&args](const char* key, std::string value) {
    args.emplace_back(key);
    args.push_back(std::move(value));
  };
  add("--app", app_info.name);
  add("--crawler", std::string(to_string(kind)));
  add("--rep", std::to_string(rep));
  add("--seed", snapshot::u64_to_hex(worker_config.seed));
  add("--budget-ms", std::to_string(worker_config.budget));
  add("--sample-ms", std::to_string(worker_config.sample_interval));
  add("--think-ms", std::to_string(worker_config.think_time));
  add("--fill",
      std::to_string(static_cast<int>(worker_config.fill_strategy)));
  const std::string fault = worker_config.fault.describe();
  if (!fault.empty()) add("--fault", fault);
  // describe() canonically returns "off" for a disabled profile; only an
  // active one needs to travel to the worker.
  if (worker_config.drift.enabled()) {
    add("--drift", worker_config.drift.describe());
  }
  add("--ckpt-dir", worker_config.checkpoint.dir);
  add("--ckpt-interval-ms", std::to_string(worker_config.checkpoint.interval));
  add("--ckpt-every-steps",
      std::to_string(worker_config.checkpoint.every_steps));
  add("--ckpt-keep", std::to_string(worker_config.checkpoint.keep));
  if (worker_config.supervisor.heartbeat_ms > 0) {
    add("--heartbeat-ms",
        std::to_string(worker_config.supervisor.heartbeat_ms));
  }
  if (worker_config.supervisor.wall_limit_ms > 0) {
    add("--wall-limit-ms",
        std::to_string(worker_config.supervisor.wall_limit_ms));
  }
  if (worker_config.supervisor.max_steps > 0) {
    add("--max-steps", std::to_string(worker_config.supervisor.max_steps));
  }
  add("--out", out_path);
  if (kill_at_step > 0) add("--kill-at-step", std::to_string(kill_at_step));
  return args;
}

RunResult failed_placeholder(const apps::AppInfo& app_info, CrawlerKind kind,
                             const RepState& state) {
  RunResult placeholder;
  placeholder.app = app_info.name;
  placeholder.crawler = std::string(to_string(kind));
  placeholder.platform = app_info.platform;
  placeholder.failed = true;
  placeholder.failure_class = std::string(to_string(state.last_failure));
  placeholder.attempts = state.attempts;
  return placeholder;
}

}  // namespace

std::vector<RunResult> run_orchestrated(const apps::AppInfo& app_info,
                                        CrawlerKind kind,
                                        const RunConfig& config,
                                        std::size_t repetitions,
                                        const OrchestratorConfig& orch) {
  if (repetitions == 0) return {};
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& failures =
      registry.counter(support::metric::kProcpoolFailures);
  static support::Counter& retries =
      registry.counter(support::metric::kProcpoolRetries);
  static support::Counter& failed_reps =
      registry.counter(support::metric::kOrchestratorFailedRepetitions);

  auto& disk = sfs::default_fs();
  const std::string digest = run_digest(app_info, kind, config, repetitions);
  const std::size_t capacity = std::max<std::size_t>(orch.workers, 1);
  const std::size_t max_attempts = std::max<std::size_t>(orch.max_attempts, 1);

  std::vector<RepState> reps(repetitions);
  std::vector<RunConfig> configs;
  std::vector<std::string> out_paths;
  std::vector<std::string> digests;
  configs.reserve(repetitions);
  out_paths.reserve(repetitions);
  digests.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const std::string scratch = rep_scratch_dir(orch, digest, rep);
    disk.create_directories(scratch);
    configs.push_back(make_worker_config(config, rep, scratch));
    out_paths.push_back(scratch + "/result.json");
    digests.push_back(run_digest(app_info, kind, configs.back(), 1));
  }

  ProcPool pool("/proc/self/exe");
  std::vector<std::size_t> slot_to_rep;
  std::size_t done = 0;

  const auto backoff = [&orch](std::size_t attempt) {
    long delay = orch.backoff_base_ms;
    for (std::size_t i = 1; i < attempt && delay < orch.backoff_cap_ms; ++i) {
      delay *= 2;
    }
    return std::chrono::milliseconds(
        std::min(std::max(delay, 0L), orch.backoff_cap_ms));
  };

  const auto launch = [&](std::size_t rep) {
    RepState& state = reps[rep];
    ++state.attempts;
    // The chaos kill only arms the first attempt: the retry must recover.
    const std::size_t kill_at_step =
        orch.chaos_kill.has_value() && orch.chaos_kill->first == rep &&
                state.attempts == 1
            ? orch.chaos_kill->second
            : 0;
    WorkerSpec spec;
    spec.args = worker_argv(app_info, kind, configs[rep], rep, out_paths[rep],
                            kill_at_step);
    spec.stderr_path = rep_scratch_dir(orch, digest, rep) + "/stderr-a" +
                       std::to_string(state.attempts) + ".log";
    const int slot = pool.spawn(spec, orch.limits);
    if (slot < 0) {
      // fork failure: same retry path as a worker that died instantly
      --state.attempts;
      state.eligible = Clock::now() + std::chrono::milliseconds(50);
      return;
    }
    state.launched = true;
    if (static_cast<std::size_t>(slot) >= slot_to_rep.size()) {
      slot_to_rep.resize(static_cast<std::size_t>(slot) + 1);
    }
    slot_to_rep[static_cast<std::size_t>(slot)] = rep;
  };

  while (done < repetitions) {
    // Launch every eligible repetition while capacity lasts.
    bool pending_backoff = false;
    for (std::size_t rep = 0;
         rep < repetitions && pool.running() < capacity; ++rep) {
      RepState& state = reps[rep];
      if (state.done || state.launched) continue;
      if (Clock::now() < state.eligible) {
        pending_backoff = true;
        continue;
      }
      launch(rep);
    }

    // Block for an exit only when no launch can become possible first.
    const bool can_block = !pending_backoff || pool.running() >= capacity;
    const auto exits = pool.poll(pool.running() > 0 && can_block);
    if (exits.empty() && pool.running() == 0) {
      // Everything alive has been reaped and nothing was launchable: only
      // backoff timers remain. Sleep a tick.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    for (const auto& exit : exits) {
      const std::size_t rep = slot_to_rep[static_cast<std::size_t>(exit.slot)];
      RepState& state = reps[rep];
      state.launched = false;

      FailureClass failure = exit.outcome.failure;
      if (failure == FailureClass::kNone) {
        auto result = decode_worker_result(out_paths[rep], digests[rep], rep);
        if (result.has_value()) {
          state.done = true;
          state.result = std::move(result);
          ++done;
          continue;
        }
        // Clean exit but no valid result file: disk fault ate it. Retry.
        failure = FailureClass::kTransient;
      }

      failures.add();
      state.last_failure = failure;
      BundleContext ctx;
      ctx.app_info = &app_info;
      ctx.kind = kind;
      ctx.worker_config = configs[rep];
      ctx.worker_digest = digests[rep];
      ctx.experiment_digest = digest;
      ctx.rep = rep;
      ctx.attempt = state.attempts;
      ctx.outcome = exit.outcome;
      ctx.outcome.failure = failure;
      ctx.checkpoint_dir = configs[rep].checkpoint.dir;
      ctx.stderr_path = rep_scratch_dir(orch, digest, rep) + "/stderr-a" +
                        std::to_string(state.attempts) + ".log";
      archive_failure_bundle(orch, ctx);

      if (state.attempts >= max_attempts) {
        state.done = true;
        ++done;
        failed_reps.add();
        MAK_LOG_WARN << "orchestrator: repetition " << rep << " failed ("
                     << to_string(failure) << ") after " << state.attempts
                     << " attempts";
        continue;
      }
      retries.add();
      state.eligible = Clock::now() + backoff(state.attempts);
      MAK_LOG_WARN << "orchestrator: repetition " << rep << " "
                   << to_string(failure) << " on attempt " << state.attempts
                   << ", retrying (resume from its checkpoint)";
    }
  }

  std::vector<RunResult> results;
  results.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    results.push_back(reps[rep].result.has_value()
                          ? std::move(*reps[rep].result)
                          : failed_placeholder(app_info, kind, reps[rep]));
  }
  return results;
}

// ----------------------------------------------------------------- replay

int replay_bundle(const std::string& bundle_dir) {
  auto& disk = sfs::default_fs();
  const std::string manifest_path = bundle_dir + "/bundle.json";
  const auto contents = disk.read_file(manifest_path);
  if (!contents.has_value()) {
    std::fprintf(stderr, "replay: cannot read %s\n", manifest_path.c_str());
    return 1;
  }
  try {
    const auto manifest = support::json::parse(*contents);
    if (!manifest.has_value() || !manifest->is_object() ||
        snapshot::require_string(*manifest, "magic") != kBundleMagic ||
        snapshot::require_int(*manifest, "format") != kBundleFormat) {
      std::fprintf(stderr, "replay: %s is not a failure bundle manifest\n",
                   manifest_path.c_str());
      return 1;
    }
    const std::string& app_name = snapshot::require_string(*manifest, "app");
    const std::string& crawler_name =
        snapshot::require_string(*manifest, "crawler");
    const auto info = find_app(app_name);
    const auto kind = find_crawler(crawler_name);
    if (!info.has_value() || !kind.has_value()) {
      std::fprintf(stderr, "replay: unknown app or crawler in manifest\n");
      return 1;
    }

    RunConfig config;
    config.seed = snapshot::require_u64_hex(*manifest, "seed");
    config.budget = static_cast<support::VirtualMillis>(
        snapshot::require_index(*manifest, "budget_ms"));
    config.sample_interval = static_cast<support::VirtualMillis>(
        snapshot::require_index(*manifest, "sample_ms"));
    config.think_time = static_cast<support::VirtualMillis>(
        snapshot::require_index(*manifest, "think_ms"));
    config.fill_strategy = static_cast<core::FormFillStrategy>(
        snapshot::require_int(*manifest, "fill"));
    const std::string& fault_spec =
        snapshot::require_string(*manifest, "fault");
    if (!fault_spec.empty()) {
      const auto fault = httpsim::FaultProfile::parse(fault_spec);
      if (!fault.has_value()) {
        std::fprintf(stderr, "replay: unparsable fault spec in manifest\n");
        return 1;
      }
      config.fault = *fault;
    }
    // Optional: bundles written before the drift layer existed lack the key.
    if (const Value* drift_value = manifest->find("drift");
        drift_value != nullptr && drift_value->is_string()) {
      const auto drift = webapp::DriftProfile::parse(drift_value->as_string());
      if (!drift.has_value()) {
        std::fprintf(stderr, "replay: unparsable drift spec in manifest\n");
        return 1;
      }
      config.drift = *drift;
    }
    config.checkpoint.dir = bundle_dir + "/replay";
    config.checkpoint.interval = static_cast<support::VirtualMillis>(
        snapshot::require_index(*manifest, "ckpt_interval_ms"));
    config.checkpoint.every_steps = static_cast<std::size_t>(
        snapshot::require_index(*manifest, "ckpt_every_steps"));
    config.checkpoint.keep = static_cast<std::size_t>(
        snapshot::require_index(*manifest, "ckpt_keep"));
    config.checkpoint.resume = true;
    config.supervisor.max_steps = static_cast<std::size_t>(
        snapshot::require_index(*manifest, "max_steps"));

    const std::string& recorded_digest =
        snapshot::require_string(*manifest, "digest");
    const std::string recomputed = run_digest(*info, *kind, config, 1);
    if (recomputed != recorded_digest) {
      std::fprintf(stderr,
                   "replay: digest mismatch (manifest %s, recomputed %s) — "
                   "bundle and binary disagree about the configuration\n",
                   recorded_digest.c_str(), recomputed.c_str());
      return 1;
    }

    // Stage the bundled checkpoint into the replay directory; resume picks
    // it up exactly as the crashed worker's retry would have.
    disk.create_directories(config.checkpoint.dir);
    const std::string& checkpoint =
        snapshot::require_string(*manifest, "checkpoint");
    if (!checkpoint.empty() &&
        !disk.exists(config.checkpoint.dir + "/" + checkpoint)) {
      const auto bundled = disk.read_file(bundle_dir + "/" + checkpoint);
      if (!bundled.has_value()) {
        std::fprintf(stderr, "replay: bundle names checkpoint %s but the "
                             "file is missing\n",
                     checkpoint.c_str());
        return 1;
      }
      sfs::write_file_atomic_verified(
          disk, config.checkpoint.dir + "/" + checkpoint, *bundled);
    }

    std::printf("replay: bundle %s\n", bundle_dir.c_str());
    std::printf(
        "replay: app=%s crawler=%s rep=%llu attempt=%llu failure=%s\n",
        app_name.c_str(), crawler_name.c_str(),
        static_cast<unsigned long long>(
            snapshot::require_index(*manifest, "rep")),
        static_cast<unsigned long long>(
            snapshot::require_index(*manifest, "attempt")),
        snapshot::require_string(*manifest, "failure_class").c_str());
    const RunResult result = run_resumable(*info, *kind, config);
    std::printf("replay: digest=%s\n", recomputed.c_str());
    std::printf("replay: steps=%zu covered_lines=%zu interactions=%zu\n",
                result.steps, result.final_covered_lines,
                result.interactions);
    std::printf("replay: result=%s\n", run_to_json(result).c_str());
    return 0;
  } catch (const SnapshotError& error) {
    std::fprintf(stderr, "replay: corrupt manifest: %s\n", error.what());
    return 1;
  }
}

}  // namespace mak::harness
