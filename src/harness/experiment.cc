#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "baselines/qexplore.h"
#include "baselines/webexplor.h"
#include "core/browser.h"
#include "httpsim/network.h"
#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/rng.h"

namespace mak::harness {

std::string_view to_string(CrawlerKind kind) {
  switch (kind) {
    case CrawlerKind::kMak:
      return "MAK";
    case CrawlerKind::kWebExplor:
      return "WebExplor";
    case CrawlerKind::kQExplore:
      return "QExplore";
    case CrawlerKind::kBfs:
      return "BFS";
    case CrawlerKind::kDfs:
      return "DFS";
    case CrawlerKind::kRandom:
      return "Random";
    case CrawlerKind::kMakRawReward:
      return "MAK-raw-reward";
    case CrawlerKind::kMakCuriosityReward:
      return "MAK-curiosity";
    case CrawlerKind::kMakFlatDeque:
      return "MAK-flat-deque";
    case CrawlerKind::kMakExp3Fixed:
      return "MAK-exp3-fixed";
    case CrawlerKind::kMakEpsilonGreedy:
      return "MAK-eps-greedy";
    case CrawlerKind::kMakUcb1:
      return "MAK-ucb1";
    case CrawlerKind::kMakDomNovelty:
      return "MAK-dom-novelty";
    case CrawlerKind::kMakThompson:
      return "MAK-thompson";
  }
  return "?";
}

std::unique_ptr<core::Crawler> make_crawler(CrawlerKind kind,
                                            support::Rng rng) {
  using core::MakConfig;
  switch (kind) {
    case CrawlerKind::kMak:
      return core::make_mak(std::move(rng));
    case CrawlerKind::kWebExplor:
      return std::make_unique<baselines::WebExplorCrawler>(std::move(rng));
    case CrawlerKind::kQExplore:
      return std::make_unique<baselines::QExploreCrawler>(std::move(rng));
    case CrawlerKind::kBfs:
      return core::make_static_bfs(std::move(rng));
    case CrawlerKind::kDfs:
      return core::make_static_dfs(std::move(rng));
    case CrawlerKind::kRandom:
      return core::make_static_random(std::move(rng));
    case CrawlerKind::kMakRawReward: {
      MakConfig config;
      config.reward_mode = MakConfig::RewardMode::kRawLinks;
      config.name_override = "MAK-raw-reward";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakCuriosityReward: {
      MakConfig config;
      config.reward_mode = MakConfig::RewardMode::kCuriosity;
      config.name_override = "MAK-curiosity";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakFlatDeque: {
      MakConfig config;
      config.leveled_deque = false;
      config.name_override = "MAK-flat-deque";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakExp3Fixed: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kExp3Fixed;
      config.name_override = "MAK-exp3-fixed";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakEpsilonGreedy: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kEpsilonGreedy;
      config.name_override = "MAK-eps-greedy";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakUcb1: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kUcb1;
      config.name_override = "MAK-ucb1";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakDomNovelty: {
      MakConfig config;
      config.reward_mode = MakConfig::RewardMode::kDomNovelty;
      config.name_override = "MAK-dom-novelty";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakThompson: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kThompson;
      config.name_override = "MAK-thompson";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
  }
  throw std::logic_error("unknown crawler kind");
}

RunResult run_once(const apps::AppInfo& app_info, CrawlerKind kind,
                   const RunConfig& config) {
  namespace metric = support::metric;
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& runs_counter = registry.counter(metric::kHarnessRuns);
  static support::Histogram& run_wall_us = registry.histogram(
      metric::kHarnessRunWallUs, support::duration_bounds_us());
  // Runs last whole virtual minutes, so the default latency buckets would
  // lump them all into overflow; bucket by minutes up to an hour instead.
  static support::Histogram& run_virtual_ms = registry.histogram(
      metric::kHarnessRunVirtualMs,
      {60000, 120000, 300000, 600000, 900000, 1200000, 1800000, 2700000,
       3600000});
  runs_counter.add();

  // Fresh application instance per run: sessions, user content and coverage
  // all start clean, like restarting the container between runs.
  auto app = app_info.factory();

  // The run owns its clock (see the ownership rule in support/clock.h); the
  // span below is destroyed before the clock, charging the whole run's wall
  // and virtual cost.
  support::SimClock clock;
  const support::MetricSpan run_span(run_wall_us, &run_virtual_ms, &clock);
  support::Deadline deadline(clock, config.budget);
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);

  support::Rng master(config.seed);
  core::Browser browser(network, app->seed_url(), master.fork(),
                        config.fill_strategy);
  auto crawler = make_crawler(kind, master.fork());

  // Fault injection: a per-run injector with its own RNG stream (forked
  // after the browser/crawler streams, so a disabled profile leaves those
  // streams — and therefore the whole run — bit-identical to a build
  // without fault injection).
  std::optional<httpsim::FaultInjector> injector;
  if (config.fault.enabled()) {
    injector.emplace(config.fault, master.fork().next(), clock);
    network.set_fault_injector(&*injector);
  }
  if (config.fault.retry.active()) {
    browser.set_retry_policy(config.fault.retry);
  }

  RunResult result;
  result.app = app_info.name;
  result.crawler = std::string(crawler->name());
  result.platform = app_info.platform;
  result.total_lines = app->code_model().total_lines();

  crawler->start(browser);
  if (config.trace != nullptr) {
    core::TraceEvent event;
    event.kind = core::TraceEvent::Kind::kSeedLoad;
    event.time = clock.now();
    event.url = browser.page().url.to_string();
    event.status = browser.page().status;
    event.new_links = crawler->links_discovered();
    event.covered_lines = app->tracker().covered_lines();
    config.trace->record(std::move(event));
  }

  support::VirtualMillis next_sample = 0;
  std::size_t step_index = 0;
  while (!deadline.expired()) {
    // Xdebug-style any-time sampling: record coverage at interval
    // boundaries that have passed.
    while (clock.now() >= next_sample) {
      result.series.record(next_sample, app->tracker().covered_lines());
      next_sample += config.sample_interval;
    }
    clock.advance(config.think_time);
    const std::size_t interactions_before = browser.interactions();
    const std::size_t links_before = crawler->links_discovered();
    const std::size_t retries_before = browser.retries();
    crawler->step(browser);
    ++step_index;
    if (config.trace != nullptr) {
      core::TraceEvent event;
      event.kind = browser.interactions() > interactions_before
                       ? core::TraceEvent::Kind::kInteraction
                       : core::TraceEvent::Kind::kRecovery;
      event.time = clock.now();
      event.step = step_index;
      event.action = crawler->last_action();
      event.url = browser.page().url.to_string();
      event.status = browser.page().status;
      event.new_links = crawler->links_discovered() - links_before;
      event.covered_lines = app->tracker().covered_lines();
      event.retries = browser.retries() - retries_before;
      config.trace->record(std::move(event));
    }
  }
  result.series.record(config.budget, app->tracker().covered_lines());

  result.final_covered_lines = app->tracker().covered_lines();
  result.interactions = browser.interactions();
  result.navigations = browser.navigations();
  result.links_discovered = crawler->links_discovered();
  result.covered = app->tracker().lines();
  result.fault_active = injector.has_value() || config.fault.retry.active();
  result.retries = browser.retries();
  result.transport_failures = browser.transport_failures();
  result.timeouts = browser.timeouts();
  result.backoff_ms = browser.backoff_ms();
  if (injector.has_value()) {
    const auto& counters = injector->counters();
    result.injected_errors = counters.injected_errors;
    result.injected_drops = counters.injected_drops;
    result.latency_spikes = counters.latency_spikes;
    result.degraded_requests = counters.window_requests;
  }
  MAK_LOG_INFO << app_info.name << " / " << result.crawler << ": covered "
               << result.final_covered_lines << "/" << result.total_lines
               << " lines in " << result.interactions << " interactions";
  return result;
}

namespace {

std::size_t worker_count(std::size_t repetitions) {
  const char* env = std::getenv("MAK_THREADS");
  std::size_t workers = 0;
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) workers = static_cast<std::size_t>(parsed);
  }
  if (workers == 0) {
    workers = std::min<std::size_t>(std::thread::hardware_concurrency(), 8);
    if (workers == 0) workers = 1;
  }
  return std::min(workers, repetitions);
}

}  // namespace

std::vector<RunResult> run_repeated(const apps::AppInfo& app_info,
                                    CrawlerKind kind, const RunConfig& config,
                                    std::size_t repetitions) {
  std::vector<RunResult> results(repetitions);
  if (repetitions == 0) return results;

  auto seeded_config = [&](std::size_t rep) {
    RunConfig rep_config = config;
    rep_config.seed = support::mix64(config.seed ^ (0xabcd0000 + rep));
    return rep_config;
  };

  const std::size_t workers = worker_count(repetitions);
  if (workers <= 1 || config.trace != nullptr) {
    // Serial (also whenever a shared trace sink is attached).
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      results[rep] = run_once(app_info, kind, seeded_config(rep));
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t rep = next.fetch_add(1);
        if (rep >= repetitions) return;
        RunConfig rep_config = seeded_config(rep);
        rep_config.trace = nullptr;  // no shared sink across threads
        results[rep] = run_once(app_info, kind, rep_config);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  return results;
}

namespace {
std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}
}  // namespace

Protocol protocol_from_env() {
  Protocol p;
  p.repetitions = env_or("MAK_REPS", 10);
  p.run.budget = static_cast<support::VirtualMillis>(
                     env_or("MAK_BUDGET_MINUTES", 30)) *
                 support::kMillisPerMinute;
  p.run.sample_interval = static_cast<support::VirtualMillis>(
                              env_or("MAK_SAMPLE_SECONDS", 30)) *
                          support::kMillisPerSecond;
  if (const auto fault = httpsim::FaultProfile::from_env()) {
    p.run.fault = *fault;
  } else if (const char* spec = std::getenv("MAK_FAULT_PROFILE");
             spec != nullptr && *spec != '\0') {
    MAK_LOG_WARN << "ignoring unparsable MAK_FAULT_PROFILE: " << spec;
  }
  return p;
}

}  // namespace mak::harness
