#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "baselines/qexplore.h"
#include "baselines/webexplor.h"
#include "core/browser.h"
#include "harness/checkpoint.h"
#include "httpsim/network.h"
#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/snapshot.h"

namespace mak::harness {

std::string_view to_string(CrawlerKind kind) {
  switch (kind) {
    case CrawlerKind::kMak:
      return "MAK";
    case CrawlerKind::kWebExplor:
      return "WebExplor";
    case CrawlerKind::kQExplore:
      return "QExplore";
    case CrawlerKind::kBfs:
      return "BFS";
    case CrawlerKind::kDfs:
      return "DFS";
    case CrawlerKind::kRandom:
      return "Random";
    case CrawlerKind::kMakRawReward:
      return "MAK-raw-reward";
    case CrawlerKind::kMakCuriosityReward:
      return "MAK-curiosity";
    case CrawlerKind::kMakFlatDeque:
      return "MAK-flat-deque";
    case CrawlerKind::kMakExp3Fixed:
      return "MAK-exp3-fixed";
    case CrawlerKind::kMakEpsilonGreedy:
      return "MAK-eps-greedy";
    case CrawlerKind::kMakUcb1:
      return "MAK-ucb1";
    case CrawlerKind::kMakDomNovelty:
      return "MAK-dom-novelty";
    case CrawlerKind::kMakThompson:
      return "MAK-thompson";
    case CrawlerKind::kMakRottingExp3:
      return "MAK-exp3-rotting";
    case CrawlerKind::kMakDsee:
      return "MAK-dsee";
  }
  return "?";
}

const std::vector<CrawlerKind>& all_crawler_kinds() {
  static const std::vector<CrawlerKind> kinds = {
      CrawlerKind::kMak,
      CrawlerKind::kWebExplor,
      CrawlerKind::kQExplore,
      CrawlerKind::kBfs,
      CrawlerKind::kDfs,
      CrawlerKind::kRandom,
      CrawlerKind::kMakRawReward,
      CrawlerKind::kMakCuriosityReward,
      CrawlerKind::kMakFlatDeque,
      CrawlerKind::kMakExp3Fixed,
      CrawlerKind::kMakEpsilonGreedy,
      CrawlerKind::kMakUcb1,
      CrawlerKind::kMakDomNovelty,
      CrawlerKind::kMakThompson,
      CrawlerKind::kMakRottingExp3,
      CrawlerKind::kMakDsee,
  };
  return kinds;
}

std::optional<CrawlerKind> crawler_kind_from_name(std::string_view name) {
  for (const CrawlerKind kind : all_crawler_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

std::optional<CrawlerKind> crawler_for_policy(std::string_view policy) {
  // Keyed by the canonical rl::policy_catalog() names; the binding is
  // cross-checked against the catalog in tests.
  if (policy == "exp3.1") return CrawlerKind::kMak;
  if (policy == "exp3") return CrawlerKind::kMakExp3Fixed;
  if (policy == "eps-greedy") return CrawlerKind::kMakEpsilonGreedy;
  if (policy == "ucb1") return CrawlerKind::kMakUcb1;
  if (policy == "thompson") return CrawlerKind::kMakThompson;
  if (policy == "exp3-rotting") return CrawlerKind::kMakRottingExp3;
  if (policy == "dsee") return CrawlerKind::kMakDsee;
  return std::nullopt;
}

std::unique_ptr<core::Crawler> make_crawler(CrawlerKind kind,
                                            support::Rng rng) {
  using core::MakConfig;
  switch (kind) {
    case CrawlerKind::kMak:
      return core::make_mak(std::move(rng));
    case CrawlerKind::kWebExplor:
      return std::make_unique<baselines::WebExplorCrawler>(std::move(rng));
    case CrawlerKind::kQExplore:
      return std::make_unique<baselines::QExploreCrawler>(std::move(rng));
    case CrawlerKind::kBfs:
      return core::make_static_bfs(std::move(rng));
    case CrawlerKind::kDfs:
      return core::make_static_dfs(std::move(rng));
    case CrawlerKind::kRandom:
      return core::make_static_random(std::move(rng));
    case CrawlerKind::kMakRawReward: {
      MakConfig config;
      config.reward_mode = MakConfig::RewardMode::kRawLinks;
      config.name_override = "MAK-raw-reward";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakCuriosityReward: {
      MakConfig config;
      config.reward_mode = MakConfig::RewardMode::kCuriosity;
      config.name_override = "MAK-curiosity";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakFlatDeque: {
      MakConfig config;
      config.leveled_deque = false;
      config.name_override = "MAK-flat-deque";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakExp3Fixed: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kExp3Fixed;
      config.name_override = "MAK-exp3-fixed";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakEpsilonGreedy: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kEpsilonGreedy;
      config.name_override = "MAK-eps-greedy";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakUcb1: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kUcb1;
      config.name_override = "MAK-ucb1";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakDomNovelty: {
      MakConfig config;
      config.reward_mode = MakConfig::RewardMode::kDomNovelty;
      config.name_override = "MAK-dom-novelty";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakThompson: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kThompson;
      config.name_override = "MAK-thompson";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakRottingExp3: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kRottingExp3;
      config.name_override = "MAK-exp3-rotting";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
    case CrawlerKind::kMakDsee: {
      MakConfig config;
      config.policy = MakConfig::PolicyKind::kDsee;
      config.name_override = "MAK-dsee";
      return std::make_unique<core::MakCrawler>(std::move(rng), config);
    }
  }
  throw std::logic_error("unknown crawler kind");
}

namespace {

// Checkpoint wiring for one run inside a (possibly repeated) experiment.
// Null manager = no checkpointing; `restore_run` carries the mid-run state
// to resume from (already digest- and CRC-validated by the manager).
struct CheckpointContext {
  CheckpointManager* manager = nullptr;
  std::size_t repetitions = 1;
  std::size_t rep_index = 0;
  const std::vector<RunResult>* completed = nullptr;
  const support::json::Value* restore_run = nullptr;
};

constexpr std::string_view kRunStateId = "harness.run";
constexpr int kRunStateVersion = 1;

// A failed checkpoint write (ENOSPC, torn-write detection, failed rename)
// costs at most recompute — restore-newest-valid falls back to the previous
// file — so it must never kill the run it's protecting.
void write_checkpoint_tolerant(CheckpointManager& manager,
                               const ExperimentCheckpoint& checkpoint) {
  static support::Counter& failures = support::MetricsRegistry::global().counter(
      support::metric::kCheckpointWriteFailures);
  try {
    manager.write(checkpoint);
  } catch (const support::SnapshotError& error) {
    failures.add();
    MAK_LOG_WARN << "checkpoint: write failed, continuing without it: "
                 << error.what();
  }
}

RunResult run_one(const apps::AppInfo& app_info, CrawlerKind kind,
                  const RunConfig& config, const CheckpointContext* ckpt) {
  namespace metric = support::metric;
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& runs_counter = registry.counter(metric::kHarnessRuns);
  static support::Histogram& run_wall_us = registry.histogram(
      metric::kHarnessRunWallUs, support::duration_bounds_us());
  // Runs last whole virtual minutes, so the default latency buckets would
  // lump them all into overflow; bucket by minutes up to an hour instead.
  static support::Histogram& run_virtual_ms = registry.histogram(
      metric::kHarnessRunVirtualMs,
      {60000, 120000, 300000, 600000, 900000, 1200000, 1800000, 2700000,
       3600000});
  runs_counter.add();

  // Fresh application instance per run: sessions, user content and coverage
  // all start clean, like restarting the container between runs.
  auto app = app_info.factory();

  // The run owns its clock (see the ownership rule in support/clock.h); the
  // span below is destroyed before the clock, charging the whole run's wall
  // and virtual cost.
  support::SimClock clock;
  const support::MetricSpan run_span(run_wall_us, &run_virtual_ms, &clock);
  support::Deadline deadline(clock, config.budget);
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);

  support::Rng master(config.seed);
  core::Browser browser(network, app->seed_url(), master.fork(),
                        config.fill_strategy);
  auto crawler = make_crawler(kind, master.fork());

  // Fault injection: a per-run injector with its own RNG stream (forked
  // after the browser/crawler streams, so a disabled profile leaves those
  // streams — and therefore the whole run — bit-identical to a build
  // without fault injection).
  std::optional<httpsim::FaultInjector> injector;
  if (config.fault.enabled()) {
    injector.emplace(config.fault, master.fork().next(), clock);
    network.set_fault_injector(&*injector);
  }
  if (config.fault.retry.active()) {
    browser.set_retry_policy(config.fault.retry);
  }

  // App-side drift: its own RNG stream, forked after the injector's, so a
  // disabled profile leaves every earlier stream — and therefore the whole
  // run — bit-identical to a build without the drift layer.
  std::optional<webapp::DriftEngine> drift;
  if (config.drift.enabled()) {
    drift.emplace(config.drift, master.fork().next(), clock);
    app->set_drift_engine(&*drift);
  }

  RunResult result;
  result.app = app_info.name;
  result.crawler = std::string(crawler->name());
  result.platform = app_info.platform;
  result.total_lines = app->code_model().total_lines();

  namespace snapshot = support::snapshot;
  support::VirtualMillis next_sample = 0;
  std::size_t step_index = 0;

  // Mid-run resume is only possible when the crawler can snapshot itself;
  // Q-learning baselines restart the repetition instead (bit-identical
  // anyway, because every repetition is a pure function of its seed).
  const support::json::Value* restore_run =
      ckpt != nullptr ? ckpt->restore_run : nullptr;
  if (restore_run != nullptr && crawler->snapshotable() == nullptr) {
    restore_run = nullptr;
  }

  if (restore_run == nullptr) {
    crawler->start(browser);
    if (config.trace != nullptr) {
      core::TraceEvent event;
      event.kind = core::TraceEvent::Kind::kSeedLoad;
      event.time = clock.now();
      event.url = browser.page().url.to_string();
      event.status = browser.page().status;
      event.new_links = crawler->links_discovered();
      event.covered_lines = app->tracker().covered_lines();
      config.trace->record(std::move(event));
    }
  } else {
    // Restore every mutable component. Construction above ran in the exact
    // order of a fresh run, so the RNG fork topology matches; load_state
    // then overwrites each stream with its checkpointed position.
    const support::json::Value& run_state = *restore_run;
    snapshot::check_header(run_state, kRunStateId, kRunStateVersion);
    clock.restore(static_cast<support::VirtualMillis>(
        snapshot::require_index(run_state, "clock_ms")));
    next_sample = static_cast<support::VirtualMillis>(
        snapshot::require_index(run_state, "next_sample"));
    step_index =
        static_cast<std::size_t>(snapshot::require_index(run_state, "step"));
    for (const auto& entry : snapshot::require_array(run_state, "series")) {
      if (!entry.is_array() || entry.as_array().size() != 2 ||
          !entry.as_array()[0].is_number() ||
          !entry.as_array()[1].is_number()) {
        throw support::SnapshotError("run state: malformed series point");
      }
      result.series.record(static_cast<support::VirtualMillis>(
                               entry.as_array()[0].as_number()),
                           static_cast<std::size_t>(
                               entry.as_array()[1].as_number()));
    }
    app->load_state(snapshot::require(run_state, "app"));
    browser.load_state(snapshot::require(run_state, "browser"));
    crawler->snapshotable()->load_state(snapshot::require(run_state, "crawler"));
    if (injector.has_value()) {
      injector->load_state(snapshot::require(run_state, "injector"));
    }
    if (drift.has_value()) {
      drift->load_state(snapshot::require(run_state, "drift"));
    }
    MAK_LOG_INFO << app_info.name << " / " << result.crawler
                 << ": resumed at step " << step_index << ", t="
                 << clock.now() << " ms";
  }

  // Periodic mid-run checkpoints on a virtual-time (and optional step)
  // cadence. Captured state is "top of loop": the next iteration after a
  // resume sees exactly what the uninterrupted run saw.
  CheckpointManager* manager =
      ckpt != nullptr && crawler->snapshotable() != nullptr ? ckpt->manager
                                                            : nullptr;
  support::VirtualMillis last_checkpoint = clock.now();
  const auto write_checkpoint = [&]() {
    auto run_state = snapshot::make_state(kRunStateId, kRunStateVersion);
    run_state.emplace("clock_ms", static_cast<double>(clock.now()));
    run_state.emplace("next_sample", static_cast<double>(next_sample));
    run_state.emplace("step", static_cast<double>(step_index));
    support::json::Array series;
    series.reserve(result.series.points().size());
    for (const auto& point : result.series.points()) {
      support::json::Array pair;
      pair.emplace_back(static_cast<double>(point.time));
      pair.emplace_back(static_cast<double>(point.covered_lines));
      series.emplace_back(std::move(pair));
    }
    run_state.emplace("series", support::json::Value(std::move(series)));
    run_state.emplace("app", app->save_state());
    run_state.emplace("browser", browser.save_state());
    run_state.emplace("crawler", crawler->snapshotable()->save_state());
    if (injector.has_value()) {
      run_state.emplace("injector", injector->save_state());
    }
    if (drift.has_value()) {
      run_state.emplace("drift", drift->save_state());
    }
    ExperimentCheckpoint out;
    out.repetitions = ckpt->repetitions;
    out.completed = *ckpt->completed;
    out.in_flight_rep = ckpt->rep_index;
    out.run = support::json::Value(std::move(run_state));
    write_checkpoint_tolerant(*manager, out);
    last_checkpoint = clock.now();
  };
  const auto checkpoint_due = [&]() {
    const CheckpointConfig& cc = manager->config();
    if (cc.every_steps > 0 && step_index % cc.every_steps == 0) return true;
    return cc.interval > 0 && clock.now() - last_checkpoint >= cc.interval;
  };

  std::optional<RunSupervisor> supervisor;
  if (config.supervisor.enabled()) supervisor.emplace(config.supervisor);

  while (!deadline.expired()) {
    if (supervisor.has_value()) {
      std::string reason = supervisor->should_abort(step_index);
      if (!reason.empty()) {
        result.aborted = true;
        result.abort_reason = std::move(reason);
        MAK_LOG_WARN << app_info.name << " / " << result.crawler
                     << ": aborted (" << result.abort_reason << ") after "
                     << step_index << " steps";
        break;
      }
    }
    // Xdebug-style any-time sampling: record coverage at interval
    // boundaries that have passed.
    while (clock.now() >= next_sample) {
      result.series.record(next_sample, app->tracker().covered_lines());
      next_sample += config.sample_interval;
    }
    clock.advance(config.think_time);
    const std::size_t interactions_before = browser.interactions();
    const std::size_t links_before = crawler->links_discovered();
    const std::size_t retries_before = browser.retries();
    crawler->step(browser);
    ++step_index;
    if (supervisor.has_value()) supervisor->heartbeat();
    if (config.trace != nullptr) {
      core::TraceEvent event;
      event.kind = browser.interactions() > interactions_before
                       ? core::TraceEvent::Kind::kInteraction
                       : core::TraceEvent::Kind::kRecovery;
      event.time = clock.now();
      event.step = step_index;
      event.action = crawler->last_action();
      event.url = browser.page().url.to_string();
      event.status = browser.page().status;
      event.new_links = crawler->links_discovered() - links_before;
      event.covered_lines = app->tracker().covered_lines();
      event.retries = browser.retries() - retries_before;
      config.trace->record(std::move(event));
    }
    if (config.step_hook) config.step_hook(step_index);
    if (manager != nullptr && checkpoint_due()) write_checkpoint();
    if (config.crash_at_step != 0 && step_index >= config.crash_at_step) {
      throw InjectedCrash();
    }
  }
  result.steps = step_index;
  if (result.aborted) {
    // Partial final sample at the cancellation instant (the budget-boundary
    // sample of a completed run would misrepresent an aborted one).
    result.series.record(clock.now(), app->tracker().covered_lines());
  } else {
    result.series.record(config.budget, app->tracker().covered_lines());
  }

  result.final_covered_lines = app->tracker().covered_lines();
  result.interactions = browser.interactions();
  result.navigations = browser.navigations();
  result.links_discovered = crawler->links_discovered();
  result.covered = app->tracker().lines();
  result.fault_active = injector.has_value() || config.fault.retry.active();
  result.retries = browser.retries();
  result.transport_failures = browser.transport_failures();
  result.timeouts = browser.timeouts();
  result.backoff_ms = browser.backoff_ms();
  if (injector.has_value()) {
    const auto& counters = injector->counters();
    result.injected_errors = counters.injected_errors;
    result.injected_drops = counters.injected_drops;
    result.latency_spikes = counters.latency_spikes;
    result.degraded_requests = counters.window_requests;
  }
  if (drift.has_value()) {
    const auto& counters = drift->counters();
    result.drift_active = true;
    result.drift_gone_requests = counters.gone_requests;
    result.drift_rewritten_links = counters.rewritten_links;
    result.drift_churned_links = counters.churned_links;
    result.drift_expired_sessions = counters.expired_sessions;
    result.drift_storm_requests = counters.storm_requests;
  }
  if (const rl::RegretAccountant* regret = crawler->regret_accountant();
      regret != nullptr) {
    result.regret_tracked = true;
    result.realized_gain = regret->realized_gain();
    result.best_arm_gain = regret->best_arm_gain();
    result.weak_regret = regret->weak_regret();
    result.cumulative_regret = regret->cumulative_regret();
    result.policy_updates = regret->updates();
  }
  MAK_LOG_INFO << app_info.name << " / " << result.crawler << ": covered "
               << result.final_covered_lines << "/" << result.total_lines
               << " lines in " << result.interactions << " interactions";
  return result;
}

}  // namespace

RunResult run_once(const apps::AppInfo& app_info, CrawlerKind kind,
                   const RunConfig& config) {
  return run_one(app_info, kind, config, nullptr);
}

std::uint64_t repetition_seed(const RunConfig& config, std::size_t rep) {
  return support::mix64(config.seed ^ (0xabcd0000 + rep));
}

namespace {

RunConfig seeded_config(const RunConfig& config, std::size_t rep) {
  RunConfig rep_config = config;
  rep_config.seed = repetition_seed(config, rep);
  return rep_config;
}

// Serial checkpointed execution: one checkpoint after every completed
// repetition (plus the mid-run cadence inside run_one), resume skipping
// everything already done.
std::vector<RunResult> run_repeated_checkpointed(const apps::AppInfo& app_info,
                                                 CrawlerKind kind,
                                                 const RunConfig& config,
                                                 std::size_t repetitions) {
  CheckpointManager manager(config.checkpoint,
                            run_digest(app_info, kind, config, repetitions));
  std::vector<RunResult> results;
  std::optional<support::json::Value> run_state;
  std::size_t start_rep = 0;
  if (config.checkpoint.resume) {
    if (auto restored = manager.restore();
        restored.has_value() && restored->repetitions == repetitions &&
        restored->completed.size() <= repetitions) {
      results = std::move(restored->completed);
      start_rep = results.size();
      if (restored->complete || start_rep == repetitions) return results;
      if (restored->run.has_value() && restored->in_flight_rep == start_rep) {
        run_state = std::move(restored->run);
      }
    }
  }
  for (std::size_t rep = start_rep; rep < repetitions; ++rep) {
    CheckpointContext ctx;
    ctx.manager = &manager;
    ctx.repetitions = repetitions;
    ctx.rep_index = rep;
    ctx.completed = &results;
    ctx.restore_run = (rep == start_rep && run_state.has_value())
                          ? &*run_state
                          : nullptr;
    results.push_back(run_one(app_info, kind, seeded_config(config, rep), &ctx));
    ExperimentCheckpoint boundary;
    boundary.repetitions = repetitions;
    boundary.completed = results;
    boundary.complete = rep + 1 == repetitions;
    write_checkpoint_tolerant(manager, boundary);
  }
  return results;
}

std::size_t worker_count(std::size_t repetitions) {
  const char* env = std::getenv("MAK_THREADS");
  std::size_t workers = 0;
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) workers = static_cast<std::size_t>(parsed);
  }
  if (workers == 0) {
    workers = std::min<std::size_t>(std::thread::hardware_concurrency(), 8);
    if (workers == 0) workers = 1;
  }
  return std::min(workers, repetitions);
}

}  // namespace

std::vector<RunResult> run_repeated(const apps::AppInfo& app_info,
                                    CrawlerKind kind, const RunConfig& config,
                                    std::size_t repetitions) {
  if (repetitions == 0) return {};
  if (config.checkpoint.enabled()) {
    return run_repeated_checkpointed(app_info, kind, config, repetitions);
  }
  std::vector<RunResult> results(repetitions);

  const std::size_t workers = worker_count(repetitions);
  if (workers <= 1 || config.trace != nullptr) {
    // Serial (also whenever a shared trace sink is attached).
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      results[rep] = run_once(app_info, kind, seeded_config(config, rep));
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t rep = next.fetch_add(1);
        if (rep >= repetitions) return;
        RunConfig rep_config = seeded_config(config, rep);
        rep_config.trace = nullptr;  // no shared sink across threads
        results[rep] = run_once(app_info, kind, rep_config);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  return results;
}

RunResult run_resumable(const apps::AppInfo& app_info, CrawlerKind kind,
                        const RunConfig& config) {
  if (!config.checkpoint.enabled()) return run_once(app_info, kind, config);
  // Single run under the RAW config seed (unlike run_repeated's per-rep
  // mixing), so `mak_crawl --seed S` resumes exactly the run it started.
  CheckpointManager manager(config.checkpoint,
                            run_digest(app_info, kind, config, 1));
  std::optional<support::json::Value> run_state;
  if (config.checkpoint.resume) {
    if (auto restored = manager.restore();
        restored.has_value() && restored->repetitions == 1) {
      if (restored->complete && !restored->completed.empty()) {
        return std::move(restored->completed.front());
      }
      if (restored->run.has_value() && restored->in_flight_rep == 0u) {
        run_state = std::move(restored->run);
      }
    }
  }
  const std::vector<RunResult> completed;
  CheckpointContext ctx;
  ctx.manager = &manager;
  ctx.repetitions = 1;
  ctx.rep_index = 0;
  ctx.completed = &completed;
  ctx.restore_run = run_state.has_value() ? &*run_state : nullptr;
  RunResult result = run_one(app_info, kind, config, &ctx);
  ExperimentCheckpoint final_state;
  final_state.repetitions = 1;
  final_state.completed.push_back(result);
  final_state.complete = true;
  write_checkpoint_tolerant(manager, final_state);
  return result;
}

namespace {
std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}
}  // namespace

Protocol protocol_from_env() {
  Protocol p;
  p.repetitions = env_or("MAK_REPS", 10);
  p.run.budget = static_cast<support::VirtualMillis>(
                     env_or("MAK_BUDGET_MINUTES", 30)) *
                 support::kMillisPerMinute;
  p.run.sample_interval = static_cast<support::VirtualMillis>(
                              env_or("MAK_SAMPLE_SECONDS", 30)) *
                          support::kMillisPerSecond;
  if (const auto fault = httpsim::FaultProfile::from_env()) {
    p.run.fault = *fault;
  } else if (const char* spec = std::getenv("MAK_FAULT_PROFILE");
             spec != nullptr && *spec != '\0') {
    MAK_LOG_WARN << "ignoring unparsable MAK_FAULT_PROFILE: " << spec;
  }
  if (const auto drift = webapp::DriftProfile::from_env()) {
    p.run.drift = *drift;
  } else if (const char* spec = std::getenv("MAK_DRIFT");
             spec != nullptr && *spec != '\0') {
    MAK_LOG_WARN << "ignoring unparsable MAK_DRIFT: " << spec;
  }
  if (const char* dir = std::getenv("MAK_CHECKPOINT_DIR");
      dir != nullptr && *dir != '\0') {
    p.run.checkpoint.dir = dir;
  }
  p.run.checkpoint.interval = static_cast<support::VirtualMillis>(
                                  env_or("MAK_CHECKPOINT_SECONDS", 120)) *
                              support::kMillisPerSecond;
  if (const char* resume = std::getenv("MAK_RESUME");
      resume != nullptr && std::string_view(resume) == "0") {
    p.run.checkpoint.resume = false;
  }
  p.run.supervisor.heartbeat_ms =
      static_cast<long>(env_or("MAK_HEARTBEAT_SEC", 0)) * 1000;
  p.run.supervisor.wall_limit_ms =
      static_cast<long>(env_or("MAK_WALL_LIMIT_SEC", 0)) * 1000;
  p.run.supervisor.max_steps = env_or("MAK_MAX_STEPS", 0);
  return p;
}

}  // namespace mak::harness
