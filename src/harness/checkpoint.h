// Crash-resilient experiment checkpoints (docs/robustness.md).
//
// A checkpoint file is a single JSON object:
//
//   {"magic": "mak-ckpt", "format": 1, "digest": "<8-hex config digest>",
//    "seq": N, "crc32": "<8-hex>", "payload": "<JSON string>"}
//
// The payload — the experiment state proper — travels as an embedded JSON
// string so the CRC-32 covers its exact bytes; any bit flip or truncation is
// detected before a single field is interpreted. Files are written atomically
// (temp file + rename in the same directory), so a crash mid-write leaves at
// most a stray .tmp file, never a half-written checkpoint. The digest binds
// the file to one experiment configuration (app, crawler, seed, protocol,
// fault profile); resume never mixes incompatible state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/json.h"

namespace mak::harness {

// Exact JSON codec for RunResult. Unlike json_report.cc's report schema this
// round-trips every field — including the covered LineSet — so completed
// repetitions survive a restart byte-for-byte. Exposed for tests and the
// checkpoint inspector.
support::json::Value result_to_state(const RunResult& result);
RunResult result_from_state(const support::json::Value& state);

// 8-hex digest of one experiment's identity: app name/version, crawler,
// seed, budget, sampling, think time, fill strategy, fault profile and
// repetition count.
std::string run_digest(const apps::AppInfo& app_info, CrawlerKind kind,
                       const RunConfig& config, std::size_t repetitions);

// Decoded checkpoint payload.
struct ExperimentCheckpoint {
  std::size_t repetitions = 0;       // total planned repetitions
  std::vector<RunResult> completed;  // results of finished repetitions
  bool complete = false;             // the whole experiment is done
  // Mid-run component state for repetition `in_flight_rep` (absent on
  // repetition-boundary checkpoints). The harness interprets the value; the
  // manager only transports it.
  std::optional<std::size_t> in_flight_rep;
  std::optional<support::json::Value> run;
};

// Parse and validate one checkpoint file: magic, format, digest (when
// `expected_digest` is non-empty), CRC and payload schema. Throws
// support::SnapshotError on ANY problem — missing file, syntax error, CRC
// mismatch, wrong digest — so callers get one clean failure channel. Used by
// CheckpointManager::restore and tools/checkpoint_inspect.
ExperimentCheckpoint read_checkpoint_file(const std::string& path,
                                          const std::string& expected_digest);

// Best-effort digest recovery from a possibly-corrupt checkpoint file, for
// triage (tools/checkpoint_inspect, failure bundles): the JSON envelope
// field when parsable, else a raw byte scan of the (possibly truncated)
// contents, else the ckpt-<digest>-<seq>.json filename. nullopt only when
// all three fail. Never throws.
std::optional<std::string> peek_checkpoint_digest(const std::string& path);

// Owns the checkpoint directory for one experiment: sequence numbering,
// atomic writes, pruning, and fallback restore across corrupted files.
class CheckpointManager {
 public:
  CheckpointManager(CheckpointConfig config, std::string digest);

  const CheckpointConfig& config() const noexcept { return config_; }
  const std::string& digest() const noexcept { return digest_; }

  // Newest valid checkpoint for this digest, falling back to the next-older
  // file when the newest is corrupted or truncated (each rejected file bumps
  // checkpoint.invalid_files and logs a warning). nullopt when none exists.
  std::optional<ExperimentCheckpoint> restore();

  // Serialize, CRC, write atomically, prune to config().keep files.
  void write(const ExperimentCheckpoint& checkpoint);

 private:
  std::string file_path(std::uint64_t seq) const;

  CheckpointConfig config_;
  std::string digest_;
  std::uint64_t next_seq_ = 1;  // always past every existing file's seq
};

}  // namespace mak::harness
