// Plain-text table and CSV emission for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mak::harness {

// A simple fixed-width text table: first row is the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  // Render with column auto-sizing; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// CSV with proper quoting.
std::string to_csv_row(const std::vector<std::string>& cells);

}  // namespace mak::harness
