#include "harness/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "support/fs.h"
#include "support/log.h"
#include "support/metric_names.h"
#include "support/metrics.h"
#include "support/snapshot.h"

namespace mak::harness {

namespace sfs = mak::support::fs;
namespace snapshot = mak::support::snapshot;
using support::SnapshotError;
using support::json::Value;

namespace {

constexpr std::string_view kMagic = "mak-ckpt";
constexpr int kFormat = 1;
constexpr std::string_view kPayloadId = "harness.checkpoint";
constexpr int kPayloadVersion = 1;

std::string crc_hex(std::uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return std::string(buffer);
}

apps::Platform platform_from_int(std::int64_t value) {
  switch (value) {
    case 0:
      return apps::Platform::kPhp;
    case 1:
      return apps::Platform::kNode;
    default:
      throw SnapshotError("RunResult: unknown platform in checkpoint");
  }
}

}  // namespace

support::json::Value result_to_state(const RunResult& result) {
  auto state = snapshot::make_state("harness.run_result", 1);
  state.emplace("app", result.app);
  state.emplace("crawler", result.crawler);
  state.emplace("platform", static_cast<double>(result.platform));
  support::json::Array series;
  series.reserve(result.series.points().size());
  for (const auto& point : result.series.points()) {
    support::json::Array pair;
    pair.emplace_back(static_cast<double>(point.time));
    pair.emplace_back(static_cast<double>(point.covered_lines));
    series.emplace_back(std::move(pair));
  }
  state.emplace("series", Value(std::move(series)));
  state.emplace("final_covered_lines",
                static_cast<double>(result.final_covered_lines));
  state.emplace("total_lines", static_cast<double>(result.total_lines));
  state.emplace("interactions", static_cast<double>(result.interactions));
  state.emplace("navigations", static_cast<double>(result.navigations));
  state.emplace("links_discovered",
                static_cast<double>(result.links_discovered));
  state.emplace("covered", result.covered.save_state());
  state.emplace("fault_active", Value(result.fault_active));
  state.emplace("retries", static_cast<double>(result.retries));
  state.emplace("transport_failures",
                static_cast<double>(result.transport_failures));
  state.emplace("timeouts", static_cast<double>(result.timeouts));
  state.emplace("backoff_ms", static_cast<double>(result.backoff_ms));
  state.emplace("injected_errors", static_cast<double>(result.injected_errors));
  state.emplace("injected_drops", static_cast<double>(result.injected_drops));
  state.emplace("latency_spikes", static_cast<double>(result.latency_spikes));
  state.emplace("degraded_requests",
                static_cast<double>(result.degraded_requests));
  // Drift and regret blocks are optional for the same reason as the failure
  // annotations below: results from drift-free, non-bandit runs keep their
  // exact pre-existing byte encoding.
  if (result.drift_active) {
    state.emplace("drift_active", Value(true));
    state.emplace("drift_gone_requests",
                  static_cast<double>(result.drift_gone_requests));
    state.emplace("drift_rewritten_links",
                  static_cast<double>(result.drift_rewritten_links));
    state.emplace("drift_churned_links",
                  static_cast<double>(result.drift_churned_links));
    state.emplace("drift_expired_sessions",
                  static_cast<double>(result.drift_expired_sessions));
    state.emplace("drift_storm_requests",
                  static_cast<double>(result.drift_storm_requests));
  }
  if (result.regret_tracked) {
    state.emplace("regret_tracked", Value(true));
    state.emplace("realized_gain", result.realized_gain);
    state.emplace("best_arm_gain", result.best_arm_gain);
    state.emplace("weak_regret", result.weak_regret);
    state.emplace("cumulative_regret", result.cumulative_regret);
    state.emplace("policy_updates", static_cast<double>(result.policy_updates));
  }
  state.emplace("steps", static_cast<double>(result.steps));
  state.emplace("aborted", Value(result.aborted));
  state.emplace("abort_reason", result.abort_reason);
  // Failure annotations are optional so non-failed results keep their exact
  // pre-orchestrator byte encoding (byte-identity tests depend on it).
  if (result.failed) {
    state.emplace("failed", Value(true));
    state.emplace("failure_class", result.failure_class);
    state.emplace("attempts", static_cast<double>(result.attempts));
  }
  return Value(std::move(state));
}

RunResult result_from_state(const support::json::Value& state) {
  snapshot::check_header(state, "harness.run_result", 1);
  RunResult result;
  result.app = snapshot::require_string(state, "app");
  result.crawler = snapshot::require_string(state, "crawler");
  result.platform = platform_from_int(snapshot::require_int(state, "platform"));
  for (const auto& entry : snapshot::require_array(state, "series")) {
    if (!entry.is_array() || entry.as_array().size() != 2 ||
        !entry.as_array()[0].is_number() || !entry.as_array()[1].is_number()) {
      throw SnapshotError("RunResult: malformed series point");
    }
    const double time = entry.as_array()[0].as_number();
    const double covered = entry.as_array()[1].as_number();
    if (time < 0 || time != static_cast<double>(static_cast<std::int64_t>(time)) ||
        covered < 0 ||
        covered != static_cast<double>(static_cast<std::uint64_t>(covered))) {
      throw SnapshotError("RunResult: non-integer series point");
    }
    result.series.record(static_cast<support::VirtualMillis>(time),
                         static_cast<std::size_t>(covered));
  }
  result.final_covered_lines = static_cast<std::size_t>(
      snapshot::require_index(state, "final_covered_lines"));
  result.total_lines =
      static_cast<std::size_t>(snapshot::require_index(state, "total_lines"));
  result.interactions =
      static_cast<std::size_t>(snapshot::require_index(state, "interactions"));
  result.navigations =
      static_cast<std::size_t>(snapshot::require_index(state, "navigations"));
  result.links_discovered = static_cast<std::size_t>(
      snapshot::require_index(state, "links_discovered"));
  result.covered.load_state(snapshot::require(state, "covered"));
  result.fault_active = snapshot::require_bool(state, "fault_active");
  result.retries =
      static_cast<std::size_t>(snapshot::require_index(state, "retries"));
  result.transport_failures = static_cast<std::size_t>(
      snapshot::require_index(state, "transport_failures"));
  result.timeouts =
      static_cast<std::size_t>(snapshot::require_index(state, "timeouts"));
  result.backoff_ms = static_cast<support::VirtualMillis>(
      snapshot::require_index(state, "backoff_ms"));
  result.injected_errors = static_cast<std::size_t>(
      snapshot::require_index(state, "injected_errors"));
  result.injected_drops = static_cast<std::size_t>(
      snapshot::require_index(state, "injected_drops"));
  result.latency_spikes = static_cast<std::size_t>(
      snapshot::require_index(state, "latency_spikes"));
  result.degraded_requests = static_cast<std::size_t>(
      snapshot::require_index(state, "degraded_requests"));
  if (state.find("drift_active") != nullptr) {
    result.drift_active = snapshot::require_bool(state, "drift_active");
    result.drift_gone_requests = static_cast<std::size_t>(
        snapshot::require_index(state, "drift_gone_requests"));
    result.drift_rewritten_links = static_cast<std::size_t>(
        snapshot::require_index(state, "drift_rewritten_links"));
    result.drift_churned_links = static_cast<std::size_t>(
        snapshot::require_index(state, "drift_churned_links"));
    result.drift_expired_sessions = static_cast<std::size_t>(
        snapshot::require_index(state, "drift_expired_sessions"));
    result.drift_storm_requests = static_cast<std::size_t>(
        snapshot::require_index(state, "drift_storm_requests"));
  }
  if (state.find("regret_tracked") != nullptr) {
    result.regret_tracked = snapshot::require_bool(state, "regret_tracked");
    result.realized_gain = snapshot::require_number(state, "realized_gain");
    result.best_arm_gain = snapshot::require_number(state, "best_arm_gain");
    result.weak_regret = snapshot::require_number(state, "weak_regret");
    result.cumulative_regret =
        snapshot::require_number(state, "cumulative_regret");
    result.policy_updates = static_cast<std::size_t>(
        snapshot::require_index(state, "policy_updates"));
  }
  result.steps =
      static_cast<std::size_t>(snapshot::require_index(state, "steps"));
  result.aborted = snapshot::require_bool(state, "aborted");
  result.abort_reason = snapshot::require_string(state, "abort_reason");
  if (state.find("failed") != nullptr) {
    result.failed = snapshot::require_bool(state, "failed");
    result.failure_class = snapshot::require_string(state, "failure_class");
    result.attempts =
        static_cast<std::size_t>(snapshot::require_index(state, "attempts"));
  }
  return result;
}

std::string run_digest(const apps::AppInfo& app_info, CrawlerKind kind,
                       const RunConfig& config, std::size_t repetitions) {
  // Everything that determines the run's trajectory goes in; CLI/env paths
  // and supervisor budgets stay out (resuming with a different wall limit is
  // legitimate). Collisions are caught later by the per-component config
  // checks in load_state (app name, fault spec, policy parameters).
  std::ostringstream identity;
  identity << app_info.name << '\n'
           << app_info.version << '\n'
           << to_string(kind) << '\n'
           << snapshot::u64_to_hex(config.seed) << '\n'
           << config.budget << '\n'
           << config.sample_interval << '\n'
           << config.think_time << '\n'
           << static_cast<int>(config.fill_strategy) << '\n'
           << config.fault.describe() << '\n'
           << config.drift.describe() << '\n'
           << repetitions;
  return crc_hex(snapshot::crc32(identity.str()));
}

ExperimentCheckpoint read_checkpoint_file(const std::string& path,
                                          const std::string& expected_digest) {
  const auto contents = sfs::default_fs().read_file(path);
  if (!contents.has_value()) {
    throw SnapshotError("checkpoint: cannot open " + path);
  }
  const std::string& text = *contents;

  const auto outer = support::json::parse(text);
  if (!outer.has_value() || !outer->is_object()) {
    throw SnapshotError("checkpoint: not a JSON object: " + path);
  }
  if (snapshot::require_string(*outer, "magic") != kMagic) {
    throw SnapshotError("checkpoint: bad magic in " + path);
  }
  if (snapshot::require_int(*outer, "format") != kFormat) {
    throw SnapshotError("checkpoint: unsupported format in " + path);
  }
  const std::string& digest = snapshot::require_string(*outer, "digest");
  if (!expected_digest.empty() && digest != expected_digest) {
    throw SnapshotError("checkpoint: digest mismatch in " + path +
                        " (file belongs to a different experiment)");
  }
  const std::string& payload = snapshot::require_string(*outer, "payload");
  const std::string& crc = snapshot::require_string(*outer, "crc32");
  if (crc != crc_hex(snapshot::crc32(payload))) {
    throw SnapshotError("checkpoint: CRC mismatch in " + path);
  }

  const auto state = support::json::parse(payload);
  if (!state.has_value()) {
    throw SnapshotError("checkpoint: unparsable payload in " + path);
  }
  snapshot::check_header(*state, kPayloadId, kPayloadVersion);

  ExperimentCheckpoint checkpoint;
  checkpoint.repetitions =
      static_cast<std::size_t>(snapshot::require_index(*state, "repetitions"));
  for (const auto& entry : snapshot::require_array(*state, "completed")) {
    checkpoint.completed.push_back(result_from_state(entry));
  }
  checkpoint.complete = snapshot::require_bool(*state, "complete");
  if (state->find("in_flight_rep") != nullptr) {
    checkpoint.in_flight_rep = static_cast<std::size_t>(
        snapshot::require_index(*state, "in_flight_rep"));
  }
  if (const Value* run = state->find("run"); run != nullptr) {
    if (!run->is_object()) {
      throw SnapshotError("checkpoint: run state must be an object: " + path);
    }
    checkpoint.run = *run;
  }
  if (checkpoint.run.has_value() != checkpoint.in_flight_rep.has_value()) {
    throw SnapshotError(
        "checkpoint: run state and in_flight_rep must come together: " + path);
  }
  if (checkpoint.completed.size() > checkpoint.repetitions) {
    throw SnapshotError("checkpoint: more results than repetitions: " + path);
  }
  return checkpoint;
}

std::optional<std::string> peek_checkpoint_digest(const std::string& path) {
  // Envelope first: valid JSON with a string "digest" field.
  if (const auto contents = sfs::default_fs().read_file(path);
      contents.has_value()) {
    if (const auto outer = support::json::parse(*contents);
        outer.has_value() && outer->is_object()) {
      if (const auto* digest = outer->find("digest");
          digest != nullptr && digest->is_string()) {
        return digest->as_string();
      }
    }
    // Torn or bit-flipped envelope: the digest field sits near the front of
    // the file, so a raw byte scan usually survives truncation.
    static constexpr std::string_view kKey = "\"digest\"";
    if (const auto key = contents->find(kKey); key != std::string::npos) {
      auto open = contents->find('"', key + kKey.size());
      if (open != std::string::npos &&
          contents->find(':', key + kKey.size()) < open) {
        const auto close = contents->find('"', open + 1);
        if (close != std::string::npos) {
          return contents->substr(open + 1, close - open - 1);
        }
      }
    }
  }
  // Last resort: the ckpt-<digest>-<seq>.json naming convention.
  const auto slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  static constexpr std::string_view kPrefix = "ckpt-";
  if (name.compare(0, kPrefix.size(), kPrefix) == 0) {
    const auto dash = name.find('-', kPrefix.size());
    if (dash != std::string::npos && dash > kPrefix.size()) {
      return name.substr(kPrefix.size(), dash - kPrefix.size());
    }
  }
  return std::nullopt;
}

namespace {

// Matches "ckpt-<digest>-<seq>.json" for this manager's digest; returns the
// sequence number.
std::optional<std::uint64_t> parse_seq(const std::string& file_name,
                                       const std::string& digest) {
  const std::string prefix = "ckpt-" + digest + "-";
  const std::string suffix = ".json";
  if (file_name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (file_name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (file_name.compare(file_name.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = file_name.substr(
      prefix.size(), file_name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    if (seq > (UINT64_MAX - 9) / 10) return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

// All checkpoint files for `digest` in `dir`, newest (highest seq) first.
// The explicit numeric sort is load-bearing: directory listings come back in
// arbitrary order, and lexicographic order is wrong once sequence numbers
// outgrow their zero padding ("ckpt-x-9.json" > "ckpt-x-10.json").
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir, const std::string& digest) {
  std::vector<std::pair<std::uint64_t, std::string>> files;
  for (const auto& name : sfs::default_fs().list_dir(dir)) {
    const auto seq = parse_seq(name, digest);
    if (seq.has_value()) files.emplace_back(*seq, dir + "/" + name);
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return files;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config,
                                     std::string digest)
    : config_(std::move(config)), digest_(std::move(digest)) {
  if (!config_.enabled()) {
    throw std::invalid_argument("CheckpointManager: empty checkpoint dir");
  }
  if (config_.keep == 0) config_.keep = 1;
  // Never reuse an existing sequence number, even when resume is off: a
  // crashed run's files must not be silently overwritten mid-prune.
  for (const auto& [seq, path] : list_checkpoints(config_.dir, digest_)) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::string CheckpointManager::file_path(std::uint64_t seq) const {
  char digits[21];
  std::snprintf(digits, sizeof(digits), "%08llu",
                static_cast<unsigned long long>(seq));
  return config_.dir + "/ckpt-" + digest_ + "-" + digits + ".json";
}

std::optional<ExperimentCheckpoint> CheckpointManager::restore() {
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& restores =
      registry.counter(support::metric::kCheckpointRestores);
  static support::Counter& invalid =
      registry.counter(support::metric::kCheckpointInvalidFiles);
  for (const auto& [seq, path] : list_checkpoints(config_.dir, digest_)) {
    try {
      ExperimentCheckpoint checkpoint = read_checkpoint_file(path, digest_);
      restores.add();
      MAK_LOG_INFO << "checkpoint: resuming from " << path << " ("
                   << checkpoint.completed.size() << "/"
                   << checkpoint.repetitions << " repetitions done)";
      return checkpoint;
    } catch (const SnapshotError& error) {
      invalid.add();
      MAK_LOG_WARN << "checkpoint: skipping invalid file " << path << ": "
                   << error.what();
    }
  }
  return std::nullopt;
}

void CheckpointManager::write(const ExperimentCheckpoint& checkpoint) {
  auto& registry = support::MetricsRegistry::global();
  static support::Counter& writes =
      registry.counter(support::metric::kCheckpointWrites);
  static support::Histogram& write_wall_us = registry.histogram(
      support::metric::kCheckpointWriteWallUs, support::duration_bounds_us());
  const support::MetricSpan span(write_wall_us, nullptr, nullptr);

  auto state = snapshot::make_state(kPayloadId, kPayloadVersion);
  state.emplace("repetitions", static_cast<double>(checkpoint.repetitions));
  support::json::Array completed;
  completed.reserve(checkpoint.completed.size());
  for (const auto& result : checkpoint.completed) {
    completed.push_back(result_to_state(result));
  }
  state.emplace("completed", Value(std::move(completed)));
  state.emplace("complete", Value(checkpoint.complete));
  if (checkpoint.in_flight_rep.has_value()) {
    state.emplace("in_flight_rep",
                  static_cast<double>(*checkpoint.in_flight_rep));
  }
  if (checkpoint.run.has_value()) {
    state.emplace("run", *checkpoint.run);
  }
  const std::string payload = support::json::dump(Value(std::move(state)));

  support::json::Object outer;
  outer.emplace("magic", std::string(kMagic));
  outer.emplace("format", static_cast<double>(kFormat));
  outer.emplace("digest", digest_);
  outer.emplace("seq", static_cast<double>(next_seq_));
  outer.emplace("crc32", crc_hex(snapshot::crc32(payload)));
  outer.emplace("payload", payload);
  const std::string text = support::json::dump(Value(std::move(outer)));

  auto& disk = sfs::default_fs();
  disk.create_directories(config_.dir);
  const std::string path = file_path(next_seq_);
  const std::string tmp = path + ".tmp";
  // Torn writes that report success land here as a corrupt-but-named file;
  // the CRC envelope makes restore() skip it, so they cost recompute, not
  // correctness. Clean failures surface as SnapshotError for the caller.
  if (!disk.write_file(tmp, text + "\n", /*durable=*/true)) {
    disk.remove(tmp);  // best effort
    throw SnapshotError("checkpoint: write failed: " + tmp);
  }
  if (!disk.rename(tmp, path)) {
    disk.remove(tmp);  // best effort
    throw SnapshotError("checkpoint: rename failed: " + path);
  }
  ++next_seq_;
  writes.add();

  // Prune: keep the newest `keep` files (including the one just written),
  // by sequence number — list_checkpoints sorts numerically.
  const auto files = list_checkpoints(config_.dir, digest_);
  for (std::size_t i = config_.keep; i < files.size(); ++i) {
    disk.remove(files[i].second);  // best effort
  }
}

}  // namespace mak::harness
