// Experiment harness: runs crawlers against testbed apps under the paper's
// protocol — 30 virtual minutes per run, N repetitions, coverage sampled
// over time (Section V-A.4).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "apps/catalog.h"
#include "core/crawler.h"
#include "core/trace.h"
#include "core/mak.h"
#include "coverage/coverage.h"
#include "harness/supervisor.h"
#include "httpsim/fault.h"
#include "support/clock.h"
#include "webapp/drift.h"

namespace mak::harness {

// The crawler line-up of the paper plus the ablation variants.
enum class CrawlerKind {
  kMak,        // the paper's crawler
  kWebExplor,  // Q-learning baseline
  kQExplore,   // Q-learning baseline
  kBfs,        // static Head
  kDfs,        // static Tail
  kRandom,     // static Random
  // Ablations (Section 5 of DESIGN.md):
  kMakRawReward,       // no standardization
  kMakCuriosityReward, // curiosity instead of link coverage
  kMakFlatDeque,       // single-level deque
  kMakExp3Fixed,       // fixed-gamma Exp3
  kMakEpsilonGreedy,   // epsilon-greedy policy
  kMakUcb1,            // UCB1 (stochastic MAB) policy
  kMakDomNovelty,      // DOM-structural-novelty reward
  kMakThompson,        // Thompson-sampling policy
  kMakRottingExp3,     // discounted-gain Exp3 (rotting rewards)
  kMakDsee,            // deterministic exploration/exploitation
};

std::string_view to_string(CrawlerKind kind);
std::unique_ptr<core::Crawler> make_crawler(CrawlerKind kind,
                                            support::Rng rng);

// Every CrawlerKind in display order — the single source for --list output
// and name resolution in the CLIs and benches.
const std::vector<CrawlerKind>& all_crawler_kinds();
// Kind whose display name is `name`; nullopt if unknown.
std::optional<CrawlerKind> crawler_kind_from_name(std::string_view name);

// Bandit-policy panel: maps each rl::policy_catalog() name to the MAK
// variant running that policy (docs/policies.md).
std::optional<CrawlerKind> crawler_for_policy(std::string_view policy);

// Crash-resilient checkpointing (docs/robustness.md). With a non-empty
// `dir`, run_repeated/run_resumable write an atomic checkpoint file after
// every completed repetition and periodically mid-run (on a virtual-time
// cadence), and resume from the newest valid file instead of starting over.
struct CheckpointConfig {
  std::string dir;  // empty = checkpointing disabled
  // Mid-run cadence in virtual time (matches the run's budget semantics;
  // a 30-minute run with the default writes ~15 mid-run checkpoints).
  support::VirtualMillis interval = 2 * support::kMillisPerMinute;
  std::size_t every_steps = 0;  // also write every N crawl steps (0 = off)
  std::size_t keep = 3;         // checkpoint files retained per experiment
  bool resume = true;           // restore from the newest valid checkpoint

  bool enabled() const noexcept { return !dir.empty(); }
};

// Thrown by the run loop when RunConfig::crash_at_step fires: the in-process
// stand-in for a SIGKILL in crash-recovery tests.
struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("injected crash") {}
};

struct RunConfig {
  support::VirtualMillis budget = 30 * support::kMillisPerMinute;
  support::VirtualMillis sample_interval = 30 * support::kMillisPerSecond;
  // Client-side cost of one crawl step (decide + locate element + drive the
  // browser); identical for every crawler, so differences in interaction
  // counts reflect only page weights.
  support::VirtualMillis think_time = 700;
  std::uint64_t seed = 0x5eed;
  // Optional step-by-step event log (not owned; may be nullptr).
  core::CrawlTrace* trace = nullptr;
  // How the browser fills empty form fields.
  core::FormFillStrategy fill_strategy = core::FormFillStrategy::kCounter;
  // Adversarial-network profile (disabled by default: the run behaves
  // exactly as a fault-free run). Set explicitly or via MAK_FAULT_PROFILE
  // (see protocol_from_env). The profile's RetryPolicy configures the
  // browser's client-side resilience.
  httpsim::FaultProfile fault;
  // App-side nonstationary drift (webapp/drift.h; disabled by default, so
  // the app behaves exactly as a stationary one). Set explicitly or via
  // MAK_DRIFT (see protocol_from_env).
  webapp::DriftProfile drift;
  // Checkpoint/resume (used by run_repeated and run_resumable; a plain
  // run_once ignores it).
  CheckpointConfig checkpoint;
  // Budgets and stall detection; disabled by default.
  SupervisorConfig supervisor;
  // Test-only crash injection: throw InjectedCrash after completing this
  // many crawl steps (0 = never). Together with checkpointing this proves
  // resume reproduces the uninterrupted run bit-for-bit.
  std::size_t crash_at_step = 0;
  // Test hook invoked after every completed crawl step (may be empty).
  std::function<void(std::size_t step)> step_hook;
};

// Everything one crawl run produces.
struct RunResult {
  std::string app;
  std::string crawler;
  apps::Platform platform = apps::Platform::kPhp;
  coverage::CoverageSeries series;       // sampled coverage over time
  std::size_t final_covered_lines = 0;
  std::size_t total_lines = 0;           // app's declared total
  std::size_t interactions = 0;          // atomic element interactions
  std::size_t navigations = 0;           // seed (re)loads
  std::size_t links_discovered = 0;      // crawler's link coverage
  coverage::LineSet covered;             // exact covered set (for unions)

  // Fault-injection accounting (all zero when the profile is disabled).
  bool fault_active = false;
  std::size_t retries = 0;               // client retry attempts
  std::size_t transport_failures = 0;    // fetches that failed after retries
  std::size_t timeouts = 0;              // client timeout expirations
  support::VirtualMillis backoff_ms = 0; // virtual time spent backing off
  std::size_t injected_errors = 0;       // server-side injected 5xx
  std::size_t injected_drops = 0;        // injected connection drops
  std::size_t latency_spikes = 0;        // injected latency spikes
  std::size_t degraded_requests = 0;     // requests inside degradation windows

  // Drift accounting (all zero when the drift profile is disabled).
  bool drift_active = false;
  std::size_t drift_gone_requests = 0;    // URLs killed by deploys/flips
  std::size_t drift_rewritten_links = 0;  // links minted into a new world
  std::size_t drift_churned_links = 0;    // cache-busting link aliases
  std::size_t drift_expired_sessions = 0; // storm session expirations
  std::size_t drift_storm_requests = 0;   // requests routed inside storms

  // Cumulative-regret accounting (rl/regret.h; docs/policies.md). Present
  // for bandit-policy crawlers, zero/false otherwise.
  bool regret_tracked = false;
  double realized_gain = 0.0;            // sum of collected rewards
  double best_arm_gain = 0.0;            // IW estimate of the best arm
  double weak_regret = 0.0;              // final best - realized (>= 0)
  double cumulative_regret = 0.0;        // monotone high-water mark
  std::size_t policy_updates = 0;        // regret observations recorded

  // Supervisor outcome. A completed run leaves these at their defaults; an
  // aborted run carries partial coverage up to the cancellation point.
  std::size_t steps = 0;                 // crawl steps executed
  bool aborted = false;                  // supervisor cancelled the run
  std::string abort_reason;              // kAbortStalled / kAbortWallLimit /
                                         // kAbortStepLimit

  // Orchestrator outcome (src/harness/orchestrator.h). A repetition whose
  // worker exhausted its retries is carried as a failed placeholder — never
  // silently dropped — with the failure class of the final attempt.
  bool failed = false;
  std::string failure_class;             // crash / timeout / oom / transient
  std::size_t attempts = 0;              // worker attempts consumed
};

// Run one crawler once against a fresh instance of `app_info`'s app.
RunResult run_once(const apps::AppInfo& app_info, CrawlerKind kind,
                   const RunConfig& config);

// Run `repetitions` runs with derived seeds; returns one result per run.
// Repetitions are independent (each owns its app instance, network and
// clock), so they execute on a small thread pool when MAK_THREADS > 1
// (default: hardware concurrency, capped at 8). Results are ordered by
// repetition index and bit-identical to a serial execution.
// When config.checkpoint is enabled, repetitions run serially instead: a
// checkpoint is written after each one (plus mid-run for snapshotable
// crawlers) and a restart resumes from the newest valid checkpoint, skipping
// completed repetitions. The resumed results are bit-identical to an
// uninterrupted execution.
std::vector<RunResult> run_repeated(const apps::AppInfo& app_info,
                                    CrawlerKind kind, const RunConfig& config,
                                    std::size_t repetitions);

// Run one crawler once with checkpoint/resume support (the single-run
// analogue of run_repeated's checkpoint path; used by tools/mak_crawl).
// Resumes mid-run when the crawler is snapshotable, from scratch otherwise;
// with checkpointing disabled this is exactly run_once.
RunResult run_resumable(const apps::AppInfo& app_info, CrawlerKind kind,
                        const RunConfig& config);

// Repetitions/budget scaling for quick CI runs: reads MAK_REPS,
// MAK_BUDGET_MINUTES and MAK_SAMPLE_SECONDS environment variables, falling
// back to the paper's protocol (10 reps, 30 min, 30 s). Robustness knobs
// ride along: MAK_CHECKPOINT_DIR, MAK_CHECKPOINT_SECONDS (virtual cadence),
// MAK_RESUME=0 (disable restore), MAK_HEARTBEAT_SEC, MAK_WALL_LIMIT_SEC and
// MAK_MAX_STEPS.
struct Protocol {
  std::size_t repetitions = 10;
  RunConfig run;
};
Protocol protocol_from_env();

// Seed of repetition `rep` under `config` — the derivation run_repeated uses
// internally, exported so orchestrator workers running one repetition in
// their own process reproduce the serial run bit-for-bit.
std::uint64_t repetition_seed(const RunConfig& config, std::size_t rep);

}  // namespace mak::harness
