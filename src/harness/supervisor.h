// Run supervisor: wall-clock budgets, step budgets and stall detection.
//
// Experiments are meant to finish in milliseconds of real time, so a run
// that takes minutes is a bug (infinite recovery loop, pathological app
// model) rather than a slow crawl. The supervisor watches a run from a
// watchdog thread and asks the run loop to cancel itself; cancellation is
// cooperative — the loop polls should_abort() between crawl steps — so the
// run always produces a consistent partial result marked `aborted` instead
// of being torn down mid-step.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>

namespace mak::harness {

struct SupervisorConfig {
  // Stall detection: flag the run when no crawl step completes within this
  // many wall-clock milliseconds. 0 disables the watchdog thread.
  long heartbeat_ms = 0;
  // Wall-clock budget for the whole run. 0 = unlimited.
  long wall_limit_ms = 0;
  // Crawl-step budget. 0 = unlimited.
  std::size_t max_steps = 0;

  bool enabled() const noexcept {
    return heartbeat_ms > 0 || wall_limit_ms > 0 || max_steps > 0;
  }
};

// Abort reasons returned by RunSupervisor::should_abort (and recorded in
// RunResult::abort_reason / the experiment JSON `aborted` block).
inline constexpr const char* kAbortStalled = "stalled";
inline constexpr const char* kAbortWallLimit = "wall_limit";
inline constexpr const char* kAbortStepLimit = "step_limit";

// One supervisor per run, owned by the run loop's thread. heartbeat() and
// should_abort() are called from the run thread; only the internal watchdog
// thread reads the heartbeat concurrently.
//
// Long-lived services (src/serve) reuse one supervisor across many
// scheduling quanta: after handling a flagged stall (cancelling the hung
// worker), call rearm() to clear the stall and restart the watchdog —
// without it the supervisor would report `stalled` forever, because the
// watchdog thread exits after flagging once.
class RunSupervisor {
 public:
  explicit RunSupervisor(SupervisorConfig config);
  ~RunSupervisor();

  RunSupervisor(const RunSupervisor&) = delete;
  RunSupervisor& operator=(const RunSupervisor&) = delete;

  // Record crawl-step progress (called after every completed step).
  void heartbeat() noexcept;

  // Polled at the top of the run loop: empty string = keep going, otherwise
  // one of the kAbort* reasons. Bumps the supervisor.aborts metric when it
  // fires (each run aborts at most once).
  std::string should_abort(std::size_t steps);

  // True once the watchdog has flagged a stall (and until rearm()).
  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }

  // Clear a flagged stall and restart the watchdog thread, so a reused
  // supervisor can detect the NEXT stall too. Records a fresh heartbeat
  // (the caller just made progress by handling the stall). Safe to call
  // when no stall was flagged; wall/step budgets are unaffected.
  void rearm();

  // The stall predicate, exposed for boundary tests: a gap of exactly
  // heartbeat_ms is still on time — only strictly-greater gaps stall.
  static bool stall_exceeded(long since_beat_ms, long heartbeat_ms) noexcept {
    return since_beat_ms > heartbeat_ms;
  }

 private:
  void watch();
  void stop_watchdog();
  long elapsed_ms() const noexcept;

  SupervisorConfig config_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<long> last_beat_ms_{0};  // ms since start_, watchdog-read
  std::atomic<bool> stalled_{false};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread watchdog_;
};

}  // namespace mak::harness
