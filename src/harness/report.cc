#include "harness/report.h"

#include <algorithm>
#include <cctype>
#include <ostream>

namespace mak::harness {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != ',') {
      return false;
    }
  }
  return true;
}
}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t pad = widths[i] - row[i].size();
      const bool right = r > 0 && looks_numeric(row[i]);
      if (i > 0) os << "  ";
      if (right) os << std::string(pad, ' ');
      os << row[i];
      if (!right && i + 1 < row.size()) os << std::string(pad, ' ');
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t w : widths) total += w;
      os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
    }
  }
}

std::string to_csv_row(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& cell = cells[i];
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      out += '"';
      for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += cell;
    }
  }
  return out;
}

}  // namespace mak::harness
