// Process-isolated experiment orchestrator (docs/robustness.md).
//
// run_orchestrated() executes an experiment's repetitions in worker
// processes (one fork/exec per repetition, via ProcPool), so crashes, OOM
// kills and hangs are contained to single repetitions. Failed attempts are
// retried with capped exponential backoff, resuming from the worker's own
// checkpoint so a retry never recomputes completed steps; every abnormal
// exit is archived as a replayable failure bundle; and a repetition whose
// retries are exhausted is carried through aggregation as a failed
// placeholder (RunResult::failed), never silently dropped. The results are
// byte-identical to run_repeated() for every repetition that completes —
// workers run the exact per-repetition seed the serial path would.
//
// Worker mode: any binary that calls run_orchestrated must dispatch
// `is_worker_invocation` at the very top of main() and hand control to
// `worker_main` — the orchestrator re-execs /proc/self/exe, so the worker
// IS this binary.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "harness/procpool.h"

namespace mak::harness {

struct OrchestratorConfig {
  std::size_t workers = 2;       // concurrent worker processes
  std::size_t max_attempts = 3;  // per repetition, including the first
  // Capped exponential backoff between a repetition's attempts (parent-side
  // wall time): base, base*2, base*4, ... up to the cap. No jitter — retry
  // timing must not perturb determinism.
  long backoff_base_ms = 200;
  long backoff_cap_ms = 5000;
  WorkerLimits limits;  // rlimits + wall deadline per attempt
  // Worker scratch (checkpoints, result files, stderr captures), laid out
  // as <scratch_dir>/<experiment digest>/rep-<k>/.
  std::string scratch_dir = "results/orchestrator";
  // Failure bundles land in <failure_dir>/<digest>-rep<k>-a<attempt>/.
  std::string failure_dir = "results/failures";
  // Chaos hook (CI): the FIRST attempt of repetition `first` SIGKILLs
  // itself after `second` crawl steps; retries run undisturbed.
  std::optional<std::pair<std::size_t, std::size_t>> chaos_kill;
};

// Environment-driven config: MAK_WORKERS, MAK_ORCH_ATTEMPTS, MAK_ORCH_DIR,
// MAK_FAILURE_DIR, MAK_ORCH_TIMEOUT_SEC (wall, per attempt),
// MAK_ORCH_CPU_SEC, MAK_ORCH_AS_MB, MAK_ORCH_BACKOFF_MS, and
// MAK_ORCH_CHAOS_KILL="rep=K,step=N".
OrchestratorConfig orchestrator_from_env();

// True when argv puts this process in worker mode (argv[1] == "--worker").
bool is_worker_invocation(int argc, char** argv);

// Worker entry point: run one repetition per the --worker argv protocol,
// write the result envelope, return the process exit code (kExitOk /
// kExitOom / kExitTransient). Call ONLY from main() after
// is_worker_invocation; it never returns to experiment code.
int worker_main(int argc, char** argv);

// Run `repetitions` worker processes and return one result per repetition,
// ordered by repetition index. Completed repetitions are bit-identical to
// run_repeated; exhausted ones come back as failed placeholders.
std::vector<RunResult> run_orchestrated(const apps::AppInfo& app_info,
                                        CrawlerKind kind,
                                        const RunConfig& config,
                                        std::size_t repetitions,
                                        const OrchestratorConfig& orch);

// Replay a failure bundle directory (mak_crawl --replay-bundle): rebuild
// the recorded worker config, resume from the bundled checkpoint, verify
// the run_digest matches, and print the reproduced final state. Returns a
// process exit code (0 = replayed, digest verified).
int replay_bundle(const std::string& bundle_dir);

}  // namespace mak::harness
