// JSON export of experiment results for downstream analysis (plotting,
// statistics, regression tracking between versions).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/metrics.h"

namespace mak::harness {

// Serialize one run as a JSON object (single line, no trailing newline).
std::string run_to_json(const RunResult& run, bool include_series = true);

// Serialize a metrics snapshot under the frozen observability schema
// (schema_version 1 — see docs/observability.md for the full annotated
// layout):
//   {"schema_version":1,
//    "counters":{"name":N,...},
//    "gauges":{"name":x,...},
//    "histograms":{"name":{"count":N,"sum":x,"min":x,"max":x,
//                          "p50":x,"p90":x,"p99":x,
//                          "buckets":[[upper_bound,count],...,[null,count]]}}}
// Keys are sorted (snapshot maps are ordered), so output is deterministic
// for a given snapshot. The final bucket's bound serializes as null: it is
// the overflow bucket (+inf has no JSON literal).
std::string metrics_to_json(const support::MetricsSnapshot& snapshot);

// Serialize a whole experiment (several crawlers x repetitions on one app)
// as a JSON document:
//   {"app": ..., "ground_truth": N, "runs": [...]}
// When `metrics` is non-null, a trailing `"metrics"` block (schema above) is
// appended; the default keeps pre-observability reports byte-identical.
void write_experiment_json(std::ostream& os,
                           const std::string& app,
                           std::size_t ground_truth,
                           const std::vector<std::vector<RunResult>>& runs,
                           bool include_series = false,
                           const support::MetricsSnapshot* metrics = nullptr);

}  // namespace mak::harness
