// JSON export of experiment results for downstream analysis (plotting,
// statistics, regression tracking between versions).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace mak::harness {

// Serialize one run as a JSON object (single line, no trailing newline).
std::string run_to_json(const RunResult& run, bool include_series = true);

// Serialize a whole experiment (several crawlers x repetitions on one app)
// as a JSON document:
//   {"app": ..., "ground_truth": N, "runs": [...]}
void write_experiment_json(std::ostream& os,
                           const std::string& app,
                           std::size_t ground_truth,
                           const std::vector<std::vector<RunResult>>& runs,
                           bool include_series = false);

}  // namespace mak::harness
