#include "harness/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "support/stats.h"

namespace mak::harness {

namespace {

// Failed placeholders (worker exhausted its retries) carry no data.
bool usable(const RunResult& run) { return !run.failed; }

}  // namespace

CoverageCurve aggregate_series(const std::vector<RunResult>& runs) {
  CoverageCurve curve;
  if (runs.empty()) return curve;
  // All runs share the same sampling grid (same config); use the longest.
  std::size_t grid = 0;
  for (const auto& run : runs) {
    if (!usable(run)) continue;
    grid = std::max(grid, run.series.points().size());
  }
  for (std::size_t i = 0; i < grid; ++i) {
    std::vector<double> values;
    support::VirtualMillis time = 0;
    for (const auto& run : runs) {
      if (!usable(run)) continue;
      const auto& points = run.series.points();
      if (i < points.size()) {
        time = points[i].time;
        values.push_back(static_cast<double>(points[i].covered_lines));
      }
    }
    curve.times.push_back(time);
    curve.mean.push_back(support::mean_of(values));
    curve.stddev.push_back(support::stddev_of(values));
  }
  return curve;
}

std::size_t estimate_ground_truth(
    const std::vector<std::vector<RunResult>>& runs_by_crawler) {
  const RunResult* first = nullptr;
  for (const auto& runs : runs_by_crawler) {
    for (const auto& run : runs) {
      if (usable(run)) {
        first = &run;
        break;
      }
    }
    if (first != nullptr) break;
  }
  if (first == nullptr) {
    throw std::invalid_argument("estimate_ground_truth: no runs");
  }
  if (first->platform == apps::Platform::kNode) {
    // coverage-node knows the total server line count.
    return first->total_lines;
  }
  // Xdebug does not: take the union of all covered lines over all crawlers
  // and runs as the ground-truth estimate (Section V-B).
  coverage::LineSet unioned = first->covered;
  for (const auto& runs : runs_by_crawler) {
    for (const auto& run : runs) {
      if (usable(run)) unioned.union_with(run.covered);
    }
  }
  return unioned.count();
}

double mean_covered(const std::vector<RunResult>& runs) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& run : runs) {
    if (!usable(run)) continue;
    values.push_back(static_cast<double>(run.final_covered_lines));
  }
  return support::mean_of(values);
}

double mean_coverage_percent(const std::vector<RunResult>& runs,
                             std::size_t ground_truth) {
  if (ground_truth == 0) return 0.0;
  return 100.0 * mean_covered(runs) / static_cast<double>(ground_truth);
}

std::map<std::string, double> regrets_percent(
    const std::map<std::string, double>& mean_lines, double total_lines) {
  std::map<std::string, double> out;
  if (mean_lines.empty() || total_lines <= 0.0) return out;
  double best = 0.0;
  for (const auto& [name, lines] : mean_lines) best = std::max(best, lines);
  for (const auto& [name, lines] : mean_lines) {
    out[name] = 100.0 * (best - lines) / total_lines;
  }
  return out;
}

double mean_interactions(const std::vector<RunResult>& runs) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const auto& run : runs) {
    if (!usable(run)) continue;
    values.push_back(static_cast<double>(run.interactions));
  }
  return support::mean_of(values);
}

SummaryStats summarize_covered(const std::vector<RunResult>& runs) {
  SummaryStats stats;
  // Exact integer accumulation: counts stay below 2^53, so sum and sum of
  // squares are order-independent and the derived doubles bit-identical for
  // any permutation of `runs` (unlike float accumulation, whose rounding
  // depends on addition order).
  std::uint64_t sum = 0;
  std::uint64_t sum_sq = 0;
  for (const auto& run : runs) {
    if (!usable(run)) {
      ++stats.failed;
      continue;
    }
    ++stats.runs;
    const auto covered = static_cast<std::uint64_t>(run.final_covered_lines);
    sum += covered;
    sum_sq += covered * covered;
  }
  if (stats.runs == 0) return stats;
  const double n = static_cast<double>(stats.runs);
  stats.mean = static_cast<double>(sum) / n;
  if (stats.runs > 1) {
    const double variance = std::max(
        0.0, static_cast<double>(sum_sq) / n - stats.mean * stats.mean);
    stats.stddev = std::sqrt(variance);
    stats.ci95 = 1.96 * stats.stddev / std::sqrt(n);
  }
  return stats;
}

}  // namespace mak::harness
