// URL parsing, serialization, relative resolution and normalization.
//
// A trimmed-down RFC 3986 implementation covering everything web crawling
// needs: absolute and relative references, query strings, fragments,
// percent-encoding, dot-segment removal and origin comparison. The WebExplor
// baseline performs *exact URL matching* for its state abstraction (Section
// III-A of the paper), so faithful query-string handling matters here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mak::url {

// Percent-encoding. `encode_component` escapes everything outside the
// unreserved set; `decode` resolves %XX escapes (invalid escapes are kept
// verbatim, matching lenient browser behaviour).
std::string encode_component(std::string_view text);
std::string decode(std::string_view text);

// An ordered multimap of query parameters. Order is preserved because exact
// URL matching (WebExplor) is order-sensitive.
class QueryMap {
 public:
  QueryMap() = default;

  // Parse "a=1&b=2&b=3". Keys/values are percent-decoded. '+' decodes to ' '.
  static QueryMap parse(std::string_view query);

  void add(std::string key, std::string value);
  void set(std::string_view key, std::string value);  // replace or add
  void remove(std::string_view key);

  bool has(std::string_view key) const noexcept;
  // First value for key, if any.
  std::optional<std::string> get(std::string_view key) const;
  std::vector<std::string> get_all(std::string_view key) const;

  std::size_t size() const noexcept { return params_.size(); }
  bool empty() const noexcept { return params_.empty(); }

  const std::vector<std::pair<std::string, std::string>>& items()
      const noexcept {
    return params_;
  }

  // Serialize back to "a=1&b=2" with percent-encoding.
  std::string to_string() const;

  bool operator==(const QueryMap&) const = default;

 private:
  std::vector<std::pair<std::string, std::string>> params_;
};

// A parsed URL. Components are stored decoded except `path` (kept in its
// encoded wire form so round-tripping is lossless) and `query` (wire form;
// use QueryMap for structured access).
struct Url {
  std::string scheme;    // lowercase, e.g. "http"; empty for relative refs
  std::string host;      // lowercase; empty for relative refs
  std::uint16_t port = 0;  // 0 = no explicit port
  std::string path;      // encoded form, e.g. "/paper/8"
  std::string query;     // encoded form without '?', e.g. "r=23&m=rea"
  std::string fragment;  // without '#'

  bool is_absolute() const noexcept { return !scheme.empty(); }
  bool has_authority() const noexcept { return !host.empty(); }

  // Effective port (explicit, or scheme default: http=80, https=443, else 0).
  std::uint16_t effective_port() const noexcept;

  QueryMap query_map() const { return QueryMap::parse(query); }

  // Serialize. Includes the fragment.
  std::string to_string() const;
  // Serialize without the fragment (fragments never reach the server).
  std::string without_fragment() const;
  // "scheme://host[:port]" (empty for relative refs).
  std::string origin() const;

  bool operator==(const Url&) const = default;
};

// Parse an absolute URL or a relative reference. Returns nullopt on
// irrecoverably malformed input (e.g. bad port). Lenient elsewhere.
std::optional<Url> parse(std::string_view text);

// RFC 3986 §5.2 relative resolution: resolve `ref` against absolute `base`.
Url resolve(const Url& base, const Url& ref);
std::optional<Url> resolve(const Url& base, std::string_view ref);

// Remove "." and ".." segments from a path (RFC 3986 §5.2.4).
std::string remove_dot_segments(std::string_view path);

// Normalize for comparison: lowercase scheme/host, drop default port,
// remove dot segments, collapse empty path to "/", drop fragment.
Url normalized(const Url& u);

// Same scheme + host + effective port.
bool same_origin(const Url& a, const Url& b) noexcept;

}  // namespace mak::url
