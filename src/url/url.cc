#include "url/url.h"

#include <algorithm>
#include <cctype>

#include "support/strings.h"

namespace mak::url {

namespace {

bool is_unreserved(unsigned char c) noexcept {
  return std::isalnum(c) || c == '-' || c == '.' || c == '_' || c == '~';
}

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

char hex_digit(int v) noexcept {
  return static_cast<char>(v < 10 ? '0' + v : 'A' + (v - 10));
}

bool is_scheme_char(unsigned char c) noexcept {
  return std::isalnum(c) || c == '+' || c == '-' || c == '.';
}

}  // namespace

std::string encode_component(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    if (is_unreserved(c)) {
      out += static_cast<char>(c);
    } else {
      out += '%';
      out += hex_digit(c >> 4);
      out += hex_digit(c & 0xf);
    }
  }
  return out;
}

std::string decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = hex_value(text[i + 1]);
      const int lo = hex_value(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

// ---------------------------------------------------------------- QueryMap

QueryMap QueryMap::parse(std::string_view query) {
  QueryMap out;
  if (query.empty()) return out;
  for (const auto& pair : support::split(query, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    std::string key;
    std::string value;
    if (eq == std::string::npos) {
      key = pair;
    } else {
      key = pair.substr(0, eq);
      value = pair.substr(eq + 1);
    }
    // application/x-www-form-urlencoded: '+' means space.
    key = decode(support::replace_all(key, "+", " "));
    value = decode(support::replace_all(value, "+", " "));
    out.add(std::move(key), std::move(value));
  }
  return out;
}

void QueryMap::add(std::string key, std::string value) {
  params_.emplace_back(std::move(key), std::move(value));
}

void QueryMap::set(std::string_view key, std::string value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  add(std::string(key), std::move(value));
}

void QueryMap::remove(std::string_view key) {
  std::erase_if(params_, [&](const auto& kv) { return kv.first == key; });
}

bool QueryMap::has(std::string_view key) const noexcept {
  return std::any_of(params_.begin(), params_.end(),
                     [&](const auto& kv) { return kv.first == key; });
}

std::optional<std::string> QueryMap::get(std::string_view key) const {
  for (const auto& [k, v] : params_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::vector<std::string> QueryMap::get_all(std::string_view key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : params_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

std::string QueryMap::to_string() const {
  std::string out;
  for (const auto& [k, v] : params_) {
    if (!out.empty()) out += '&';
    out += encode_component(k);
    if (!v.empty() || true) {  // always keep '=' for round-trip stability
      out += '=';
      out += encode_component(v);
    }
  }
  return out;
}

// --------------------------------------------------------------------- Url

std::uint16_t Url::effective_port() const noexcept {
  if (port != 0) return port;
  if (scheme == "http") return 80;
  if (scheme == "https") return 443;
  return 0;
}

std::string Url::to_string() const {
  std::string out = without_fragment();
  if (!fragment.empty()) {
    out += '#';
    out += fragment;
  }
  return out;
}

std::string Url::without_fragment() const {
  std::string out;
  if (!scheme.empty()) {
    out += scheme;
    out += ':';
  }
  if (!host.empty()) {
    out += "//";
    out += host;
    if (port != 0) {
      out += ':';
      out += std::to_string(port);
    }
  }
  out += path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

std::string Url::origin() const {
  if (scheme.empty() || host.empty()) return {};
  std::string out = scheme + "://" + host;
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  return out;
}

std::optional<Url> parse(std::string_view text) {
  Url u;
  // Fragment first: everything after the first '#'.
  if (const std::size_t hash = text.find('#'); hash != std::string_view::npos) {
    u.fragment = std::string(text.substr(hash + 1));
    text = text.substr(0, hash);
  }
  // Scheme: letters then alnum/+/-/. followed by ':' (and not a single-char
  // Windows-drive false positive; irrelevant here).
  std::size_t scheme_end = std::string_view::npos;
  if (!text.empty() && std::isalpha(static_cast<unsigned char>(text[0]))) {
    for (std::size_t i = 1; i < text.size(); ++i) {
      if (text[i] == ':') {
        scheme_end = i;
        break;
      }
      if (!is_scheme_char(static_cast<unsigned char>(text[i]))) break;
    }
  }
  if (scheme_end != std::string_view::npos) {
    u.scheme = support::to_lower(text.substr(0, scheme_end));
    text = text.substr(scheme_end + 1);
  }
  // Authority.
  if (support::starts_with(text, "//")) {
    text = text.substr(2);
    std::size_t auth_end = text.find_first_of("/?");
    std::string_view authority =
        auth_end == std::string_view::npos ? text : text.substr(0, auth_end);
    text = auth_end == std::string_view::npos ? std::string_view{}
                                              : text.substr(auth_end);
    // Strip (ignored) userinfo.
    if (const std::size_t at = authority.rfind('@');
        at != std::string_view::npos) {
      authority = authority.substr(at + 1);
    }
    std::string_view host = authority;
    if (const std::size_t colon = authority.rfind(':');
        colon != std::string_view::npos) {
      const std::string_view port_text = authority.substr(colon + 1);
      host = authority.substr(0, colon);
      if (!port_text.empty()) {
        std::uint32_t port = 0;
        for (char c : port_text) {
          if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
          port = port * 10 + static_cast<std::uint32_t>(c - '0');
          if (port > 65535) return std::nullopt;
        }
        u.port = static_cast<std::uint16_t>(port);
      }
    }
    u.host = support::to_lower(host);
  }
  // Query.
  if (const std::size_t q = text.find('?'); q != std::string_view::npos) {
    u.query = std::string(text.substr(q + 1));
    text = text.substr(0, q);
  }
  u.path = std::string(text);
  return u;
}

std::string remove_dot_segments(std::string_view path) {
  std::vector<std::string_view> output;
  std::string_view input = path;
  const bool absolute = support::starts_with(path, "/");
  while (!input.empty()) {
    if (support::starts_with(input, "../")) {
      input = input.substr(3);
    } else if (support::starts_with(input, "./")) {
      input = input.substr(2);
    } else if (input == "/." || support::starts_with(input, "/./")) {
      input = input == "/." ? std::string_view("/") : input.substr(2);
    } else if (input == "/.." || support::starts_with(input, "/../")) {
      input = input == "/.." ? std::string_view("/") : input.substr(3);
      if (!output.empty()) output.pop_back();
    } else if (input == "." || input == "..") {
      input = {};
    } else {
      // Move the first segment (up to but excluding the next '/') to output.
      std::size_t next = input.find('/', input[0] == '/' ? 1 : 0);
      if (next == std::string_view::npos) next = input.size();
      output.push_back(input.substr(0, next));
      input = input.substr(next);
    }
  }
  std::string result;
  for (const auto& seg : output) result.append(seg);
  if (absolute && result.empty()) result = "/";
  return result;
}

Url resolve(const Url& base, const Url& ref) {
  Url target;
  if (ref.is_absolute()) {
    target = ref;
    target.path = remove_dot_segments(target.path);
    return target;
  }
  target.scheme = base.scheme;
  if (ref.has_authority()) {
    target.host = ref.host;
    target.port = ref.port;
    target.path = remove_dot_segments(ref.path);
    target.query = ref.query;
  } else {
    target.host = base.host;
    target.port = base.port;
    if (ref.path.empty()) {
      target.path = base.path;
      target.query = ref.query.empty() ? base.query : ref.query;
    } else {
      if (support::starts_with(ref.path, "/")) {
        target.path = remove_dot_segments(ref.path);
      } else {
        // Merge: base path up to its last '/', then the reference.
        std::string merged;
        if (base.has_authority() && base.path.empty()) {
          merged = "/" + ref.path;
        } else {
          const std::size_t slash = base.path.rfind('/');
          merged = (slash == std::string::npos
                        ? std::string()
                        : base.path.substr(0, slash + 1)) +
                   ref.path;
        }
        target.path = remove_dot_segments(merged);
      }
      target.query = ref.query;
    }
  }
  target.fragment = ref.fragment;
  return target;
}

std::optional<Url> resolve(const Url& base, std::string_view ref) {
  const auto parsed = parse(ref);
  if (!parsed) return std::nullopt;
  return resolve(base, *parsed);
}

Url normalized(const Url& u) {
  Url out = u;
  out.scheme = support::to_lower(out.scheme);
  out.host = support::to_lower(out.host);
  if ((out.scheme == "http" && out.port == 80) ||
      (out.scheme == "https" && out.port == 443)) {
    out.port = 0;
  }
  out.path = remove_dot_segments(out.path);
  if (out.has_authority() && out.path.empty()) out.path = "/";
  out.fragment.clear();
  return out;
}

bool same_origin(const Url& a, const Url& b) noexcept {
  return a.scheme == b.scheme && a.host == b.host &&
         a.effective_port() == b.effective_port();
}

}  // namespace mak::url
