// Reproduces Table II: estimated mean code coverage of MAK, WebExplor and
// QExplore on the 11 testbed applications.
//
// Protocol (Section V-A): 10 repetitions x 30 virtual minutes per
// app/crawler pair. Ground truth per app: union of lines covered by all
// crawlers across all runs (PHP / Xdebug) or the declared total line count
// (Node.js / coverage-node). Override the protocol with MAK_REPS,
// MAK_BUDGET_MINUTES, MAK_SAMPLE_SECONDS.
// Besides the text table, the run is captured as a machine-readable artifact
// (default results/BENCH_coverage.json, overridable / disableable via
// MAK_BENCH_JSON — see docs/observability.md): one entry per app/crawler
// pair plus the full metrics-registry snapshot, for tools/metrics_diff.
// With --workers N (N >= 1) repetitions run in crash-contained worker
// processes via the orchestrator (docs/robustness.md); completed repetitions
// are bit-identical to the serial path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>

#include "harness/aggregate.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "harness/orchestrator.h"
#include "harness/report.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace mak;
  using harness::CrawlerKind;

  // Orchestrator workers re-exec this binary in --worker mode.
  if (harness::is_worker_invocation(argc, argv)) {
    return harness::worker_main(argc, argv);
  }

  std::size_t workers = 0;  // 0 = serial in-process repetitions
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--workers N]\n", argv[0]);
      return 2;
    }
  }
  harness::OrchestratorConfig orch = harness::orchestrator_from_env();
  if (workers > 0) orch.workers = workers;

  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind crawlers[] = {CrawlerKind::kMak, CrawlerKind::kWebExplor,
                                  CrawlerKind::kQExplore};

  std::printf(
      "Table II: estimated mean code coverage (%% of ground truth)\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  harness::TextTable table(
      {"Application", "MAK", "WebExplor", "QExplore", "ground truth"});
  std::vector<harness::BenchEntry> entries;

  for (const auto& info : apps::app_catalog()) {
    std::vector<std::vector<harness::RunResult>> all_runs;
    for (const CrawlerKind kind : crawlers) {
      all_runs.push_back(
          workers > 0 ? harness::run_orchestrated(info, kind, protocol.run,
                                                  protocol.repetitions, orch)
                      : harness::run_repeated(info, kind, protocol.run,
                                              protocol.repetitions));
    }
    const std::size_t ground_truth = harness::estimate_ground_truth(all_runs);
    std::vector<std::string> row = {info.name};
    for (std::size_t i = 0; i < all_runs.size(); ++i) {
      const double percent =
          harness::mean_coverage_percent(all_runs[i], ground_truth);
      row.push_back(support::format_fixed(percent, 1) + "%");
      entries.push_back({std::string(info.name) + "/" +
                             std::string(to_string(crawlers[i])),
                         percent, "percent", /*higher_is_better=*/true});
    }
    entries.push_back({std::string(info.name) + "/ground_truth",
                       static_cast<double>(ground_truth), "lines",
                       /*higher_is_better=*/true});
    row.push_back(support::format_thousands(
        static_cast<std::int64_t>(ground_truth)));
    table.add_row(std::move(row));
    std::fflush(stdout);
  }

  table.print(std::cout);
  std::printf(
      "\npaper (Table II): MAK wins on every application; e.g. HotCRP "
      "87.3%% vs 77.2%% (WebExplor) vs 71.2%% (QExplore).\n");

  const auto snapshot = support::MetricsRegistry::global().snapshot();
  harness::write_bench_json_file("MAK_BENCH_JSON",
                                 "results/BENCH_coverage.json",
                                 "coverage_bench", entries, &snapshot);
  return 0;
}
