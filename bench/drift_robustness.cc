// Drift robustness: the bandit-policy panel under nonstationary apps.
//
// Runs every policy in rl::policy_catalog() (via its MAK crawler variant)
// over a small population of generated apps, once stationary and once per
// drift profile (webapp/drift.h: deploy reroutes, A/B flips, content churn,
// session-expiry storms). Reports per-run coverage, the per-policy
// cumulative regret (rl/regret.h — the Bubeck & Cesa-Bianchi weak-regret
// high-water mark), and the headline "retention": coverage under drift as a
// percentage of the same policy's stationary coverage. Adversarial policies
// (Exp3 family) should retain more than stochastic ones (UCB1, Thompson) —
// the paper's argument for Exp3.1, measured instead of assumed.
//
// Protocol: MAK_REPS / MAK_BUDGET_MINUTES / MAK_SAMPLE_SECONDS override;
// unset, the sweep defaults to 1 repetition x 6 virtual minutes per cell.
//
// The artifact (default results/BENCH_drift.json, override/disable via
// MAK_BENCH_JSON) omits the metrics-registry block so repeated runs of the
// same configuration are BYTE-IDENTICAL; CI runs it twice and diffs with
// tools/metrics_diff --identical, then gates against the committed baseline.
//
//   drift_robustness [--apps N] [--pop-seed S] [--workers N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "apps/generator/generator.h"
#include "harness/aggregate.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "harness/orchestrator.h"
#include "harness/report.h"
#include "rl/policy_factory.h"
#include "support/strings.h"

namespace {

struct DriftScenario {
  const char* name;  // entry-name segment
  const char* spec;  // DriftProfile::parse input ("off" = stationary)
};

// Explicit sub-minute periods rather than the CLI presets: the presets
// phase their events over tens of minutes (a realistic deploy cadence),
// which a short CI budget never reaches. These compress the same event mix
// so every mechanism fires several times even in a 2-virtual-minute run.
constexpr DriftScenario kScenarios[] = {
    {"none", "off"},
    {"moderate",
     "deploy_period_ms=90000,deploy_offset_ms=45000,reroute=0.25,"
     "flip_period_ms=60000,flip=0.2,churn_period_ms=45000,churn=0.25,"
     "storm_period_ms=90000,storm_duration_ms=15000,storm_offset_ms=30000,"
     "storm_expire=0.5"},
    {"heavy",
     "deploy_period_ms=45000,deploy_offset_ms=20000,reroute=0.4,"
     "flip_period_ms=30000,flip=0.5,churn_period_ms=20000,churn=0.5,"
     "storm_period_ms=45000,storm_duration_ms=20000,storm_offset_ms=15000,"
     "storm_expire=0.9"},
};

// Mean cumulative regret over the runs that tracked it; 0 when none did
// (all repetitions failed in orchestrated mode).
double mean_cumulative_regret(const std::vector<mak::harness::RunResult>& runs) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& run : runs) {
    if (!run.regret_tracked) continue;
    sum += run.cumulative_regret;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mak;

  // Orchestrator workers re-exec this binary in --worker mode.
  if (harness::is_worker_invocation(argc, argv)) {
    return harness::worker_main(argc, argv);
  }

  std::size_t app_count = 2;
  std::uint64_t population_seed = 7;
  std::size_t workers = 0;  // 0 = serial in-process runs
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--apps") == 0 && i + 1 < argc) {
      app_count =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--pop-seed") == 0 && i + 1 < argc) {
      population_seed =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--apps N] [--pop-seed S] [--workers N]\n",
                   argv[0]);
      return 2;
    }
  }
  harness::OrchestratorConfig orch = harness::orchestrator_from_env();
  if (workers > 0) orch.workers = workers;

  harness::Protocol protocol = harness::protocol_from_env();
  if (std::getenv("MAK_REPS") == nullptr) protocol.repetitions = 1;
  if (std::getenv("MAK_BUDGET_MINUTES") == nullptr) {
    protocol.run.budget = 6 * support::kMillisPerMinute;
  }

  // The policy panel: every catalog policy, resolved to its MAK variant.
  const auto& policies = rl::policy_catalog();
  std::vector<harness::CrawlerKind> panel;
  for (const auto& policy : policies) {
    const auto kind = harness::crawler_for_policy(policy.name);
    if (!kind.has_value()) {
      std::fprintf(stderr,
                   "drift_robustness: policy '%s' has no crawler binding\n",
                   std::string(policy.name).c_str());
      return 3;
    }
    panel.push_back(*kind);
  }

  const auto described =
      apps::generator::population(population_seed, app_count);
  std::printf(
      "Drift robustness: %zu policies x %zu generated apps (seed %llu) x %zu "
      "drift scenarios, %zu reps x %lld virtual minutes\n\n",
      policies.size(), described.size(),
      static_cast<unsigned long long>(population_seed), std::size(kScenarios),
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget / support::kMillisPerMinute));

  std::vector<harness::BenchEntry> entries;
  // coverage[s][p]: per scenario and policy, the per-app coverage percents.
  std::vector<std::vector<std::vector<double>>> coverage(
      std::size(kScenarios),
      std::vector<std::vector<double>>(policies.size()));

  for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
    const DriftScenario& scenario = kScenarios[s];
    const auto drift = webapp::DriftProfile::parse(scenario.spec);
    if (!drift.has_value()) {
      std::fprintf(stderr, "drift_robustness: bad drift spec '%s'\n",
                   scenario.spec);
      return 3;
    }
    harness::RunConfig config = protocol.run;
    config.drift = *drift;

    harness::TextTable table({std::string("policy (") + scenario.name + ")",
                              "coverage", "regret"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      double coverage_sum = 0.0;
      double regret_sum = 0.0;
      for (const auto& app : described) {
        const auto info = apps::resolve_app(app.name);
        if (!info.has_value()) {
          std::fprintf(stderr, "drift_robustness: cannot resolve %s\n",
                       app.name.c_str());
          return 3;
        }
        const auto runs =
            workers > 0
                ? harness::run_orchestrated(*info, panel[p], config,
                                            protocol.repetitions, orch)
                : harness::run_repeated(*info, panel[p], config,
                                        protocol.repetitions);
        const double percent =
            harness::mean_coverage_percent(runs, app.reachable_lines);
        const double regret = mean_cumulative_regret(runs);
        coverage[s][p].push_back(percent);
        coverage_sum += percent;
        regret_sum += regret;
        const std::string prefix = std::string("drift/") + scenario.name +
                                   "/" + app.name + "/" +
                                   std::string(policies[p].name);
        entries.push_back({prefix + "/coverage", percent, "percent",
                           /*higher_is_better=*/true});
        entries.push_back({prefix + "/regret", regret, "regret",
                           /*higher_is_better=*/false});
      }
      const double apps_n = static_cast<double>(described.size());
      table.add_row({std::string(policies[p].name),
                     support::format_fixed(coverage_sum / apps_n, 1) + "%",
                     support::format_fixed(regret_sum / apps_n, 2)});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  // Retention: coverage under drift relative to the same policy's
  // stationary coverage, averaged over apps. 100% = unaffected by drift.
  for (std::size_t s = 1; s < std::size(kScenarios); ++s) {
    harness::TextTable table({std::string("policy"),
                              std::string("retention (") + kScenarios[s].name +
                                  ")"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t a = 0; a < described.size(); ++a) {
        const double baseline = coverage[0][p][a];
        if (baseline <= 0.0) continue;
        sum += 100.0 * coverage[s][p][a] / baseline;
        ++count;
      }
      const double retention =
          count == 0 ? 0.0 : sum / static_cast<double>(count);
      table.add_row({std::string(policies[p].name),
                     support::format_fixed(retention, 1) + "%"});
      entries.push_back({std::string("drift/") + kScenarios[s].name + "/" +
                             std::string(policies[p].name) + "/retention",
                         retention, "percent", /*higher_is_better=*/true});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  // No metrics block: repeated runs of the same configuration must produce
  // byte-identical artifacts (CI diffs two runs with --identical).
  harness::write_bench_json_file("MAK_BENCH_JSON", "results/BENCH_drift.json",
                                 "drift_robustness", entries, nullptr);
  return 0;
}
