// Fault-robustness sweep: does the adversarial-bandit choice earn its keep
// when the environment actually misbehaves?
//
// The paper argues (Section II-A.2, IV) that crawl rewards are adversarial,
// which is why MAK runs Exp3.1 rather than a stochastic bandit. This bench
// makes the environment genuinely adversarial — escalating fault profiles
// from a clean network up to heavy 5xx bursts, connection drops, latency
// spikes and scheduled degradation windows — and compares MAK against the
// stochastic-bandit ablations (UCB1, Thompson sampling, epsilon-greedy)
// under each profile.
//
// Output: a per-profile coverage table on stdout and a JSON document with
// every run (including fault/retry counters) written to
// results/fault_robustness.json (override with MAK_FAULT_OUT).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/trace.h"  // json_escape
#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "support/strings.h"

namespace {

struct ProfileCase {
  const char* name;
  const char* spec;  // empty = fault-free baseline
};

constexpr ProfileCase kProfiles[] = {
    {"none", ""},
    {"light", "light"},
    {"moderate", "moderate"},
    {"heavy", "heavy"},
};

constexpr const char* kApps[] = {"AddressBook", "PhpBB2", "HotCRP"};

}  // namespace

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind crawlers[] = {
      CrawlerKind::kMak, CrawlerKind::kMakUcb1, CrawlerKind::kMakThompson,
      CrawlerKind::kMakEpsilonGreedy};

  std::printf(
      "Fault robustness: MAK (Exp3.1) vs stochastic-bandit ablations under\n"
      "escalating fault profiles\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  // app -> crawler -> profile -> runs
  std::vector<std::vector<std::vector<std::vector<harness::RunResult>>>> all;
  std::vector<const apps::AppInfo*> infos;
  for (const char* app_name : kApps) {
    for (const auto& info : apps::app_catalog()) {
      if (info.name == app_name) infos.push_back(&info);
    }
  }

  for (const apps::AppInfo* info : infos) {
    all.emplace_back();
    for (const CrawlerKind kind : crawlers) {
      all.back().emplace_back();
      for (const ProfileCase& profile : kProfiles) {
        harness::RunConfig config = protocol.run;
        if (*profile.spec != '\0') {
          config.fault = *httpsim::FaultProfile::parse(profile.spec);
        }
        all.back().back().push_back(harness::run_repeated(
            *info, kind, config, protocol.repetitions));
      }
    }
  }

  // Ground truth per app: union over every crawler, profile and run — the
  // fault-free runs dominate it, so percentages are comparable across
  // profiles ("how much of the reachable app survives the faults").
  std::vector<std::size_t> ground_truth;
  for (std::size_t a = 0; a < all.size(); ++a) {
    std::vector<std::vector<harness::RunResult>> flat;
    for (const auto& by_profile : all[a]) {
      for (const auto& runs : by_profile) flat.push_back(runs);
    }
    ground_truth.push_back(harness::estimate_ground_truth(flat));
  }

  for (std::size_t p = 0; p < std::size(kProfiles); ++p) {
    std::printf("profile '%s'%s%s\n", kProfiles[p].name,
                *kProfiles[p].spec != '\0' ? ": " : "",
                *kProfiles[p].spec != '\0'
                    ? httpsim::FaultProfile::parse(kProfiles[p].spec)
                          ->describe()
                          .c_str()
                    : "");
    harness::TextTable table({"Application", "MAK", "MAK-ucb1",
                              "MAK-thompson", "MAK-eps-greedy",
                              "mean retries (MAK)"});
    for (std::size_t a = 0; a < all.size(); ++a) {
      std::vector<std::string> row = {infos[a]->name};
      for (std::size_t c = 0; c < std::size(crawlers); ++c) {
        row.push_back(
            support::format_fixed(harness::mean_coverage_percent(
                                      all[a][c][p], ground_truth[a]),
                                  1) +
            "%");
      }
      double retries = 0.0;
      for (const auto& run : all[a][0][p]) {
        retries += static_cast<double>(run.retries);
      }
      retries /= static_cast<double>(all[a][0][p].size());
      row.push_back(support::format_fixed(retries, 1));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }

  // Coverage retention: mean coverage under 'heavy' as a fraction of the
  // same crawler's fault-free coverage, averaged over apps. The headline
  // number: how gracefully each policy degrades.
  std::printf("coverage retention under 'heavy' (vs own fault-free run):\n");
  for (std::size_t c = 0; c < std::size(crawlers); ++c) {
    double retention = 0.0;
    for (std::size_t a = 0; a < all.size(); ++a) {
      const double clean = harness::mean_covered(all[a][c][0]);
      const double heavy =
          harness::mean_covered(all[a][c][std::size(kProfiles) - 1]);
      retention += clean > 0.0 ? heavy / clean : 0.0;
    }
    retention /= static_cast<double>(all.size());
    std::printf("  %-16s %s%%\n",
                std::string(to_string(crawlers[c])).c_str(),
                support::format_fixed(100.0 * retention, 1).c_str());
  }

  const char* out_env = std::getenv("MAK_FAULT_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env
                                             : "results/fault_robustness.json";
  std::filesystem::path path(out_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\"bench\":\"fault_robustness\",\"repetitions\":"
      << protocol.repetitions << ",\"budget_minutes\":"
      << protocol.run.budget / support::kMillisPerMinute << ",\"profiles\":[";
  for (std::size_t p = 0; p < std::size(kProfiles); ++p) {
    if (p > 0) out << ',';
    out << "{\"name\":\"" << kProfiles[p].name << "\",\"spec\":\""
        << kProfiles[p].spec << "\",\"apps\":[";
    for (std::size_t a = 0; a < all.size(); ++a) {
      if (a > 0) out << ',';
      out << "{\"app\":\"" << core::json_escape(infos[a]->name)
          << "\",\"ground_truth\":" << ground_truth[a] << ",\"runs\":[";
      bool first = true;
      for (std::size_t c = 0; c < std::size(crawlers); ++c) {
        for (const auto& run : all[a][c][p]) {
          if (!first) out << ',';
          first = false;
          out << harness::run_to_json(run, /*include_series=*/false);
        }
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}\n";
  std::printf("\njson written to: %s\n", out_path.c_str());
  return 0;
}
