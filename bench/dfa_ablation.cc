// Tests the paper's framework assumption (iii): leaving WebExplor's DFA
// guidance out "does not overly penalize WebExplor, because the authors show
// that WebExplor with and without DFA converges to around the same code
// coverage in 30 minutes".
//
// We implement the DFA (shortest recorded transition path toward a state
// with untried actions, engaged after a stagnation streak) and compare.
#include <cstdio>
#include <iostream>

#include "baselines/webexplor.h"
#include "core/browser.h"
#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "httpsim/network.h"
#include "support/strings.h"

namespace {

using namespace mak;

struct DfaRun {
  std::size_t covered = 0;
  std::size_t activations = 0;
  std::size_t guided_steps = 0;
};

DfaRun run_webexplor(const apps::AppInfo& info, bool with_dfa,
                     support::VirtualMillis budget, std::uint64_t seed) {
  auto app = info.factory();
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  support::Rng master(seed);
  core::Browser browser(network, app->seed_url(), master.fork());
  baselines::WebExplorConfig config;
  config.enable_dfa = with_dfa;
  baselines::WebExplorCrawler crawler(master.fork(), config);
  crawler.start(browser);
  const support::Deadline deadline(clock, budget);
  while (!deadline.expired()) {
    clock.advance(700);
    crawler.step(browser);
  }
  return DfaRun{app->tracker().covered_lines(),
                crawler.guidance_activations(), crawler.guided_steps()};
}

}  // namespace

int main() {
  using namespace mak;

  const harness::Protocol protocol = harness::protocol_from_env();
  std::printf(
      "WebExplor DFA ablation (assumption (iii) of the paper)\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  harness::TextTable table({"Application", "WebExplor", "WebExplor+DFA",
                            "delta %", "DFA plans", "guided steps"});
  for (const apps::AppInfo* info : apps::php_apps()) {
    double without_total = 0.0;
    double with_total = 0.0;
    double activations = 0.0;
    double guided = 0.0;
    for (std::size_t rep = 0; rep < protocol.repetitions; ++rep) {
      const auto seed = support::mix64(0xdfa0 + rep);
      without_total += static_cast<double>(
          run_webexplor(*info, false, protocol.run.budget, seed).covered);
      const auto with_dfa =
          run_webexplor(*info, true, protocol.run.budget, seed);
      with_total += static_cast<double>(with_dfa.covered);
      activations += static_cast<double>(with_dfa.activations);
      guided += static_cast<double>(with_dfa.guided_steps);
    }
    const double reps = static_cast<double>(protocol.repetitions);
    const double without_mean = without_total / reps;
    const double with_mean = with_total / reps;
    table.add_row(
        {info->name,
         support::format_thousands(static_cast<std::int64_t>(without_mean)),
         support::format_thousands(static_cast<std::int64_t>(with_mean)),
         support::format_fixed(
             100.0 * (with_mean - without_mean) / without_mean, 1),
         support::format_fixed(activations / reps, 0),
         support::format_fixed(guided / reps, 0)});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\npaper's justification holds if |delta| stays small: the DFA\n"
      "changes WHERE WebExplor wanders, not how much it covers in 30\n"
      "minutes.\n");
  return 0;
}
