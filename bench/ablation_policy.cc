// Design-choice ablation (DESIGN.md §5.3): the Exp3.1 policy vs fixed-gamma
// Exp3 and epsilon-greedy.
//
// Part 1 — controlled bandit: a piecewise-stationary 3-armed adversarial
// bandit whose best arm rotates every `phase` steps. Exp3.1's epoch resets
// let it track the rotation; epsilon-greedy's stationary means cannot.
//
// Part 2 — end-to-end: the same three policies inside MAK on the PHP apps.
#include <cstdio>
#include <iostream>
#include <memory>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "rl/epsilon_greedy.h"
#include "rl/thompson.h"
#include "rl/ucb.h"
#include "rl/exp3.h"
#include "support/strings.h"

namespace {

// Expected reward of `arm` at time t: the good arm pays 0.9, others 0.1.
double arm_reward(std::size_t arm, std::size_t t, std::size_t phase,
                  mak::support::Rng& rng) {
  const std::size_t good = (t / phase) % 3;
  const double p = arm == good ? 0.9 : 0.1;
  return rng.chance(p) ? 1.0 : 0.0;
}

double play(mak::rl::BanditPolicy& policy, std::size_t horizon,
            std::size_t phase, std::uint64_t seed) {
  mak::support::Rng rng(seed);
  double total = 0.0;
  for (std::size_t t = 0; t < horizon; ++t) {
    const std::size_t arm = policy.choose(rng);
    const double r = arm_reward(arm, t, phase, rng);
    policy.update(arm, r);
    total += r;
  }
  return total;
}

}  // namespace

int main() {
  using namespace mak;

  // ---- Part 1: piecewise-stationary bandit ----
  constexpr std::size_t kHorizon = 30000;
  constexpr std::size_t kPhase = 3000;
  constexpr std::size_t kTrials = 10;
  std::printf(
      "Policy ablation, part 1: piecewise-stationary 3-armed bandit\n"
      "(horizon %zu, best arm rotates every %zu steps, %zu trials)\n\n",
      kHorizon, kPhase, kTrials);

  double exp31_total = 0.0;
  double exp3_total = 0.0;
  double eps_total = 0.0;
  double ucb_total = 0.0;
  double thompson_total = 0.0;
  double oracle_total = 0.9 * static_cast<double>(kHorizon);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    rl::Exp31 exp31(3);
    rl::Exp3 exp3(3, 0.1);
    rl::EpsilonGreedy eps(3, 0.1);
    rl::Ucb1 ucb(3);
    rl::ThompsonSampling thompson(3);
    exp31_total += play(exp31, kHorizon, kPhase, 100 + trial);
    exp3_total += play(exp3, kHorizon, kPhase, 100 + trial);
    eps_total += play(eps, kHorizon, kPhase, 100 + trial);
    ucb_total += play(ucb, kHorizon, kPhase, 100 + trial);
    thompson_total += play(thompson, kHorizon, kPhase, 100 + trial);
  }
  std::printf("  oracle (always best arm):  %.0f expected\n", oracle_total);
  std::printf("  Exp3.1:                    %.0f\n",
              exp31_total / kTrials);
  std::printf("  Exp3 (gamma=0.1):          %.0f\n", exp3_total / kTrials);
  std::printf("  epsilon-greedy (eps=0.1):  %.0f\n", eps_total / kTrials);
  std::printf("  UCB1 (stochastic MAB):     %.0f\n", ucb_total / kTrials);
  std::printf("  Thompson sampling:         %.0f\n\n",
              thompson_total / kTrials);

  // ---- Part 2: inside MAK on the PHP apps ----
  using harness::CrawlerKind;
  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind variants[] = {CrawlerKind::kMak,
                                  CrawlerKind::kMakExp3Fixed,
                                  CrawlerKind::kMakEpsilonGreedy,
                                  CrawlerKind::kMakUcb1,
                                  CrawlerKind::kMakThompson};
  std::printf(
      "Policy ablation, part 2: mean covered lines on the PHP apps "
      "(%zu reps x %lld virtual minutes)\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));
  harness::TextTable table({"Application", "MAK (Exp3.1)", "Exp3 fixed",
                            "eps-greedy", "UCB1", "Thompson"});
  for (const apps::AppInfo* info : apps::php_apps()) {
    std::vector<std::string> row = {info->name};
    for (const CrawlerKind kind : variants) {
      const auto runs = harness::run_repeated(*info, kind, protocol.run,
                                              protocol.repetitions);
      row.push_back(support::format_thousands(
          static_cast<std::int64_t>(harness::mean_covered(runs))));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
