// Design-choice ablation (DESIGN.md §5.2): MAK's standardized link-coverage
// reward vs (a) the raw, unstandardized increment and (b) a count-based
// curiosity reward, holding everything else fixed.
#include <cstdio>
#include <iostream>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "support/strings.h"

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind variants[] = {CrawlerKind::kMak,
                                  CrawlerKind::kMakRawReward,
                                  CrawlerKind::kMakCuriosityReward,
                                  CrawlerKind::kMakDomNovelty};

  std::printf(
      "Reward ablation: standardized link coverage vs raw vs curiosity\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  harness::TextTable table({"Application", "MAK (standardized)",
                            "MAK raw reward", "MAK curiosity",
                            "MAK DOM novelty"});
  for (const apps::AppInfo* info : apps::php_apps()) {
    std::vector<std::string> row = {info->name};
    for (const CrawlerKind kind : variants) {
      const auto runs = harness::run_repeated(*info, kind, protocol.run,
                                              protocol.repetitions);
      row.push_back(support::format_thousands(
          static_cast<std::int64_t>(harness::mean_covered(runs))));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nexpected: the standardized reward matches or beats both variants; "
      "curiosity is the weakest on search/trap-heavy apps.\n");
  return 0;
}
