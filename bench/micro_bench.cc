// Micro-benchmarks (google-benchmark) for the hot paths of the framework:
// Exp3.1 steps, leveled-deque operations, HTML tokenize/parse/extract, URL
// parsing/resolution, and a full simulated crawl step.
#include <benchmark/benchmark.h>

#include "apps/catalog.h"
#include "core/browser.h"
#include "core/frontier.h"
#include "core/mak.h"
#include "html/interactables.h"
#include "html/parser.h"
#include "httpsim/network.h"
#include "rl/exp3.h"
#include "support/rng.h"
#include "url/url.h"

namespace {

using namespace mak;

void BM_Exp31Step(benchmark::State& state) {
  rl::Exp31 policy(3);
  support::Rng rng(1);
  for (auto _ : state) {
    const std::size_t arm = policy.choose(rng);
    policy.update(arm, rng.uniform01());
  }
}
BENCHMARK(BM_Exp31Step);

void BM_LeveledDequePushTake(benchmark::State& state) {
  support::Rng rng(2);
  std::size_t i = 0;
  core::LeveledDeque deque;
  for (auto _ : state) {
    core::ResolvedAction action;
    action.element.kind = html::InteractableKind::kLink;
    action.element.method = "GET";
    action.target = *url::parse("http://h.test/p/" + std::to_string(i++));
    deque.push(action);
    if (auto taken = deque.take(core::Arm::kRandom, rng)) {
      deque.requeue(*taken);
    }
  }
}
BENCHMARK(BM_LeveledDequePushTake);

std::string sample_page() {
  auto app = apps::make_addressbook();
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  httpsim::CookieJar jar;
  auto fetched = network.fetch(httpsim::Method::kGet, app->seed_url(),
                               url::QueryMap{}, jar);
  return fetched.response.body;
}

void BM_HtmlParse(benchmark::State& state) {
  const std::string body = sample_page();
  for (auto _ : state) {
    auto doc = html::parse(body);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_HtmlParse);

void BM_ExtractInteractables(benchmark::State& state) {
  const auto doc = html::parse(sample_page());
  for (auto _ : state) {
    auto items = html::extract_interactables(doc);
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_ExtractInteractables);

void BM_UrlParseResolve(benchmark::State& state) {
  const auto base = *url::parse("http://app.test/shop/product/7?page=2");
  for (auto _ : state) {
    auto resolved = url::resolve(base, "../cart?item=3#frag");
    benchmark::DoNotOptimize(resolved);
  }
}
BENCHMARK(BM_UrlParseResolve);

void BM_FullCrawlStep(benchmark::State& state) {
  auto app = apps::make_addressbook();
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  support::Rng master(3);
  core::Browser browser(network, app->seed_url(), master.fork());
  auto crawler = core::make_mak(master.fork());
  crawler->start(browser);
  for (auto _ : state) {
    crawler->step(browser);
  }
}
BENCHMARK(BM_FullCrawlStep);

}  // namespace

BENCHMARK_MAIN();
