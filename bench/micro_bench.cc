// Micro-benchmarks (google-benchmark) for the hot paths of the framework:
// Exp3.1 steps, leveled-deque operations, HTML tokenize/parse/extract, URL
// parsing/resolution, and a full simulated crawl step.
//
// Besides the usual console output, the run is captured as a machine-
// readable artifact (default results/BENCH_micro.json, overridable /
// disableable via MAK_BENCH_JSON — see docs/observability.md) so later PRs
// can gate performance with tools/metrics_diff.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <vector>

#include "apps/catalog.h"
#include "harness/bench_json.h"
#include "core/browser.h"
#include "core/frontier.h"
#include "core/link_ledger.h"
#include "core/mak.h"
#include "html/interactables.h"
#include "html/parser.h"
#include "httpsim/network.h"
#include "rl/exp3.h"
#include "support/rng.h"
#include "url/url.h"

namespace {

using namespace mak;

void BM_Exp31Step(benchmark::State& state) {
  rl::Exp31 policy(3);
  support::Rng rng(1);
  for (auto _ : state) {
    const std::size_t arm = policy.choose(rng);
    policy.update(arm, rng.uniform01());
  }
}
BENCHMARK(BM_Exp31Step);

void BM_LeveledDequePushTake(benchmark::State& state) {
  support::Rng rng(2);
  std::size_t i = 0;
  core::LeveledDeque deque;
  for (auto _ : state) {
    core::ResolvedAction action;
    action.element.kind = html::InteractableKind::kLink;
    action.element.method = "GET";
    action.target = *url::parse("http://h.test/p/" + std::to_string(i++));
    deque.push(action);
    if (auto taken = deque.take(core::Arm::kRandom, rng)) {
      deque.requeue(*taken);
    }
  }
}
BENCHMARK(BM_LeveledDequePushTake);

std::string sample_page() {
  auto app = apps::make_addressbook();
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  httpsim::CookieJar jar;
  auto fetched = network.fetch(httpsim::Method::kGet, app->seed_url(),
                               url::QueryMap{}, jar);
  return fetched.response.body;
}

void BM_HtmlParse(benchmark::State& state) {
  const std::string body = sample_page();
  for (auto _ : state) {
    auto doc = html::parse(body);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_HtmlParse);

void BM_ExtractInteractables(benchmark::State& state) {
  const auto doc = html::parse(sample_page());
  for (auto _ : state) {
    auto items = html::extract_interactables(doc);
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_ExtractInteractables);

// Dedup cost of re-pushing an already-interned frontier: after the first
// lap every push is a pure duplicate, the steady state of a crawl revisiting
// a small site.
void BM_FrontierDedup(benchmark::State& state) {
  core::LeveledDeque deque;
  std::vector<core::ResolvedAction> actions;
  for (std::size_t i = 0; i < 64; ++i) {
    core::ResolvedAction action;
    action.element.kind = html::InteractableKind::kLink;
    action.element.method = "GET";
    action.target = *url::parse("http://h.test/p/" + std::to_string(i));
    deque.push(action);
    actions.push_back(std::move(action));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deque.push(actions[i]));
    i = (i + 1) % actions.size();
  }
}
BENCHMARK(BM_FrontierDedup);

// Ledger absorb of a fully known page: every action's link is already
// interned, so this measures the memoized-identity fast path the reward
// computation takes on each of the crawl's ~tens of thousands of steps.
void BM_LinkLedgerAbsorb(benchmark::State& state) {
  const core::Page page = core::build_page(
      *url::parse("http://addressbook.test/"), 200, sample_page(),
      *url::parse("http://addressbook.test/"));
  core::LinkLedger ledger;
  ledger.absorb(page);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger.absorb(page));
  }
}
BENCHMARK(BM_LinkLedgerAbsorb);

// Parse-cache hit: fetching a body the browser has already parsed. This is
// the ~99% case of a crawl step and what BM_FullCrawlStep's speedup rides on.
void BM_ParseCacheHit(benchmark::State& state) {
  core::PageCache cache;
  const auto origin = *url::parse("http://addressbook.test/");
  const std::string body = sample_page();
  auto first = cache.lookup_or_build(origin, 200, body, origin);
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    auto page = cache.lookup_or_build(origin, 200, body, origin);
    benchmark::DoNotOptimize(page);
  }
}
BENCHMARK(BM_ParseCacheHit);

void BM_UrlParseResolve(benchmark::State& state) {
  const auto base = *url::parse("http://app.test/shop/product/7?page=2");
  for (auto _ : state) {
    auto resolved = url::resolve(base, "../cart?item=3#frag");
    benchmark::DoNotOptimize(resolved);
  }
}
BENCHMARK(BM_UrlParseResolve);

void BM_FullCrawlStep(benchmark::State& state) {
  auto app = apps::make_addressbook();
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  support::Rng master(3);
  core::Browser browser(network, app->seed_url(), master.fork());
  auto crawler = core::make_mak(master.fork());
  crawler->start(browser);
  for (auto _ : state) {
    crawler->step(browser);
  }
}
BENCHMARK(BM_FullCrawlStep);

// Console reporter that also captures each benchmark's adjusted real time
// for the JSON artifact. Output options replicate what BENCHMARK_MAIN's
// default reporter picks (color only on a terminal), keeping the text
// output byte-identical to the stock main.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(OutputOptions options)
      : benchmark::ConsoleReporter(options) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      mak::harness::BenchEntry entry;
      entry.name = run.benchmark_name();
      entry.value = run.GetAdjustedRealTime();
      entry.unit = benchmark::GetTimeUnitString(run.time_unit);
      entry.higher_is_better = false;  // time per iteration
      entries_.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<mak::harness::BenchEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<mak::harness::BenchEntry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter(
      isatty(fileno(stdout)) != 0
          ? benchmark::ConsoleReporter::OO_Color
          : benchmark::ConsoleReporter::OO_None);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const auto snapshot = mak::support::MetricsRegistry::global().snapshot();
  mak::harness::write_bench_json_file("MAK_BENCH_JSON",
                                      "results/BENCH_micro.json",
                                      "micro_bench", reporter.entries(),
                                      &snapshot);
  return 0;
}
