// Reproduces the Section V-C ablation: cumulative regret of MAK against the
// non-learning crawlers BFS, DFS and Random (its three arms executed
// exclusively).
//
// Regret of crawler c on app w = (best crawler's mean covered lines - c's
// mean covered lines) / total lines of w, in percent; cumulative regret sums
// over the 11 applications. Paper: MAK 14.9, BFS 36.0, Random 70.2,
// DFS 126.7.
#include <cstdio>
#include <iostream>
#include <map>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "support/strings.h"

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind crawlers[] = {CrawlerKind::kMak, CrawlerKind::kBfs,
                                  CrawlerKind::kDfs, CrawlerKind::kRandom};

  std::printf(
      "Ablation (Section V-C): regret of MAK vs its static arms\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  std::map<std::string, double> cumulative;
  harness::TextTable table(
      {"Application", "MAK", "BFS", "DFS", "Random", "best"});

  for (const auto& info : apps::app_catalog()) {
    std::map<std::string, double> mean_lines;
    double total_lines = 0.0;
    for (const CrawlerKind kind : crawlers) {
      const auto runs = harness::run_repeated(info, kind, protocol.run,
                                              protocol.repetitions);
      mean_lines[std::string(to_string(kind))] = harness::mean_covered(runs);
      total_lines = static_cast<double>(runs.front().total_lines);
    }
    const auto regrets = harness::regrets_percent(mean_lines, total_lines);
    std::string best;
    for (const auto& [name, regret] : regrets) {
      cumulative[name] += regret;
      if (regret == 0.0) best = name;
    }
    table.add_row({info.name,
                   support::format_fixed(regrets.at("MAK"), 1),
                   support::format_fixed(regrets.at("BFS"), 1),
                   support::format_fixed(regrets.at("DFS"), 1),
                   support::format_fixed(regrets.at("Random"), 1), best});
    std::fflush(stdout);
  }

  table.add_row({"cumulative",
                 support::format_fixed(cumulative.at("MAK"), 1),
                 support::format_fixed(cumulative.at("BFS"), 1),
                 support::format_fixed(cumulative.at("DFS"), 1),
                 support::format_fixed(cumulative.at("Random"), 1), ""});
  table.print(std::cout);
  std::printf(
      "\npaper: cumulative regret MAK 14.9 < BFS 36.0 < Random 70.2 < "
      "DFS 126.7.\n");
  return 0;
}
