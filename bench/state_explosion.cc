// Reproduces the Figure 1 / Section III pathologies with measurements:
//
//  (1) WebExplor on HotCRP: exact-URL state matching mints one state per
//      review-form alias (r= vs m=rea) although both execute the same
//      server-side code. We count abstract states vs distinct server
//      handlers actually covered.
//
//  (2) QExplore on Drupal: the shortcut panel changes its interactable
//      sequence with every submitted shortcut, minting a new state each
//      time although the new links only 404. We count states generated at
//      one URL over the run.
#include <cstdio>
#include <set>
#include <string>

#include "apps/catalog.h"
#include "baselines/qexplore.h"
#include "baselines/webexplor.h"
#include "core/browser.h"
#include "harness/experiment.h"
#include "httpsim/network.h"

using namespace mak;

namespace {

// Drive one crawler for `steps` atomic steps against a fresh app instance.
template <typename CrawlerT>
struct DrivenRun {
  std::unique_ptr<apps::SyntheticApp> app;
  std::unique_ptr<support::SimClock> clock;
  std::unique_ptr<httpsim::Network> network;
  std::unique_ptr<core::Browser> browser;
  std::unique_ptr<CrawlerT> crawler;
  std::set<std::string> distinct_urls;
};

template <typename CrawlerT>
DrivenRun<CrawlerT> drive(const char* app_name, std::size_t steps,
                          std::uint64_t seed) {
  DrivenRun<CrawlerT> run;
  run.app = apps::make_app(app_name);
  run.clock = std::make_unique<support::SimClock>();
  run.network = std::make_unique<httpsim::Network>(*run.clock);
  run.network->register_host(run.app->host(), *run.app);
  support::Rng master(seed);
  run.browser = std::make_unique<core::Browser>(
      *run.network, run.app->seed_url(), master.fork());
  run.crawler = std::make_unique<CrawlerT>(master.fork());
  run.crawler->start(*run.browser);
  for (std::size_t i = 0; i < steps; ++i) {
    run.crawler->step(*run.browser);
    run.distinct_urls.insert(run.browser->page().url.without_fragment());
  }
  return run;
}

}  // namespace

int main() {
  constexpr std::size_t kSteps = 900;

  // --- (1) WebExplor URL-aliasing explosion on HotCRP -------------------
  {
    auto run = drive<baselines::WebExplorCrawler>("HotCRP", kSteps, 11);
    std::printf("Figure 1 (top) — WebExplor on HotCRP, %zu steps:\n", kSteps);
    std::printf("  distinct URLs visited:        %zu\n",
                run.distinct_urls.size());
    std::printf("  abstract states created:      %zu\n",
                run.crawler->abstraction().state_count());
    std::printf("  Q-table states:               %zu\n",
                run.crawler->qtable().state_count());
    // Count review aliases among the visited URLs.
    std::size_t alias_r = 0;
    std::size_t alias_m = 0;
    for (const auto& u : run.distinct_urls) {
      if (u.find("/review?") == std::string::npos) continue;
      if (u.find("&r=") != std::string::npos ||
          u.find("?r=") != std::string::npos) {
        ++alias_r;
      }
      if (u.find("m=rea") != std::string::npos) ++alias_m;
    }
    std::printf("  review URLs via r= alias:     %zu\n", alias_r);
    std::printf("  review URLs via m=rea alias:  %zu\n", alias_m);
    std::printf(
        "  -> every alias pair shares one server handler, yet exact URL\n"
        "     matching created separate states for each alias.\n\n");
  }

  // --- (2) QExplore mutable-page explosion on Drupal --------------------
  {
    auto run = drive<baselines::QExploreCrawler>("Drupal", kSteps, 12);
    std::printf("Figure 1 (bottom) — QExplore on Drupal, %zu steps:\n",
                kSteps);
    std::printf("  distinct URLs visited:        %zu\n",
                run.distinct_urls.size());
    std::printf("  abstract states created:      %zu\n",
                run.crawler->state_count());
    std::size_t shortcut_404s = 0;
    for (const auto& u : run.distinct_urls) {
      if (u.find("/dashboard/go/") != std::string::npos) ++shortcut_404s;
    }
    std::printf("  user-created shortcut links:  %zu (all navigation errors)\n",
                shortcut_404s);
    std::printf(
        "  -> each shortcut submission rewrites the panel's interactable\n"
        "     sequence, minting a fresh state although the added links only\n"
        "     trigger navigation errors.\n");
  }
  return 0;
}
