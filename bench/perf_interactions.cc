// Reproduces the Section V-D performance evaluation: mean number of
// interacted elements (atomic actions) per 30-minute run, averaged over the
// web applications.
//
// Paper: MAK 883, WebExplor 854, QExplore 827 — i.e. MAK's coverage gain is
// not explained by doing more interactions.
#include <cstdio>
#include <iostream>
#include <map>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "support/strings.h"

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind crawlers[] = {CrawlerKind::kMak, CrawlerKind::kWebExplor,
                                  CrawlerKind::kQExplore};

  std::printf(
      "Performance (Section V-D): mean interacted elements per run\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  harness::TextTable table(
      {"Application", "MAK", "WebExplor", "QExplore"});
  std::map<std::string, double> totals;
  std::map<std::string, std::size_t> counts;

  for (const auto& info : apps::app_catalog()) {
    std::vector<std::string> row = {info.name};
    for (const CrawlerKind kind : crawlers) {
      const auto runs = harness::run_repeated(info, kind, protocol.run,
                                              protocol.repetitions);
      const double mean = harness::mean_interactions(runs);
      totals[std::string(to_string(kind))] += mean;
      counts[std::string(to_string(kind))] += 1;
      row.push_back(support::format_fixed(mean, 0));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }

  table.add_row(
      {"mean over apps",
       support::format_fixed(totals.at("MAK") / counts.at("MAK"), 0),
       support::format_fixed(totals.at("WebExplor") / counts.at("WebExplor"),
                             0),
       support::format_fixed(totals.at("QExplore") / counts.at("QExplore"),
                             0)});
  table.print(std::cout);
  std::printf("\npaper: MAK 883, WebExplor 854, QExplore 827.\n");
  return 0;
}
