// Reproduces Figure 2: mean and standard deviation of code coverage over 30
// minutes for QExplore, WebExplor and MAK on the 8 PHP applications.
//
// Only PHP apps appear here, mirroring the paper: Xdebug can sample coverage
// at any time during execution, coverage-node cannot (Section V-A.3).
// Output: one CSV block per application with columns
//   time_s, <crawler>_mean, <crawler>_std ...
// plus a convergence summary (time to reach 95% of the crawler's own final
// coverage).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "support/strings.h"

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const harness::Protocol protocol = harness::protocol_from_env();
  const CrawlerKind crawlers[] = {CrawlerKind::kQExplore,
                                  CrawlerKind::kWebExplor, CrawlerKind::kMak};

  std::printf(
      "Figure 2: code coverage over time (mean/std over %zu runs of %lld "
      "virtual minutes)\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  for (const apps::AppInfo* info : apps::php_apps()) {
    std::vector<harness::CoverageCurve> curves;
    std::vector<std::string> names;
    for (const CrawlerKind kind : crawlers) {
      const auto runs = harness::run_repeated(*info, kind, protocol.run,
                                              protocol.repetitions);
      curves.push_back(harness::aggregate_series(runs));
      names.emplace_back(to_string(kind));
    }

    std::printf("== %s ==\n", info->name.c_str());
    std::printf("time_s");
    for (const auto& name : names) {
      std::printf(",%s_mean,%s_std", name.c_str(), name.c_str());
    }
    std::printf("\n");
    const std::size_t points = curves.front().times.size();
    for (std::size_t i = 0; i < points; ++i) {
      std::printf("%lld", static_cast<long long>(curves.front().times[i] /
                                                 support::kMillisPerSecond));
      for (const auto& curve : curves) {
        std::printf(",%.0f,%.0f",
                    i < curve.mean.size() ? curve.mean[i] : 0.0,
                    i < curve.stddev.size() ? curve.stddev[i] : 0.0);
      }
      std::printf("\n");
    }

    // Convergence summary: first sample time where a crawler reaches 95% of
    // its own final mean coverage (the paper highlights MAK converging on
    // PhpBB2 in under six minutes).
    std::printf("# convergence to 95%% of own final coverage:");
    for (std::size_t c = 0; c < curves.size(); ++c) {
      const auto& curve = curves[c];
      const double target = 0.95 * curve.mean.back();
      long long when = -1;
      for (std::size_t i = 0; i < curve.mean.size(); ++i) {
        if (curve.mean[i] >= target) {
          when = curve.times[i] / support::kMillisPerSecond;
          break;
        }
      }
      std::printf(" %s=%llds", names[c].c_str(), when);
    }
    // The paper's headline convergence claim: MAK reaches the best
    // baseline's FINAL coverage early in the run (PhpBB2: < 6 minutes).
    {
      const auto& mak = curves.back();  // crawlers[] ends with MAK
      double best_baseline_final = 0.0;
      for (std::size_t c = 0; c + 1 < curves.size(); ++c) {
        best_baseline_final =
            std::max(best_baseline_final, curves[c].mean.back());
      }
      long long when = -1;
      for (std::size_t i = 0; i < mak.mean.size(); ++i) {
        if (mak.mean[i] >= best_baseline_final) {
          when = mak.times[i] / support::kMillisPerSecond;
          break;
        }
      }
      std::printf("\n# MAK surpasses the best baseline's final coverage at: "
                  "%llds",
                  when);
    }
    std::printf("\n# final mean coverage:");
    for (std::size_t c = 0; c < curves.size(); ++c) {
      std::printf(" %s=%s", names[c].c_str(),
                  support::format_thousands(
                      static_cast<std::int64_t>(curves[c].mean.back()))
                      .c_str());
    }
    std::printf("\n\n");
    std::fflush(stdout);
  }

  std::printf(
      "paper (Figure 2): MAK consistently above both baselines, e.g. Drupal "
      "50,445 vs 45,761 mean lines (+4,684), and converges faster "
      "(PhpBB2 peak in <6 minutes).\n");
  return 0;
}
