// Population-scale evaluation: crawlers x procedurally generated apps.
//
// Samples a population of generated AppSpecs (apps/generator), runs each
// app under several crawlers against its CLOSED-FORM ground truth (the
// generator's calibrated reachable line count — no union-of-runs estimate
// needed), and emits coverage-vs-trait surfaces: per trait dial (breadth,
// depth, alias density, traps, ...) the mean coverage at each dial value
// plus a least-squares slope per crawler. The slope is the headline number:
// e.g. how many points of coverage a crawler loses per added trap.
//
// Protocol: MAK_REPS / MAK_BUDGET_MINUTES / MAK_SAMPLE_SECONDS override;
// unset, the sweep defaults to 1 repetition x 6 virtual minutes per
// app/crawler pair (a population of 1000 apps is ~3000 runs — the paper's
// 10x30min protocol is meant for the 11-app catalog, not for populations).
//
// The artifact (default results/BENCH_population.json, override/disable via
// MAK_BENCH_JSON) carries per-app entries and the trait surfaces. It
// deliberately omits the metrics-registry block so a serial run and a
// --workers N run of the same population are BYTE-IDENTICAL; CI diffs the
// two with tools/metrics_diff --identical.
//
//   population_sweep [--apps N] [--pop-seed S] [--workers N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "apps/generator/generator.h"
#include "harness/aggregate.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "harness/orchestrator.h"
#include "harness/report.h"
#include "support/strings.h"

namespace {

using mak::apps::generator::AppSpec;

struct TraitDial {
  const char* name;
  std::size_t (*value)(const AppSpec&);
  std::string (*label)(std::size_t);
};

std::string plain_label(std::size_t value) { return std::to_string(value); }

std::string platform_label(std::size_t value) {
  return value == 0 ? "php" : "node";
}

std::string budget_label(std::size_t band) {
  switch (band) {
    case 0:
      return "4k-10k";
    case 1:
      return "10k-30k";
    default:
      return "30k+";
  }
}

const TraitDial kDials[] = {
    {"breadth", [](const AppSpec& s) { return s.breadth; }, plain_label},
    {"depth", [](const AppSpec& s) { return s.depth; }, plain_label},
    {"alias", [](const AppSpec& s) { return s.alias_density; }, plain_label},
    {"traps", [](const AppSpec& s) { return s.traps; }, plain_label},
    {"logins", [](const AppSpec& s) { return s.login_walls; }, plain_label},
    {"wizards", [](const AppSpec& s) { return s.wizards; }, plain_label},
    {"pagination", [](const AppSpec& s) { return s.pagination; },
     plain_label},
    {"dead_pct", [](const AppSpec& s) { return s.dead_pct; }, plain_label},
    {"platform",
     [](const AppSpec& s) {
       return static_cast<std::size_t>(
           s.platform == mak::apps::Platform::kPhp ? 0 : 1);
     },
     platform_label},
    {"budget",
     [](const AppSpec& s) {
       return static_cast<std::size_t>(s.line_budget < 10000   ? 0
                                       : s.line_budget < 30000 ? 1
                                                               : 2);
     },
     budget_label},
};

// Least-squares slope of y over x; 0 when x has no spread.
double slope_of(const std::vector<double>& xs, const std::vector<double>& ys) {
  const double n = static_cast<double>(xs.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denominator = n * sxx - sx * sx;
  if (denominator == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denominator;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mak;
  using harness::CrawlerKind;

  // Orchestrator workers re-exec this binary in --worker mode.
  if (harness::is_worker_invocation(argc, argv)) {
    return harness::worker_main(argc, argv);
  }

  std::size_t app_count = 1000;
  std::uint64_t population_seed = 1;
  std::size_t workers = 0;  // 0 = serial in-process runs
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--apps") == 0 && i + 1 < argc) {
      app_count =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--pop-seed") == 0 && i + 1 < argc) {
      population_seed =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--apps N] [--pop-seed S] [--workers N]\n",
                   argv[0]);
      return 2;
    }
  }
  harness::OrchestratorConfig orch = harness::orchestrator_from_env();
  if (workers > 0) orch.workers = workers;

  harness::Protocol protocol = harness::protocol_from_env();
  if (std::getenv("MAK_REPS") == nullptr) protocol.repetitions = 1;
  if (std::getenv("MAK_BUDGET_MINUTES") == nullptr) {
    protocol.run.budget = 6 * support::kMillisPerMinute;
  }

  const CrawlerKind crawlers[] = {CrawlerKind::kMak, CrawlerKind::kWebExplor,
                                  CrawlerKind::kBfs};

  const auto described =
      apps::generator::population(population_seed, app_count);
  std::printf(
      "Population sweep: %zu generated apps (seed %llu), %zu reps x %lld "
      "virtual minutes\n\n",
      described.size(), static_cast<unsigned long long>(population_seed),
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget / support::kMillisPerMinute));

  std::vector<harness::BenchEntry> entries;
  // percents[c][i]: crawler c's coverage on app i, as % of the app's
  // calibrated reachable lines.
  std::vector<std::vector<double>> percents(std::size(crawlers));

  for (std::size_t i = 0; i < described.size(); ++i) {
    const auto& app = described[i];
    const auto info = apps::resolve_app(app.name);
    if (!info.has_value()) {
      std::fprintf(stderr, "population_sweep: cannot resolve %s\n",
                   app.name.c_str());
      return 3;
    }
    for (std::size_t c = 0; c < std::size(crawlers); ++c) {
      const auto runs =
          workers > 0
              ? harness::run_orchestrated(*info, crawlers[c], protocol.run,
                                          protocol.repetitions, orch)
              : harness::run_repeated(*info, crawlers[c], protocol.run,
                                      protocol.repetitions);
      const double percent =
          harness::mean_coverage_percent(runs, app.reachable_lines);
      percents[c].push_back(percent);
      entries.push_back({app.name + "/" +
                             std::string(to_string(crawlers[c])),
                         percent, "percent", /*higher_is_better=*/true});
    }
    entries.push_back({app.name + "/ground_truth",
                       static_cast<double>(app.reachable_lines), "lines",
                       /*higher_is_better=*/true});
    if ((i + 1) % 50 == 0 || i + 1 == described.size()) {
      std::fprintf(stderr, "  ... %zu/%zu apps done\n", i + 1,
                   described.size());
    }
  }

  // Trait surfaces: per dial value, the mean coverage per crawler; per
  // dial, the least-squares slope per crawler.
  for (const TraitDial& dial : kDials) {
    // value -> per-crawler (sum, count); std::map keeps values sorted so
    // entry order is deterministic.
    std::map<std::size_t, std::vector<std::pair<double, std::size_t>>> groups;
    std::vector<double> xs;
    for (std::size_t i = 0; i < described.size(); ++i) {
      const std::size_t value = dial.value(described[i].spec);
      xs.push_back(static_cast<double>(value));
      auto& cell = groups[value];
      cell.resize(std::size(crawlers), {0.0, 0});
      for (std::size_t c = 0; c < std::size(crawlers); ++c) {
        cell[c].first += percents[c][i];
        cell[c].second += 1;
      }
    }

    harness::TextTable table({std::string(dial.name), "apps", "MAK",
                              "WebExplor", "BFS"});
    for (const auto& [value, cells] : groups) {
      std::vector<std::string> row = {dial.label(value),
                                      std::to_string(cells[0].second)};
      for (std::size_t c = 0; c < std::size(crawlers); ++c) {
        const double mean =
            cells[c].first / static_cast<double>(cells[c].second);
        row.push_back(support::format_fixed(mean, 1) + "%");
        entries.push_back({std::string("trait/") + dial.name + "=" +
                               dial.label(value) + "/" +
                               std::string(to_string(crawlers[c])),
                           mean, "percent", /*higher_is_better=*/true});
      }
      entries.push_back({std::string("trait/") + dial.name + "=" +
                             dial.label(value) + "/count",
                         static_cast<double>(cells[0].second), "apps",
                         /*higher_is_better=*/true});
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    for (std::size_t c = 0; c < std::size(crawlers); ++c) {
      const double slope = slope_of(xs, percents[c]);
      std::printf("  %s slope per unit %s: %+.2f%%\n",
                  std::string(to_string(crawlers[c])).c_str(), dial.name,
                  slope);
      entries.push_back({std::string("trait/") + dial.name + "/slope/" +
                             std::string(to_string(crawlers[c])),
                         slope, "percent_per_unit",
                         /*higher_is_better=*/true});
    }
    std::printf("\n");
  }

  // No metrics block: serial and --workers artifacts must be byte-equal
  // (the orchestrator mode perturbs process-level counters).
  harness::write_bench_json_file("MAK_BENCH_JSON",
                                 "results/BENCH_population.json",
                                 "population_sweep", entries, nullptr);
  return 0;
}
