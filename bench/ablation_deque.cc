// Design-choice ablation (DESIGN.md §5.4): MAK's leveled deque (curiosity
// folded into the action space) vs a single flat deque where interacted
// elements return to level 0 and compete with fresh discoveries.
#include <cstdio>
#include <iostream>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "support/strings.h"

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const harness::Protocol protocol = harness::protocol_from_env();
  std::printf(
      "Deque ablation: leveled deque vs flat deque\n"
      "protocol: %zu repetitions, %lld virtual minutes per run\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  harness::TextTable table(
      {"Application", "MAK (leveled)", "MAK (flat deque)"});
  for (const apps::AppInfo* info : apps::php_apps()) {
    std::vector<std::string> row = {info->name};
    for (const CrawlerKind kind :
         {CrawlerKind::kMak, CrawlerKind::kMakFlatDeque}) {
      const auto runs = harness::run_repeated(*info, kind, protocol.run,
                                              protocol.repetitions);
      row.push_back(support::format_thousands(
          static_cast<std::int64_t>(harness::mean_covered(runs))));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nexpected: the leveled deque guarantees breadth of first visits; the "
      "flat deque re-serves old elements and loses coverage.\n");
  return 0;
}
