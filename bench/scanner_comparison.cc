// Extension bench (paper Section VII future work): does better crawling
// coverage translate into better vulnerability detection when the crawlers
// power a black-box scanner?
//
// For every crawler we run the scanner pipeline against the vulnerable
// testbed apps and report attack-surface size and findings.
#include <cstdio>
#include <iostream>

#include "apps/catalog.h"
#include "core/browser.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "httpsim/network.h"
#include "scanner/scanner.h"

int main() {
  using namespace mak;
  using harness::CrawlerKind;

  const char* vulnerable_apps[] = {"WordPress", "OsCommerce2", "PhpBB2",
                                   "Retro-board"};
  const CrawlerKind kinds[] = {CrawlerKind::kMak, CrawlerKind::kWebExplor,
                               CrawlerKind::kQExplore, CrawlerKind::kBfs,
                               CrawlerKind::kDfs, CrawlerKind::kRandom};

  std::printf(
      "Scanner integration: attack surface and findings per crawler\n"
      "(30 virtual minutes of crawling before probing)\n\n");

  for (const char* app_name : vulnerable_apps) {
    harness::TextTable table({"Crawler", "endpoints", "injection points",
                              "probes", "findings"});
    for (const CrawlerKind kind : kinds) {
      auto app = apps::make_app(app_name);
      support::SimClock clock;
      httpsim::Network network(clock);
      network.register_host(app->host(), *app);
      support::Rng master(0xbead);
      core::Browser browser(network, app->seed_url(), master.fork());
      auto crawler = harness::make_crawler(kind, master.fork());

      scanner::Scanner engine;
      const auto report = engine.scan(*crawler, browser, clock);
      table.add_row({std::string(to_string(kind)),
                     std::to_string(report.surface.endpoints.size()),
                     std::to_string(report.surface.size()),
                     std::to_string(report.probes_sent),
                     std::to_string(report.findings.size())});
    }
    std::printf("== %s ==\n", app_name);
    table.print(std::cout);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "expected: crawlers with broader coverage discover more injection\n"
      "points and therefore find at least as many vulnerabilities.\n");
  return 0;
}
