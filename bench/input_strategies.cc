// Extension bench: the effect of form-input generation on coverage.
//
// Section III of the paper notes that crawlers differ in "filling inputs in
// a sophisticated way" (a GET_ACTIONS implementation detail the unified
// framework normalizes away). Here we vary ONLY the browser's fill strategy
// under MAK and measure coverage on the apps with server-side form
// validation (OsCommerce2's newsletter signup, Docmost's invite flow):
//   counter     — unique junk values ("input-17")
//   dictionary  — field-name/type-aware plausible values
//   random      — random ASCII junk
// Only the dictionary strategy passes email/age validation and unlocks the
// gated member areas.
#include <cstdio>
#include <iostream>

#include "harness/aggregate.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "support/strings.h"

int main() {
  using namespace mak;

  const harness::Protocol protocol = harness::protocol_from_env();
  struct Strategy {
    const char* name;
    core::FormFillStrategy strategy;
  };
  const Strategy strategies[] = {
      {"counter", core::FormFillStrategy::kCounter},
      {"dictionary", core::FormFillStrategy::kDictionary},
      {"random", core::FormFillStrategy::kRandom},
  };

  std::printf(
      "Input-generation ablation (MAK; %zu reps x %lld virtual minutes)\n\n",
      protocol.repetitions,
      static_cast<long long>(protocol.run.budget /
                             support::kMillisPerMinute));

  harness::TextTable table(
      {"Application", "counter", "dictionary", "random"});
  for (const char* app_name :
       {"OsCommerce2", "Docmost", "AddressBook", "PhpBB2"}) {
    const apps::AppInfo* info = nullptr;
    for (const auto& candidate : apps::app_catalog()) {
      if (candidate.name == app_name) info = &candidate;
    }
    std::vector<std::string> row = {app_name};
    for (const auto& strategy : strategies) {
      harness::RunConfig config = protocol.run;
      config.fill_strategy = strategy.strategy;
      const auto runs = harness::run_repeated(
          *info, harness::CrawlerKind::kMak, config, protocol.repetitions);
      row.push_back(support::format_thousands(
          static_cast<std::int64_t>(harness::mean_covered(runs))));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nexpected: dictionary filling unlocks the validated signup flows\n"
      "(OsCommerce2 newsletter, Docmost invites); counter/random junk\n"
      "bounces off the server-side validation.\n");
  return 0;
}
