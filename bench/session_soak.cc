// Session-server soak: many concurrent tenants, fairness, overload, chaos.
//
// Opens N logical crawl sessions (default 10000) spread over T tenants,
// multiplexes them through one serve::SessionServer, and measures:
//
//   * capacity    — every session runs to budget exhaustion; zero lost
//   * fairness    — Jain's index over per-tenant steps at a mid-flight
//                   snapshot (completion would trivially report 1.0)
//   * shedding    — a second server is offered 2x its queue capacity; the
//                   overflow must come back as typed rejections, no aborts
//
// Determinism: per-session output lines (sorted by session id) depend only
// on seeds and profiles, never on scheduling wall time. CI runs the soak
// twice — once with process-tier chaos kills, once without — and diffs the
// non-'#' lines byte-for-byte (docs/robustness.md). Wall-clock figures are
// emitted as '#' comment lines only.
//
//   session_soak [--sessions N] [--tenants T] [--budget-ms MS]
//                [--process-every N] [--kill-chaos] [--fairness-ticks K]
//
// MAK_FAULT_PROFILE / MAK_DRIFT apply to every session; MAK_SERVE_*
// configures the server (admission.h). The artifact (default
// results/BENCH_sessions.json, override/disable via MAK_BENCH_JSON)
// carries only deterministic entries so tools/metrics_diff can gate it.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "harness/bench_json.h"
#include "harness/experiment.h"
#include "httpsim/fault.h"
#include "serve/server.h"
#include "serve/worker.h"
#include "webapp/drift.h"

namespace {

using mak::serve::IsolationTier;
using mak::serve::OpenRequest;
using mak::serve::Reject;
using mak::serve::SessionServer;
using mak::serve::SessionState;

struct Options {
  std::size_t sessions = 10000;
  std::size_t tenants = 20;
  long budget_ms = 60000;
  std::size_t process_every = 0;  // 0 = all thread-tier; else every Nth
  bool kill_chaos = false;        // SIGKILL each process-tier worker once
  std::size_t fairness_ticks = 40;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "session_soak: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      opt.sessions = std::strtoull(next("--sessions"), nullptr, 10);
    } else if (arg == "--tenants") {
      opt.tenants = std::strtoull(next("--tenants"), nullptr, 10);
    } else if (arg == "--budget-ms") {
      opt.budget_ms = std::strtol(next("--budget-ms"), nullptr, 10);
    } else if (arg == "--process-every") {
      opt.process_every =
          std::strtoull(next("--process-every"), nullptr, 10);
    } else if (arg == "--kill-chaos") {
      opt.kill_chaos = true;
    } else if (arg == "--fairness-ticks") {
      opt.fairness_ticks =
          std::strtoull(next("--fairness-ticks"), nullptr, 10);
    } else {
      std::fprintf(stderr, "session_soak: unknown argument %s\n",
                   arg.c_str());
      return false;
    }
  }
  return opt.sessions > 0 && opt.tenants > 0 && opt.budget_ms > 0;
}

OpenRequest make_request(const Options& opt, std::size_t index) {
  const auto& catalog = mak::apps::app_catalog();
  OpenRequest request;
  request.tenant = "tenant-" + std::to_string(index % opt.tenants);
  request.app = catalog[index % catalog.size()].name;
  request.crawler = "MAK";
  request.config.budget =
      static_cast<mak::support::VirtualMillis>(opt.budget_ms);
  request.config.seed = 0x5eedULL + index * 7919ULL;
  if (const auto fault = mak::httpsim::FaultProfile::from_env()) {
    request.config.fault = *fault;
  }
  if (const auto drift = mak::webapp::DriftProfile::from_env()) {
    request.config.drift = *drift;
  }
  if (opt.process_every > 0 && index % opt.process_every == 0) {
    request.tier = IsolationTier::kProcess;
    if (opt.kill_chaos) {
      // One SIGKILL per chaos session, mid-batch: the worker dies like an
      // OOM-killed process and the server retries from the last good state.
      request.kill_at_step = 5 + index % 20;
    }
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  // Process-tier workers re-exec this binary; dispatch them before anything
  // else, exactly like the orchestrator's worker mode.
  if (mak::serve::is_serve_worker_invocation(argc, argv)) {
    return mak::serve::serve_worker_main(argc, argv);
  }
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  namespace serve = mak::serve;
  namespace harness = mak::harness;

  serve::ServerConfig config = serve::server_from_env();
  if (config.max_queue < opt.sessions) config.max_queue = opt.sessions;
  SessionServer server(config, "/tmp/mak-session-soak");

  // ---- open phase ------------------------------------------------------
  std::vector<std::uint64_t> ids;
  ids.reserve(opt.sessions);
  std::size_t open_rejected = 0;
  for (std::size_t i = 0; i < opt.sessions; ++i) {
    const auto outcome = server.open(make_request(opt, i));
    if (outcome.admitted()) {
      ids.push_back(outcome.id);
    } else {
      ++open_rejected;
    }
  }

  // ---- fairness snapshot mid-flight ------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t warmup_steps = 0;
  for (std::size_t i = 0; i < opt.fairness_ticks; ++i) {
    warmup_steps += server.tick();
  }
  std::vector<double> tenant_steps;
  tenant_steps.reserve(opt.tenants);
  for (std::size_t t = 0; t < opt.tenants; ++t) {
    tenant_steps.push_back(static_cast<double>(
        server.tenant_stats("tenant-" + std::to_string(t)).steps));
  }
  const double jain = SessionServer::jain_index(tenant_steps);

  // ---- run to completion -----------------------------------------------
  const std::size_t total_steps = warmup_steps + server.run_until_idle();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  // ---- account every session -------------------------------------------
  std::size_t finished = 0;
  std::size_t lost = 0;
  for (const std::uint64_t id : ids) {
    if (server.state(id) == SessionState::kFinished) {
      ++finished;
    } else {
      ++lost;  // anything not finished after run_until_idle is a loss
    }
  }
  for (const std::uint64_t id : ids) {
    const harness::RunResult* result = server.result(id);
    std::printf("session=%llu steps=%zu covered=%zu\n",
                static_cast<unsigned long long>(id),
                result != nullptr ? result->steps : 0,
                result != nullptr ? result->final_covered_lines : 0);
  }

  // ---- overload phase: 2x queue capacity, typed shedding ---------------
  serve::ServerConfig small = config;
  small.max_queue = 64;
  small.max_resident = 16;
  SessionServer overload(small, "");
  std::size_t shed_queue_full = 0;
  std::size_t shed_other = 0;
  for (std::size_t i = 0; i < 2 * small.max_queue; ++i) {
    // Overload probes admission control, not isolation: thread tier
    // keeps the shed breakdown invariant under --process-every.
    auto request = make_request(opt, i);
    request.tier = serve::IsolationTier::kThread;
    request.kill_at_step = 0;
    const auto outcome = overload.open(request);
    if (outcome.reject == Reject::kQueueFull) {
      ++shed_queue_full;
    } else if (!outcome.admitted()) {
      ++shed_other;
    }
  }

  std::printf("# sessions=%zu tenants=%zu finished=%zu lost=%zu\n",
              opt.sessions, opt.tenants, finished, lost);
  std::printf("# steps=%zu wall_s=%.2f steps_per_s=%.0f\n", total_steps,
              wall_s, wall_s > 0 ? static_cast<double>(total_steps) / wall_s
                                 : 0.0);
  std::printf("# jain_index=%.4f (over %zu tenants after %zu ticks)\n", jain,
              opt.tenants, opt.fairness_ticks);
  std::printf("# overload: offered=%zu shed_queue_full=%zu shed_other=%zu\n",
              2 * small.max_queue, shed_queue_full, shed_other);
  std::printf("# worker: dispatches=%zu failures=%zu retries=%zu\n",
              server.stats().worker_dispatches,
              server.stats().worker_failures, server.stats().worker_retries);

  std::vector<harness::BenchEntry> entries;
  entries.push_back({"sessions_opened", static_cast<double>(ids.size()),
                     "sessions", true});
  entries.push_back(
      {"sessions_finished", static_cast<double>(finished), "sessions", true});
  entries.push_back(
      {"sessions_lost", static_cast<double>(lost), "sessions", false});
  entries.push_back({"open_rejected", static_cast<double>(open_rejected),
                     "sessions", false});
  entries.push_back({"jain_index_x1000", jain * 1000.0, "milli", true});
  entries.push_back(
      {"total_steps", static_cast<double>(total_steps), "steps", true});
  entries.push_back({"overload_shed_typed",
                     static_cast<double>(shed_queue_full), "rejections",
                     true});
  harness::write_bench_json_file("MAK_BENCH_JSON",
                                 "results/BENCH_sessions.json",
                                 "session_soak", entries, nullptr);
  return lost == 0 ? 0 : 1;
}
