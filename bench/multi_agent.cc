// Extension bench (paper Section VI): does the stateless design compose
// into a multi-agent ensemble?
//
// A MakTeam of N agents shares the leveled deque and link ledger while each
// agent keeps its own browser session and Exp3.1 policy. With agents
// modelled as parallel workers, a 30-minute wall-clock budget gives the
// team N x the single-agent interaction volume; we report coverage for
// N in {1, 2, 4} against (a) single MAK at 30 minutes and (b) single MAK
// given the same TOTAL budget (N x 30 minutes) — separating the parallel
// speed-up from genuine ensemble effects (session diversity).
#include <cstdio>
#include <iostream>

#include "apps/catalog.h"
#include "core/mak.h"
#include "core/mak_team.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "httpsim/network.h"
#include "support/strings.h"

namespace {

using namespace mak;

std::size_t run_team_once(const apps::AppInfo& info, std::size_t agents,
                          support::VirtualMillis wall_budget,
                          std::uint64_t seed) {
  auto app = info.factory();
  support::SimClock clock;
  httpsim::Network network(clock);
  network.register_host(app->host(), *app);
  core::MakTeam team(network, app->seed_url(), support::Rng(seed),
                     core::MakTeamConfig{.agent_count = agents});
  team.start();
  // Round-robin over N parallel workers: the shared clock accumulates all
  // agents' fetch time, so N agents within wall budget T = clock budget NxT.
  const support::Deadline deadline(
      clock, wall_budget * static_cast<support::VirtualMillis>(agents));
  while (!deadline.expired()) {
    clock.advance(700 / static_cast<support::VirtualMillis>(agents));
    team.step();
  }
  return app->tracker().covered_lines();
}

std::size_t run_single_once(const apps::AppInfo& info,
                            support::VirtualMillis budget,
                            std::uint64_t seed) {
  harness::RunConfig config;
  config.budget = budget;
  config.seed = seed;
  return harness::run_once(info, harness::CrawlerKind::kMak, config)
      .final_covered_lines;
}

constexpr std::size_t kReps = 5;

double run_team(const apps::AppInfo& info, std::size_t agents,
                support::VirtualMillis wall_budget) {
  double total = 0.0;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    total += static_cast<double>(
        run_team_once(info, agents, wall_budget, 0x7e40 + rep));
  }
  return total / kReps;
}

double run_single(const apps::AppInfo& info, support::VirtualMillis budget) {
  double total = 0.0;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    total += static_cast<double>(
        run_single_once(info, budget, 0x7e40 + rep));
  }
  return total / kReps;
}

}  // namespace

int main() {
  using namespace mak;

  const support::VirtualMillis wall = 30 * support::kMillisPerMinute;
  const char* app_names[] = {"Drupal", "WordPress", "HotCRP", "PhpBB2"};

  std::printf(
      "Multi-agent MAK (30 wall-clock minutes; agents run in parallel)\n\n");
  harness::TextTable table({"Application", "MAK x1", "team x2", "team x4",
                            "single, 2x budget", "single, 4x budget",
                            "total lines"});
  for (const char* app_name : app_names) {
    const apps::AppInfo* info = nullptr;
    for (const auto& candidate : apps::app_catalog()) {
      if (candidate.name == app_name) info = &candidate;
    }
    const auto total = info->factory()->code_model().total_lines();
    table.add_row(
        {app_name,
         support::format_thousands(
             static_cast<std::int64_t>(run_single(*info, wall))),
         support::format_thousands(
             static_cast<std::int64_t>(run_team(*info, 2, wall))),
         support::format_thousands(
             static_cast<std::int64_t>(run_team(*info, 4, wall))),
         support::format_thousands(
             static_cast<std::int64_t>(run_single(*info, 2 * wall))),
         support::format_thousands(
             static_cast<std::int64_t>(run_single(*info, 4 * wall))),
         support::format_thousands(static_cast<std::int64_t>(total))});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nobserved trade-off: the shared frontier parallelizes cleanly on\n"
      "content-heavy apps, but per-agent sessions FRAGMENT stateful flows —\n"
      "an element unlocked by one agent's session may be consumed by an\n"
      "agent that cannot use it. Coordinating session state is the open\n"
      "problem for the ensemble extension.\n");
  return 0;
}
