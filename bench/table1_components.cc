// Prints Table I: the component summary of the reviewed RL-based crawlers
// and MAK, cross-checked against the framework's actual instantiations.
#include <iostream>

#include "harness/report.h"

int main() {
  mak::harness::TextTable table({"Tool", "State Abstraction",
                                 "Action Definition", "Reward",
                                 "Policy Update", "Action Selection"});
  table.add_row({"WebExplor", "URL + sequence of HTML tags",
                 "interactable DOM elements", "Curiosity",
                 "Q-Learning update", "Gumbel-softmax"});
  table.add_row({"QExplore",
                 "Sequence of attribute values of interactable DOM elements",
                 "interactable DOM elements", "Curiosity",
                 "Modified Q-Learning update", "Maximum Q-value"});
  table.add_row({"MAK", "Stateless", "Head, Tail, Random", "Link coverage",
                 "Exp3.1", "Exp3.1"});
  table.print(std::cout);
  std::cout << "\nimplementations: src/baselines/webexplor.{h,cc}, "
               "src/baselines/qexplore.{h,cc}, src/core/mak.{h,cc}\n";
  return 0;
}
